// Sharded multi-leader store: key-space partitioning with per-partition
// leaders that live — and move — where their keys are accessed.
//
// The paper (Section B.1) notes DPaxos can adopt WPaxos's object-stealing
// model: concurrent leaders at different locations each own data objects,
// and a leader "steals" an object whose access locality shifted toward it
// by running a Leader Election for it. This module provides that layer:
// keys hash to partitions, each partition is an independent DPaxos
// instance, and per-partition access statistics drive automatic stealing
// through the placement advisor.
#ifndef DPAXOS_DIRECTORY_SHARDED_STORE_H_
#define DPAXOS_DIRECTORY_SHARDED_STORE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/topology.h"
#include "paxos/replica.h"
#include "placement/placement.h"
#include "sim/simulator.h"
#include "txn/transaction.h"

namespace dpaxos {

/// \brief Routes keyed transactions onto per-partition DPaxos instances.
class ShardedStore {
 public:
  /// Resolves the replica of `partition` hosted at `node`; the store does
  /// not own replicas (the harness/cluster does).
  using ReplicaProvider = std::function<Replica*(NodeId, PartitionId)>;
  /// (status, end-to-end latency).
  using Callback = std::function<void(const Status&, Duration)>;

  struct Options {
    uint32_t num_partitions = 4;
    /// Steal a partition only when the advisor clears these thresholds.
    double min_improvement = 0.3;
    double min_weight = 3.0;
    Duration stats_half_life = 30 * kSecond;
    /// Disable to route only (ownership fixed at first election).
    bool auto_steal = true;
    /// Migration handover: ship a checksummed state snapshot instead of
    /// paging the incumbent's decided log when the log is at least
    /// `snapshot_handover_min_slots` long and both replicas have
    /// snapshot hooks wired. Counted in PerfCounters as
    /// store_snapshot_transfers / store_snapshot_bytes.
    bool prefer_snapshot = true;
    uint64_t snapshot_handover_min_slots = 512;
  };

  ShardedStore(Simulator* sim, const Topology* topology,
               ReplicaProvider provider, Options options);

  /// Partition owning `key` (stable hash).
  PartitionId PartitionOf(const std::string& key) const;

  /// Execute a transaction issued from `client_zone`. All keys must hash
  /// to one partition (cross-partition transactions are out of scope and
  /// fail with NotSupported). Routing: if stealing is due, the partition
  /// is first stolen by the client's zone; the request then commits at
  /// the partition's leader (forwarded if remote).
  void Execute(const Transaction& txn, ZoneId client_zone, Callback cb);

  /// Current leader of `partition` as tracked by the store
  /// (kInvalidNode before its first access).
  NodeId LeaderOf(PartitionId partition) const;

  uint32_t num_partitions() const { return options_.num_partitions; }
  uint64_t steals() const { return steals_; }

  /// Force-steal `partition` into `zone` (manual placement override).
  void Steal(PartitionId partition, ZoneId zone,
             std::function<void(const Status&)> done);

 private:
  void RouteToLeader(PartitionId partition, ZoneId client_zone, Value value,
                     Callback cb);

  Simulator* sim_;
  const Topology* topology_;
  ReplicaProvider provider_;
  Options options_;
  PlacementAdvisor advisor_;
  std::vector<AccessStats> stats_;     // per partition
  std::vector<NodeId> leaders_;        // per partition; kInvalidNode = none
  uint64_t steals_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_DIRECTORY_SHARDED_STORE_H_
