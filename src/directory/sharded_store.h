// Sharded multi-leader store: key-space partitioning with per-partition
// leaders that live — and move — where their keys are accessed.
//
// The paper (Section B.1) notes DPaxos can adopt WPaxos's object-stealing
// model: concurrent leaders at different locations each own data objects,
// and a leader "steals" an object whose access locality shifted toward it
// by running a Leader Election for it. This module provides that layer:
// keys hash to partitions, each partition is an independent DPaxos
// instance, and per-partition access statistics drive automatic stealing
// through the placement advisor.
#ifndef DPAXOS_DIRECTORY_SHARDED_STORE_H_
#define DPAXOS_DIRECTORY_SHARDED_STORE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/topology.h"
#include "paxos/replica.h"
#include "placement/ownership.h"
#include "placement/placement.h"
#include "sim/simulator.h"
#include "txn/transaction.h"

namespace dpaxos {

/// \brief Routes keyed transactions onto per-partition DPaxos instances.
class ShardedStore {
 public:
  /// Resolves the replica of `partition` hosted at `node`; the store does
  /// not own replicas (the harness/cluster does).
  using ReplicaProvider = std::function<Replica*(NodeId, PartitionId)>;
  /// (status, end-to-end latency).
  using Callback = std::function<void(const Status&, Duration)>;

  struct Options {
    uint32_t num_partitions = 4;
    /// Steal a partition only when the advisor clears these thresholds.
    double min_improvement = 0.3;
    double min_weight = 3.0;
    Duration stats_half_life = 30 * kSecond;
    /// Disable to route only (ownership fixed at first election).
    bool auto_steal = true;
    /// Migration handover: ship a checksummed state snapshot instead of
    /// paging the incumbent's decided log when the log is at least
    /// `snapshot_handover_min_slots` long and both replicas have
    /// snapshot hooks wired. Counted in PerfCounters as
    /// store_snapshot_transfers / store_snapshot_bytes.
    bool prefer_snapshot = true;
    uint64_t snapshot_handover_min_slots = 512;
    /// Promote steals from harness-driven elections to the protocol-level
    /// StealRequest/OwnershipGrant exchange: every placement change is
    /// decided as an ownership-transfer record in the partition's own log
    /// and learned through the OwnershipDirectory, which routing then
    /// follows. Off preserves the legacy schedules bit-for-bit (goldens).
    bool ownership = false;
    /// Post-steal cooldown per partition (ownership mode): advisor-
    /// recommended moves inside the window are suppressed and counted as
    /// placement_pingpongs_suppressed. Hysteresis already holds steady
    /// 50/50 splits; the cooldown stops alternating bursts from
    /// ping-ponging a partition between zones.
    Duration steal_cooldown = 10 * kSecond;
  };

  ShardedStore(Simulator* sim, const Topology* topology,
               ReplicaProvider provider, Options options);

  /// Partition owning `key` (stable hash).
  PartitionId PartitionOf(const std::string& key) const;

  /// Execute a transaction issued from `client_zone`. All keys must hash
  /// to one partition (cross-partition transactions are out of scope and
  /// fail with NotSupported). Routing: if stealing is due, the partition
  /// is first stolen by the client's zone; the request then commits at
  /// the partition's leader (forwarded if remote).
  void Execute(const Transaction& txn, ZoneId client_zone, Callback cb);

  /// Current leader of `partition` as tracked by the store
  /// (kInvalidNode before its first access).
  NodeId LeaderOf(PartitionId partition) const;

  uint32_t num_partitions() const { return options_.num_partitions; }
  uint64_t steals() const { return steals_; }

  /// Force-steal `partition` into `zone` (manual placement override).
  /// In ownership mode this runs the protocol-level steal — the change
  /// is decided as a transfer record in the partition's log; otherwise
  /// the legacy harness election.
  void Steal(PartitionId partition, ZoneId zone,
             std::function<void(const Status&)> done);

  /// Ownership learned from decided transfer records (ownership mode).
  const OwnershipDirectory& directory() const { return directory_; }

  /// Feed one decided (slot, value) from `partition`'s log — harnesses
  /// that wire replica decide callbacks use this to keep the directory
  /// (and routing) protocol-fed on every replica, not just the thief.
  void ObserveDecided(PartitionId partition, SlotId slot, const Value& value);

 private:
  void RouteToLeader(PartitionId partition, ZoneId client_zone, Value value,
                     Callback cb);
  void StealViaProtocol(PartitionId partition, ZoneId zone,
                        std::function<void(const Status&)> done);

  Simulator* sim_;
  const Topology* topology_;
  ReplicaProvider provider_;
  Options options_;
  PlacementAdvisor advisor_;
  OwnershipDirectory directory_;
  std::vector<AccessStats> stats_;     // per partition
  std::vector<NodeId> leaders_;        // per partition; kInvalidNode = none
  std::vector<Timestamp> last_steal_;  // per partition; 0 = never stolen
  uint64_t steals_ = 0;
  uint64_t transfer_seq_ = 0;  // value-id disambiguator for records
};

}  // namespace dpaxos

#endif  // DPAXOS_DIRECTORY_SHARDED_STORE_H_
