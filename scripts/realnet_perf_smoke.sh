#!/usr/bin/env bash
# Realnet perf smoke: one `dpaxos_cli --experiment=realnet` pass with the
# open-loop async driver against multi-reactor nodes, gated on two
# regressions the unit lane can't see:
#
#   1. a throughput floor (ops/s per mode) — catches the serving path
#      collapsing to request-at-a-time behavior, while staying far below
#      any real host's capacity so CI core count doesn't flake it;
#   2. frames_coalesced > 0 — catches the writev gather path silently
#      degenerating into one syscall per frame.
#
# The absolute before/after numbers live in docs/perf.md; this script
# only defends the floor.
#
# Usage: scripts/realnet_perf_smoke.sh [requests-per-mode]  (default: 3000)
# Env:   DPAXOS_CLI     path to dpaxos_cli (default: build/tools/dpaxos_cli)
#        MIN_OPS        throughput floor in ops/s (default: 2000)
#        SMOKE_OUT_DIR  where BENCH_realnet.json and node logs go
#                       (default: a fresh temp dir, removed on success)
set -euo pipefail

cd "$(dirname "$0")/.."
REQUESTS="${1:-3000}"
CLI="${DPAXOS_CLI:-build/tools/dpaxos_cli}"
MIN_OPS="${MIN_OPS:-2000}"

if [[ ! -x "$CLI" ]]; then
  echo "realnet_perf_smoke: $CLI not found or not executable" >&2
  echo "build it first: cmake --build build --target dpaxos_cli" >&2
  exit 1
fi

CLEANUP_OUT=""
if [[ -z "${SMOKE_OUT_DIR:-}" ]]; then
  SMOKE_OUT_DIR="$(mktemp -d /tmp/dpaxos_perf.XXXXXX)"
  CLEANUP_OUT="$SMOKE_OUT_DIR"
fi
mkdir -p "$SMOKE_OUT_DIR"
OUT_JSON="$SMOKE_OUT_DIR/BENCH_realnet.json"

echo "realnet_perf_smoke: $REQUESTS ops/mode, floor ${MIN_OPS} ops/s," \
     "logs in $SMOKE_OUT_DIR"
LOG="$SMOKE_OUT_DIR/realnet.out"
"$CLI" --experiment=realnet \
  --requests="$REQUESTS" \
  --connections=2 \
  --pipeline=64 \
  --reactors=2 \
  --seed=7 \
  --logdir="$SMOKE_OUT_DIR" \
  --out="$OUT_JSON" | tee "$LOG"

# Gate 1: every mode's measured throughput clears the floor.
awk -v floor="$MIN_OPS" '
  /"throughput_ops":/ {
    v = $0; sub(/.*"throughput_ops": /, "", v); sub(/,.*/, "", v)
    ++modes
    if (v + 0 < floor) { bad = 1
      printf "realnet_perf_smoke: FAIL (throughput %.1f < floor %d)\n",
             v, floor > "/dev/stderr" }
  }
  END { if (modes == 0) { print "realnet_perf_smoke: FAIL (no modes in json)" \
          > "/dev/stderr"; exit 1 }
        exit bad }
' "$OUT_JSON"

# Gate 2: the gather-write path coalesced frames in every mode.
awk '
  /"frames_coalesced":/ {
    v = $0; sub(/.*"frames_coalesced": /, "", v); sub(/[,}].*/, "", v)
    ++modes
    if (v + 0 <= 0) { bad = 1
      print "realnet_perf_smoke: FAIL (frames_coalesced == 0)" \
        > "/dev/stderr" }
  }
  END { if (modes == 0) { print "realnet_perf_smoke: FAIL (no tcp stats)" \
          > "/dev/stderr"; exit 1 }
        exit bad }
' "$OUT_JSON"

grep -q '"hardware_threads":' "$OUT_JSON" || {
  echo "realnet_perf_smoke: FAIL (no hardware_threads in $OUT_JSON)" >&2
  exit 1
}

echo "realnet_perf_smoke: PASS"
if [[ -n "$CLEANUP_OUT" ]]; then rm -rf "$CLEANUP_OUT"; fi
