#!/usr/bin/env bash
# ThreadSanitizer gate for the shard-parallel runner.
#
# Builds the repo with -DDPAXOS_SANITIZE=thread and runs the two targets
# that exercise real worker threads: shard_runner_test (pool mechanics +
# thread-count invariance) and the sharded bench smoke. Any data race in
# the ShardSet claim loop, the counter fold-back, or a shard body that
# leaks shared state fails the script.
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DDPAXOS_SANITIZE=thread
cmake --build "$BUILD_DIR" \
    --target shard_runner_test bench_simperf mpsc_queue_test \
             transport_test fast_path_test wal_test ownership_test \
             -j"$(nproc)"

# halt_on_error so the first race fails the gate instead of scrolling by.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

"$BUILD_DIR/tests/shard_runner_test"
"$BUILD_DIR/bench/bench_simperf" --smoke --shards=4 --threads=4 \
    --out="$BUILD_DIR/BENCH_simperf_tsan_smoke.json"
# Multi-producer contention on the queue behind EventLoop::PostTask —
# the reactor pool's inbound handoff rides entirely on its ordering.
"$BUILD_DIR/tests/mpsc_queue_test"
# Reactor threads vs the main loop: the delayed reply-flush timer races
# enqueue against the coalescing flush, and fast-path message fan-in
# lands on the pool's handoff queue from every reactor at once.
"$BUILD_DIR/tests/transport_test" --gtest_filter='*ReactorPool*'
"$BUILD_DIR/tests/fast_path_test"
# WAL group commit: SyncThen callbacks scheduled through the event loop
# vs the append path — single-threaded by design, but the death test and
# simulator-driven batch release must stay clean under instrumentation.
"$BUILD_DIR/tests/wal_test"
# Ownership steals: the placement counters ride ThreadPerfCounters
# (thread-local by design) and the steal path retains callbacks across
# election + commit — run it instrumented so any future threading of
# the store surfaces immediately.
"$BUILD_DIR/tests/ownership_test" --gtest_filter='ProtocolStealTest.*:OwnershipStoreTest.*'

echo "tsan_check: PASS (no data races reported)"
