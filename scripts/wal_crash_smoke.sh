#!/usr/bin/env bash
# WAL crash smoke: a kill -9 loop against a durable single-node server.
#
# Each round starts `dpaxos_cli --serve --data-dir=...` on the SAME
# directory, commits a batch of writes through the blocking client, and
# SIGKILLs the server mid-flight (no shutdown path, arbitrary WAL tail).
# The next round's recovery must (a) start — torn final records are
# truncated, never fatal — and (b) still serve every key the client saw
# acknowledged in ANY earlier round. A final pass asserts the recovered
# checksum is stable across two clean restarts (recovery is idempotent).
#
# Usage: scripts/wal_crash_smoke.sh [rounds]   (default: 6)
# Env:   DPAXOS_CLI     path to dpaxos_cli (default: build/tools/dpaxos_cli)
#        SMOKE_OUT_DIR  scratch dir (default: fresh temp dir, removed on
#                       success)
set -euo pipefail

cd "$(dirname "$0")/.."
ROUNDS="${1:-6}"
CLI="${DPAXOS_CLI:-build/tools/dpaxos_cli}"

if [[ ! -x "$CLI" ]]; then
  echo "wal_crash_smoke: $CLI not found or not executable" >&2
  echo "build it first: cmake --build build --target dpaxos_cli" >&2
  exit 1
fi

CLEANUP_OUT=""
if [[ -z "${SMOKE_OUT_DIR:-}" ]]; then
  SMOKE_OUT_DIR="$(mktemp -d /tmp/dpaxos_walsmoke.XXXXXX)"
  CLEANUP_OUT="$SMOKE_OUT_DIR"
fi
mkdir -p "$SMOKE_OUT_DIR"
DATA_DIR="$SMOKE_OUT_DIR/wal"
rm -rf "$DATA_DIR"

PORT=$(( 20000 + (RANDOM % 20000) ))
ADDR="127.0.0.1:$PORT"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_server() {
  "$CLI" --serve --node=0 --cluster="$ADDR" --zones=1 \
    --data-dir="$DATA_DIR" \
    >> "$SMOKE_OUT_DIR/server.log" 2>&1 &
  SERVER_PID=$!
  # Wait for the stats round-trip (recovery included).
  for _ in $(seq 1 100); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "wal_crash_smoke: FAIL (server died during startup/recovery)" >&2
      tail -5 "$SMOKE_OUT_DIR/server.log" >&2
      exit 1
    fi
    if "$CLI" --client --connect="$ADDR" --stats \
        > "$SMOKE_OUT_DIR/stats.out" 2>/dev/null; then
      return 0
    fi
    sleep 0.1
  done
  echo "wal_crash_smoke: FAIL (server never became ready)" >&2
  exit 1
}

kill_server() {
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

# Put/get with a short retry: right after a restart the node may still
# be settling its election, so the first request can time out without
# meaning anything durability-related.
put_retry() {
  for _ in $(seq 1 20); do
    if "$CLI" --client --connect="$ADDR" --put="$1" > /dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  return 1
}

get_value() {
  for _ in $(seq 1 20); do
    if "$CLI" --client --connect="$ADDR" --get="$1" 2>/dev/null; then
      return 0
    fi
    sleep 0.2
  done
  return 1
}

TOTAL_KEYS=0
for round in $(seq 1 "$ROUNDS"); do
  start_server
  # Every key acknowledged in ANY earlier round must still be there
  # (--get prints the raw value; ours all look like r<round>v<i>).
  for k in $(seq 1 "$TOTAL_KEYS"); do
    if ! get_value "key$k" | grep -Eq "^r[0-9]+v[0-9]+$"; then
      echo "wal_crash_smoke: FAIL (round $round lost acknowledged key$k)" >&2
      exit 1
    fi
  done
  # Commit a fresh batch; each --put that returns OK was fdatasync'd.
  BATCH=8
  for i in $(seq 1 "$BATCH"); do
    k=$(( TOTAL_KEYS + i ))
    if ! put_retry "key$k=r${round}v$i"; then
      echo "wal_crash_smoke: FAIL (round $round put key$k never acked)" >&2
      exit 1
    fi
  done
  TOTAL_KEYS=$(( TOTAL_KEYS + BATCH ))
  grep -Eo "wal=1" "$SMOKE_OUT_DIR/stats.out" > /dev/null || {
    echo "wal_crash_smoke: FAIL (server not in WAL mode)" >&2
    exit 1
  }
  echo "wal_crash_smoke: round $round ok (${TOTAL_KEYS} keys durable)"
  kill_server
done

# Recovery must be idempotent: two clean restarts converge to the same
# nonzero checksum with no writes in between. Read a key first so the
# recovered log has been applied before we sample the checksum.
recovered_checksum() {
  get_value "key1" > /dev/null
  "$CLI" --client --connect="$ADDR" --stats 2>/dev/null \
    | grep -Eo "checksum=[0-9]+" || true
}

start_server
SUM1=$(recovered_checksum)
kill_server
start_server
SUM2=$(recovered_checksum)
kill_server
if [[ -z "$SUM1" || "$SUM1" == "checksum=0" || "$SUM1" != "$SUM2" ]]; then
  echo "wal_crash_smoke: FAIL (recovery not idempotent: '$SUM1' vs '$SUM2')" >&2
  exit 1
fi

echo "wal_crash_smoke: PASS ($ROUNDS kill -9 rounds, $TOTAL_KEYS keys, $SUM1)"
if [[ -n "$CLEANUP_OUT" ]]; then rm -rf "$CLEANUP_OUT"; fi
