#!/usr/bin/env bash
# Real-network chaos smoke: one `dpaxos_cli --experiment=realchaos` pass —
# a 2-zone / 4-node multi-process cluster behind the fault-injecting
# ChaosProxy, the "mixed" nemesis schedule (partition, pause, kill +
# restart, corruption burst, drop burst), a pool of failover clients
# recording a history, and the linearizability + session-guarantee
# checkers over the result. The experiment exits nonzero on any checker
# violation or if the cluster fails to reconverge, so this script only
# adds two sanity gates: faults were actually injected, and the chaos
# section landed in BENCH_realnet.json.
#
# A second pass runs the "disk" schedule against a DURABLE cluster
# (per-node acceptor WALs + --disk-faults): lying fsyncs, a torn write
# and a fsync EIO that panic the victim, then a whole-cluster power
# loss recovered from the WAL directories alone.
#
# Usage: scripts/realnet_chaos_smoke.sh [duration-seconds]  (default: 8)
# Env:   DPAXOS_CLI     path to dpaxos_cli (default: build/tools/dpaxos_cli)
#        SMOKE_OUT_DIR  where BENCH_realnet.json and node logs go
#                       (default: a fresh temp dir, removed on success)
set -euo pipefail

cd "$(dirname "$0")/.."
DURATION="${1:-8}"
CLI="${DPAXOS_CLI:-build/tools/dpaxos_cli}"

if [[ ! -x "$CLI" ]]; then
  echo "realnet_chaos_smoke: $CLI not found or not executable" >&2
  echo "build it first: cmake --build build --target dpaxos_cli" >&2
  exit 1
fi

CLEANUP_OUT=""
if [[ -z "${SMOKE_OUT_DIR:-}" ]]; then
  SMOKE_OUT_DIR="$(mktemp -d /tmp/dpaxos_chaos.XXXXXX)"
  CLEANUP_OUT="$SMOKE_OUT_DIR"
fi
mkdir -p "$SMOKE_OUT_DIR"
OUT_JSON="$SMOKE_OUT_DIR/BENCH_realnet.json"

echo "realnet_chaos_smoke: ${DURATION}s mixed schedule, logs in $SMOKE_OUT_DIR"
LOG="$SMOKE_OUT_DIR/realchaos.out"
"$CLI" --experiment=realchaos \
  --schedule=mixed \
  --duration="$DURATION" \
  --seed=7 \
  --logdir="$SMOKE_OUT_DIR" \
  --out="$OUT_JSON" | tee "$LOG"

grep -q "REALCHAOS OK" "$LOG" || {
  echo "realnet_chaos_smoke: FAIL (no REALCHAOS OK in output)" >&2
  exit 1
}
grep -q "proxy faults=[1-9]" "$LOG" || {
  echo "realnet_chaos_smoke: FAIL (proxy injected no faults)" >&2
  exit 1
}
grep -q '"chaos":' "$OUT_JSON" || {
  echo "realnet_chaos_smoke: FAIL (no chaos section in $OUT_JSON)" >&2
  exit 1
}

echo "realnet_chaos_smoke: ${DURATION}s disk schedule (durable cluster)"
DISK_LOG="$SMOKE_OUT_DIR/realchaos_disk.out"
DATA_BASE="$SMOKE_OUT_DIR/wal"
rm -rf "$DATA_BASE" && mkdir -p "$DATA_BASE"
"$CLI" --experiment=realchaos \
  --schedule=disk \
  --duration="$DURATION" \
  --seed=11 \
  --data-dir="$DATA_BASE" \
  --logdir="$SMOKE_OUT_DIR" \
  --out="$OUT_JSON" | tee "$DISK_LOG"

grep -q "REALCHAOS OK" "$DISK_LOG" || {
  echo "realnet_chaos_smoke: FAIL (disk schedule: no REALCHAOS OK)" >&2
  exit 1
}
grep -q "whole-cluster power loss" "$DISK_LOG" || {
  echo "realnet_chaos_smoke: FAIL (disk schedule never lost power)" >&2
  exit 1
}
grep -Eq "disk: faults_armed=[1-9]" "$DISK_LOG" || {
  echo "realnet_chaos_smoke: FAIL (no disk faults armed)" >&2
  exit 1
}
grep -Eq "wal_fsyncs=[1-9]" "$DISK_LOG" || {
  echo "realnet_chaos_smoke: FAIL (durable cluster did no fdatasyncs)" >&2
  exit 1
}

echo "realnet_chaos_smoke: PASS"
if [[ -n "$CLEANUP_OUT" ]]; then rm -rf "$CLEANUP_OUT"; fi
