#!/usr/bin/env bash
# AddressSanitizer gate for the snapshot + recovery path.
#
# Builds the repo with -DDPAXOS_SANITIZE=address and runs the targets
# that shuffle raw snapshot bytes around: the envelope unit tests, the
# wire codec fuzzers (hostile length prefixes, splices, bit flips), the
# catch-up/snapshot-transfer integration tests, and the chaos recovery
# cells (chunk reassembly + install under crashes). Any heap overflow,
# use-after-free in the reassembly buffer, or OOB read in the decoder
# fails the script.
#
# Usage: scripts/asan_check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DDPAXOS_SANITIZE=address
cmake --build "$BUILD_DIR" \
    --target snapshot_test wire_fuzz_test wire_test catchup_test \
             restart_test chaos_test soak_test fast_path_test \
             chaos_proxy_test real_chaos_test mpsc_queue_test \
             transport_test wal_test ownership_test mobility_test \
             dpaxos_cli -j"$(nproc)"

# abort_on_error so the first report fails the gate instead of running on
# poisoned state; detect_leaks covers the long-lived harness allocations.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1 ${ASAN_OPTIONS:-}"

"$BUILD_DIR/tests/snapshot_test"
"$BUILD_DIR/tests/wire_fuzz_test"
"$BUILD_DIR/tests/wire_test"
"$BUILD_DIR/tests/catchup_test"
"$BUILD_DIR/tests/restart_test"
"$BUILD_DIR/tests/chaos_test" --gtest_filter='*Recovery*:*FastPath*'
"$BUILD_DIR/tests/soak_test" --gtest_filter='*Compaction*'
# Fast-path commits: vote tracking moves Values between the attempt,
# slot-tracker, and deferred-ack maps (move-heavy, callback-retaining),
# and elections adopt fast entries out of promise vectors.
"$BUILD_DIR/tests/fast_path_test"
# Realnet chaos path: the fault-injecting proxy shuffles and corrupts
# raw frame bytes (prime OOB territory), and the failover client's
# SIGSTOP rotation exercises partial-read teardown.
"$BUILD_DIR/tests/chaos_proxy_test"
"$BUILD_DIR/tests/real_chaos_test" --gtest_filter='*Failover*'
# Serving-path plumbing: the MPSC queue behind PostTask (node lifetime
# across producer/consumer threads) and the writev gather path (iovec
# construction over the outbound frame deque, partial-write walks).
"$BUILD_DIR/tests/mpsc_queue_test"
"$BUILD_DIR/tests/transport_test" --gtest_filter='TcpTransportTest.*'
# WAL + fault-injecting Env: recovery parses raw frame bytes off disk
# (torn tails, flipped bits — classic OOB territory), the group-commit
# path retains reply callbacks across fsyncs, and the truncation/bit-flip
# sweeps re-open the log hundreds of times.
"$BUILD_DIR/tests/wal_test"
# Ownership steal path: the transfer-record codec parses hostile
# tagged values, the StealRequest/OwnershipGrant exchange moves Values
# between steal state and the commit pipeline (callback-retaining), and
# the crash-mid-steal fallback tears down a half-armed exchange.
"$BUILD_DIR/tests/ownership_test"
"$BUILD_DIR/tests/mobility_test"

echo "asan_check: PASS (no memory errors reported)"
