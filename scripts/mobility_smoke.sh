#!/usr/bin/env bash
# Mobility smoke: the realnet mobility cells end-to-end — a 2-zone
# proxied multi-process cluster whose client moves zones mid-run, once
# with a static leader (baseline) and once with --ownership servers that
# steal the partition after the move via the protocol-level
# StealRequest/OwnershipGrant exchange.
#
# The experiment itself enforces the headline gate (adaptive cells must
# reach post-migration p50 < 2x the intra-zone RTT and complete >= 1
# protocol steal, else dpaxos_cli exits nonzero); this script adds JSON
# sanity gates on top: the mobility section landed, the adaptive cell
# passed its gate, and at least one steal was protocol-visible.
#
# Usage: scripts/mobility_smoke.sh [ops-per-phase]   (default: 150)
# Env:   DPAXOS_CLI     path to dpaxos_cli (default: build/tools/dpaxos_cli)
#        SMOKE_OUT_DIR  where BENCH_realnet.json and node logs go
#                       (default: a fresh temp dir, removed on success)
set -euo pipefail

cd "$(dirname "$0")/.."
OPS="${1:-150}"
CLI="${DPAXOS_CLI:-build/tools/dpaxos_cli}"

if [[ ! -x "$CLI" ]]; then
  echo "mobility_smoke: $CLI not found or not executable" >&2
  echo "build it first: cmake --build build --target dpaxos_cli" >&2
  exit 1
fi

CLEANUP_OUT=""
if [[ -z "${SMOKE_OUT_DIR:-}" ]]; then
  SMOKE_OUT_DIR="$(mktemp -d /tmp/dpaxos_mobility.XXXXXX)"
  CLEANUP_OUT="$SMOKE_OUT_DIR"
fi
mkdir -p "$SMOKE_OUT_DIR"
OUT_JSON="$SMOKE_OUT_DIR/BENCH_realnet.json"
LOG="$SMOKE_OUT_DIR/mobility.out"

echo "mobility_smoke: realnet bench + mobility cells, logs in $SMOKE_OUT_DIR"
"$CLI" --experiment=realnet \
  --mobility \
  --requests=400 \
  --connections=2 \
  --pipeline=32 \
  --seed=17 \
  --logdir="$SMOKE_OUT_DIR" \
  --out="$OUT_JSON" | tee "$LOG"

# dpaxos_cli already exited 0, so the adaptive gate held; re-assert the
# facts from the JSON so a silent wiring regression cannot sneak by.
grep -q '"mobility":' "$OUT_JSON" || {
  echo "mobility_smoke: FAIL (no mobility section in $OUT_JSON)" >&2
  exit 1
}
grep -q '"label": "mobility/adaptive"' "$OUT_JSON" || {
  echo "mobility_smoke: FAIL (no adaptive cell in $OUT_JSON)" >&2
  exit 1
}
grep -q '"gate_pass": true' "$OUT_JSON" || {
  echo "mobility_smoke: FAIL (post-migration p50 gate did not pass)" >&2
  exit 1
}
grep -Eq '"completed": [1-9]' "$OUT_JSON" || {
  echo "mobility_smoke: FAIL (no protocol steal completed)" >&2
  exit 1
}
grep -q "mobility gate failed" "$LOG" && {
  echo "mobility_smoke: FAIL (gate failure in output)" >&2
  exit 1
}

echo "mobility_smoke: PASS"
if [[ -n "$CLEANUP_OUT" ]]; then rm -rf "$CLEANUP_OUT"; fi
