#!/usr/bin/env bash
# End-to-end smoke for the real-network runtime: a 2-zone / 4-node
# multi-process cluster on 127.0.0.1, driven through the CLI's realnet
# experiment. Per protocol mode (DPaxos leader-zone, delegate,
# MultiPaxos) it commits >=10k commands over TCP, SIGKILLs a node,
# commits 500 more while it is down, restarts it, and requires a
# snapshot catch-up plus a state-machine checksum match before a clean
# SIGTERM shutdown of every child. The experiment exits nonzero if any
# of that fails, so this script is just plumbing around it.
#
# Usage: scripts/real_cluster_smoke.sh [requests]   (default: 10000)
# Env:   DPAXOS_CLI     path to dpaxos_cli (default: build/tools/dpaxos_cli)
#        SMOKE_OUT_DIR  where BENCH_realnet.json and node logs go
#                       (default: a fresh temp dir, removed on success)
set -euo pipefail

cd "$(dirname "$0")/.."
REQUESTS="${1:-10000}"
CLI="${DPAXOS_CLI:-build/tools/dpaxos_cli}"

if [[ ! -x "$CLI" ]]; then
  echo "real_cluster_smoke: $CLI not found or not executable" >&2
  echo "build it first: cmake --build build --target dpaxos_cli" >&2
  exit 1
fi

CLEANUP_OUT=""
if [[ -z "${SMOKE_OUT_DIR:-}" ]]; then
  SMOKE_OUT_DIR="$(mktemp -d /tmp/dpaxos_smoke.XXXXXX)"
  CLEANUP_OUT="$SMOKE_OUT_DIR"
fi
mkdir -p "$SMOKE_OUT_DIR"

echo "real_cluster_smoke: $REQUESTS requests/mode, logs in $SMOKE_OUT_DIR"
"$CLI" --experiment=realnet \
  --requests="$REQUESTS" \
  --logdir="$SMOKE_OUT_DIR" \
  --out="$SMOKE_OUT_DIR/BENCH_realnet.json"

echo "real_cluster_smoke: PASS"
cat "$SMOKE_OUT_DIR/BENCH_realnet.json"
if [[ -n "$CLEANUP_OUT" ]]; then rm -rf "$CLEANUP_OUT"; fi
