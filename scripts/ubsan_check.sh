#!/usr/bin/env bash
# UndefinedBehaviorSanitizer gate for the real-network runtime.
#
# Builds with -DDPAXOS_SANITIZE=undefined and runs the code that handles
# bytes from the network: the framing fuzzers (hostile length prefixes,
# truncations, bit flips through the frame splitter), the TCP transport
# contract tests (forced disconnects, queue overflow, raw-socket abuse),
# the single-process real-clock election, and a reduced-request pass of
# the multi-process cluster smoke. Any signed overflow, misaligned or
# out-of-range access in the decode path fails the script.
#
# Usage: scripts/ubsan_check.sh [build-dir]   (default: build-ubsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ubsan}"

cmake -B "$BUILD_DIR" -S . -DDPAXOS_SANITIZE=undefined
cmake --build "$BUILD_DIR" \
    --target wire_fuzz_test transport_test realnet_election_test \
             real_cluster_test dpaxos_cli -j"$(nproc)"

# halt_on_error turns the first report into a hard failure instead of a
# log line; print_stacktrace makes it actionable.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1 ${UBSAN_OPTIONS:-}"

"$BUILD_DIR/tests/wire_fuzz_test"
"$BUILD_DIR/tests/transport_test"
"$BUILD_DIR/tests/realnet_election_test"
"$BUILD_DIR/tests/real_cluster_test"
DPAXOS_CLI="$BUILD_DIR/tools/dpaxos_cli" \
    scripts/real_cluster_smoke.sh 1000

echo "ubsan_check: PASS (no undefined behavior reported)"
