// dpaxos_cli: run ad-hoc DPaxos experiments from the command line.
//
// Examples:
//   dpaxos_cli --experiment=load --mode=leaderzone --batch=50K \
//              --duration=30 --window=4 --zone=2
//   dpaxos_cli --experiment=election --mode=delegate --aws=false \
//              --zones=9 --nodes=5 --rtt=120
//   dpaxos_cli --experiment=load --mode=multipaxos --reads=0.5 --leases
//
// Prints a latency/throughput summary plus transport statistics. All
// runs are deterministic for a given --seed.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <vector>

#include "harness/chaos.h"
#include "harness/cluster.h"
#include "harness/load_driver.h"
#include "harness/nemesis.h"
#include "harness/node_server.h"
#include "harness/real_chaos.h"
#include "harness/real_cluster.h"
#include "harness/real_nemesis.h"
#include "harness/realnet_bench.h"
#include "harness/simperf.h"
#include "harness/table.h"
#include "net/tcp/tcp_client.h"

#ifndef DPAXOS_VERSION
#define DPAXOS_VERSION "unknown"
#endif

using namespace dpaxos;

namespace {

struct CliOptions {
  std::string experiment = "load";
  std::string mode = "leaderzone";
  bool aws = true;
  uint32_t zones = 7;
  uint32_t nodes = 3;
  double rtt_ms = 100.0;
  uint32_t fd = 1;
  uint32_t fz = 0;
  ZoneId zone = 0;
  uint64_t batch_bytes = 1024;
  Duration duration = 10 * kSecond;
  uint32_t window = 1;
  double reads = 0.0;
  bool leases = false;
  /// Fast-path commits (docs/PROTOCOL.md §fast-path): applies to load/
  /// election/chaos clusters, --serve replicas and realchaos servers.
  bool fast_path = false;
  uint64_t seed = 42;
  std::string topology_csv;  // path to an RTT matrix, overrides --aws

  // --experiment=chaos only.
  std::string schedule = "mixed";
  uint32_t clients = 4;
  uint32_t keys = 16;
  bool compaction = false;
  uint64_t retained = 64;

  // --experiment=simperf only.
  bool smoke = false;
  std::string out = "BENCH_simperf.json";
  bool out_set = false;  // --out given explicitly (realnet default differs)
  /// 0 = legacy single-shard workload; >0 runs the shard-parallel
  /// workload instead (see src/sim/shard_runner.h).
  uint32_t shards = 0;
  uint32_t threads = 1;
  uint32_t partitions = 32;
  uint32_t sim_window = 8;  // clients per partition (sharded workload)

  // --serve (real-network node server; docs/realnet.md).
  bool serve = false;
  NodeId node = 0;
  std::string cluster_spec;  // host:port,host:port,...
  std::string data_dir;      // acceptor WAL directory ("" = in-memory)
  bool disk_faults = false;  // FaultInjectingEnv + FAULTS control file
  Duration wal_commit_delay = 0;
  NodeId hint = 0;
  Duration catchup_delay = 300 * kMillisecond;
  Duration compaction_interval = 0;  // 0 = compaction off
  uint64_t compaction_retain = 64;

  // --client (blocking TCP client against a --serve node).
  bool client = false;
  std::string connect_spec;  // host:port
  uint64_t client_id = 0;    // 0 = derive from pid
  /// Ops in argv order: {"put", "K=V"}, {"get", "K"}, {"stats", ""},
  /// {"bench", "N"}.
  std::vector<std::pair<std::string, std::string>> client_ops;

  // --experiment=realnet only.
  uint64_t requests = 10000;
  uint32_t connections = 4;  // open-loop driver shape
  uint32_t pipeline = 256;
  double rate = 0;  // offered ops/s, 0 = closed loop
  std::string log_dir;

  // --reactors serves double duty: reactor threads for --serve (0 =
  // single-threaded loop) and the per-node override for realnet
  // (which defaults to 2 when the flag is absent).
  uint32_t reactors = 0;
  bool reactors_set = false;
  /// Reply-batch hold time for the reactor pool (--serve and realnet
  /// children); 0 keeps the legacy end-of-round flush.
  Duration reply_flush = 0;

  // --experiment=realchaos only.
  uint32_t soak_connections = 0;

  // Partition ownership (docs/PROTOCOL.md §ownership): --serve nodes
  // learn/steal ownership, realchaos clusters run with it on, realnet
  // adds the mobility cells.
  bool ownership = false;
  Duration placement_sweep = 1 * kSecond;
  Duration steal_cooldown = 10 * kSecond;
  bool mobility = false;
};

void Usage() {
  std::cout <<
      "usage: dpaxos_cli [--experiment=load|election|chaos|simperf|realnet|\n"
      "                    realchaos]\n"
      "       dpaxos_cli --serve --node=N --cluster=HOST:PORT,...\n"
      "       dpaxos_cli --client --connect=HOST:PORT [ops...]\n"
      "  --mode=leaderzone|delegate|fpaxos|multipaxos|leaderless\n"
      "  --aws=true|false       paper topology (default) or uniform\n"
      "  --topology=FILE.csv    load a zone RTT matrix (overrides --aws)\n"
      "  --zones=N --nodes=N --rtt=MS   uniform topology shape\n"
      "  --fd=N --fz=N          fault tolerance (default 1, 0)\n"
      "  --zone=Z               proposer zone (default 0)\n"
      "  --batch=BYTES[K|M]     batch size (default 1024)\n"
      "  --duration=SECONDS     virtual run time (default 10)\n"
      "  --window=N             multi-programming level (default 1)\n"
      "  --reads=F              read-only fraction 0..1 (implies --leases)\n"
      "  --leases               enable master leases\n"
      "  --fast-path            fast commits for uncontended writes\n"
      "                         (load/chaos clusters, --serve, realchaos)\n"
      "  --seed=N               RNG seed (default 42)\n"
      "chaos experiment (nemesis + retrying clients + checker):\n"
      "  --schedule=NAME        mixed|storm|partitions|lossy|moves|\n"
      "                         recovery|disk|none\n"
      "  --clients=N            client sessions (default 4)\n"
      "  --keys=N               key-pool size (default 16)\n"
      "  --compaction           enable log compaction + snapshot recovery\n"
      "  --retained=N           compaction retained suffix (default 64)\n"
      "simperf experiment (wall-clock kernel throughput):\n"
      "  --smoke                short phases (per-build smoke run)\n"
      "  --out=PATH             JSON output (default BENCH_simperf.json)\n"
      "  --shards=K             run the shard-parallel workload on K\n"
      "                         independent cluster shards (0 = legacy)\n"
      "  --threads=T            worker threads for the shard pool\n"
      "                         (0 = hardware; results identical for any T)\n"
      "  --partitions=P         total partitions across shards "
      "(default 32)\n"
      "realnet experiment (multi-process cluster over loopback TCP):\n"
      "  --requests=N           measured ops per mode (default 10000)\n"
      "  --connections=N        open-loop driver connections (default 4)\n"
      "  --pipeline=N           in-flight ops per connection (default 256)\n"
      "  --rate=OPS             offered ops/s; 0 = closed loop (default)\n"
      "  --mobility             add the mobility cells: a client\n"
      "                         population that moves zones mid-run,\n"
      "                         static-leader vs --ownership adaptive\n"
      "  --reactors=N           reactor threads per node (default 2)\n"
      "  --reply-flush-us=US    reactor reply-batch hold time (0 = flush\n"
      "                         each dispatch round; see docs/perf.md)\n"
      "  --logdir=DIR           per-node server logs (default: inherit)\n"
      "  --out=PATH             JSON output (default BENCH_realnet.json)\n"
      "realchaos experiment (proxied cluster + nemesis + checkers):\n"
      "  --schedule=NAME        mixed|partitions|process|lossy|disk|\n"
      "                         mobility|none\n"
      "  --clients=N --keys=N --reads=F --duration=SECONDS\n"
      "  --data-dir=BASE        durable cluster: node N keeps its WAL in\n"
      "                         BASE/nodeN (required for --schedule=disk)\n"
      "  --soak-connections=N   open-loop soak alongside the checked\n"
      "                         workload (default 0 = off)\n"
      "  --logdir=DIR           per-node server logs (default: inherit)\n"
      "  --out=PATH             BENCH json to merge the chaos section\n"
      "                         into (default BENCH_realnet.json)\n"
      "real-network server (see docs/realnet.md):\n"
      "  --serve --node=N --cluster=HOST:PORT,...   run one node\n"
      "  --reactors=N           reactor threads (0 = single-threaded)\n"
      "  --zones=Z              zone count (nodes split evenly)\n"
      "  --hint=N               leader hint for forwarded writes\n"
      "  --catchup-delay-ms=MS  snapshot catch-up delay after start\n"
      "  --compaction-interval-ms=MS   periodic compaction (0 = off)\n"
      "  --compaction-retain=N  decided suffix kept behind compaction\n"
      "  --data-dir=DIR         acceptor WAL directory: replies wait for\n"
      "                         fdatasync, restarts recover from disk\n"
      "  --wal-commit-us=US     WAL group-commit window (default 0)\n"
      "  --disk-faults          inject disk faults armed via DIR/FAULTS\n"
      "  --ownership            partition ownership: learn the owner from\n"
      "                         decided transfer records, redirect\n"
      "                         misdirected clients, steal the partition\n"
      "                         toward observed traffic\n"
      "  --placement-sweep-ms=MS   placement sweep period (default 1000)\n"
      "  --steal-cooldown-ms=MS    post-transfer cooldown (default 10000)\n"
      "real-network client:\n"
      "  --client --connect=HOST:PORT [--id=N]\n"
      "  --put=K=V --get=K --stats --bench=N   ops, run in argv order\n"
      "  --version              print build version\n";
}

bool ParseArgImpl(const std::string& arg, CliOptions* o) {
  auto value_of = [&](const char* name, std::string* out) {
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0) return false;
    *out = arg.substr(prefix.size());
    return true;
  };
  std::string v;
  if (value_of("--experiment", &v)) {
    o->experiment = v;
  } else if (value_of("--mode", &v)) {
    o->mode = v;
  } else if (value_of("--aws", &v)) {
    o->aws = v != "false" && v != "0";
  } else if (value_of("--topology", &v)) {
    o->topology_csv = v;
  } else if (value_of("--zones", &v)) {
    o->zones = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--nodes", &v)) {
    o->nodes = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--rtt", &v)) {
    o->rtt_ms = std::stod(v);
  } else if (value_of("--fd", &v)) {
    o->fd = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--fz", &v)) {
    o->fz = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--zone", &v)) {
    o->zone = static_cast<ZoneId>(std::stoul(v));
  } else if (value_of("--batch", &v)) {
    uint64_t mult = 1;
    if (!v.empty() && (v.back() == 'K' || v.back() == 'k')) {
      mult = 1024;
      v.pop_back();
    } else if (!v.empty() && (v.back() == 'M' || v.back() == 'm')) {
      mult = 1024 * 1024;
      v.pop_back();
    }
    o->batch_bytes = std::stoull(v) * mult;
  } else if (value_of("--duration", &v)) {
    o->duration = static_cast<Duration>(std::stod(v) * kSecond);
  } else if (value_of("--window", &v)) {
    o->window = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--reads", &v)) {
    o->reads = std::stod(v);
    if (o->reads > 0) o->leases = true;
  } else if (arg == "--leases") {
    o->leases = true;
  } else if (arg == "--fast-path") {
    o->fast_path = true;
  } else if (value_of("--reply-flush-us", &v)) {
    o->reply_flush = std::stoull(v) * kMicrosecond;
  } else if (value_of("--seed", &v)) {
    o->seed = std::stoull(v);
  } else if (value_of("--schedule", &v)) {
    o->schedule = v;
  } else if (value_of("--clients", &v)) {
    o->clients = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--keys", &v)) {
    o->keys = static_cast<uint32_t>(std::stoul(v));
  } else if (arg == "--compaction") {
    o->compaction = true;
  } else if (value_of("--retained", &v)) {
    o->retained = std::stoull(v);
  } else if (arg == "--smoke") {
    o->smoke = true;
  } else if (value_of("--out", &v)) {
    o->out = v;
    o->out_set = true;
  } else if (arg == "--serve") {
    o->serve = true;
  } else if (value_of("--node", &v)) {
    o->node = static_cast<NodeId>(std::stoul(v));
  } else if (value_of("--cluster", &v)) {
    o->cluster_spec = v;
  } else if (value_of("--data-dir", &v)) {
    o->data_dir = v;
  } else if (value_of("--wal-commit-us", &v)) {
    o->wal_commit_delay = std::stoull(v) * kMicrosecond;
  } else if (arg == "--disk-faults") {
    o->disk_faults = true;
  } else if (value_of("--hint", &v)) {
    o->hint = static_cast<NodeId>(std::stoul(v));
  } else if (value_of("--catchup-delay-ms", &v)) {
    o->catchup_delay = std::stoull(v) * kMillisecond;
  } else if (value_of("--compaction-interval-ms", &v)) {
    o->compaction_interval = std::stoull(v) * kMillisecond;
  } else if (value_of("--compaction-retain", &v)) {
    o->compaction_retain = std::stoull(v);
  } else if (arg == "--client") {
    o->client = true;
  } else if (value_of("--connect", &v)) {
    o->connect_spec = v;
  } else if (value_of("--id", &v)) {
    o->client_id = std::stoull(v);
  } else if (value_of("--put", &v)) {
    o->client_ops.emplace_back("put", v);
  } else if (value_of("--get", &v)) {
    o->client_ops.emplace_back("get", v);
  } else if (arg == "--stats") {
    o->client_ops.emplace_back("stats", "");
  } else if (value_of("--bench", &v)) {
    o->client_ops.emplace_back("bench", v);
  } else if (value_of("--requests", &v)) {
    o->requests = std::stoull(v);
  } else if (value_of("--connections", &v)) {
    o->connections = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--pipeline", &v)) {
    o->pipeline = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--rate", &v)) {
    o->rate = std::stod(v);
  } else if (value_of("--reactors", &v)) {
    o->reactors = static_cast<uint32_t>(std::stoul(v));
    o->reactors_set = true;
  } else if (value_of("--soak-connections", &v)) {
    o->soak_connections = static_cast<uint32_t>(std::stoul(v));
  } else if (arg == "--ownership") {
    o->ownership = true;
  } else if (value_of("--placement-sweep-ms", &v)) {
    o->placement_sweep = std::stoull(v) * kMillisecond;
  } else if (value_of("--steal-cooldown-ms", &v)) {
    o->steal_cooldown = std::stoull(v) * kMillisecond;
  } else if (arg == "--mobility") {
    o->mobility = true;
  } else if (value_of("--logdir", &v)) {
    o->log_dir = v;
  } else if (arg == "--version") {
    std::cout << "dpaxos_cli " << DPAXOS_VERSION << "\n";
    std::exit(0);
  } else if (value_of("--shards", &v)) {
    o->shards = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--threads", &v)) {
    o->threads = static_cast<uint32_t>(std::stoul(v));
  } else if (value_of("--partitions", &v)) {
    o->partitions = static_cast<uint32_t>(std::stoul(v));
  } else if (arg == "--help" || arg == "-h") {
    Usage();
    std::exit(0);
  } else {
    return false;
  }
  return true;
}

// std::sto* throw on malformed numbers; surface that as a usage error
// instead of terminating.
bool ParseArg(const std::string& arg, CliOptions* o) {
  try {
    return ParseArgImpl(arg, o);
  } catch (const std::exception&) {
    return false;
  }
}

Result<ProtocolMode> ParseMode(const std::string& mode) {
  if (mode == "leaderzone") return ProtocolMode::kLeaderZone;
  if (mode == "delegate") return ProtocolMode::kDelegate;
  if (mode == "fpaxos") return ProtocolMode::kFlexiblePaxos;
  if (mode == "multipaxos") return ProtocolMode::kMultiPaxos;
  if (mode == "leaderless") return ProtocolMode::kLeaderless;
  return Status::InvalidArgument("unknown --mode " + mode);
}

int RunLoad(Cluster& cluster, const CliOptions& o) {
  Replica* proposer = cluster.ReplicaInZone(o.zone);
  if (cluster.mode() != ProtocolMode::kLeaderless) {
    Result<Duration> elect = cluster.ElectLeader(proposer->id());
    if (!elect.ok()) {
      std::cerr << "election failed: " << elect.status().ToString() << "\n";
      return 1;
    }
    std::cout << "leader: node " << proposer->id() << " in "
              << cluster.topology().ZoneName(o.zone) << ", elected in "
              << DurationToString(elect.value()) << "\n";
    if (o.leases) {
      // Warm-up commit to acquire the lease.
      (void)cluster.Commit(proposer->id(), Value::Synthetic(1, 128));
    }
  }

  LoadOptions load;
  load.batch_bytes = o.batch_bytes;
  load.duration = o.duration;
  load.window = o.window;
  load.read_only_fraction = o.reads;
  const LoadResult result = RunClosedLoop(cluster, proposer, load);

  TablePrinter table({"metric", "value"});
  table.AddRow({"committed batches", std::to_string(result.committed)});
  table.AddRow({"failed", std::to_string(result.failed)});
  table.AddRow({"throughput", Fmt(result.ThroughputKBps(), 1) + " KB/s"});
  table.AddRow({"commit latency mean",
                Fmt(result.commit_latency.MeanMillis(), 2) + " ms"});
  table.AddRow({"commit latency p50",
                Fmt(result.commit_latency.P50Millis(), 2) + " ms"});
  table.AddRow({"commit latency p99",
                Fmt(result.commit_latency.P99Millis(), 2) + " ms"});
  if (result.reads_served > 0) {
    table.AddRow({"lease-local reads", std::to_string(result.reads_served)});
    table.AddRow({"read latency mean",
                  Fmt(result.read_latency.MeanMillis(), 2) + " ms"});
  }
  table.AddRow({"cluster bytes sent",
                Fmt(static_cast<double>(cluster.transport().TotalBytesSent()) /
                        1024.0 / 1024.0,
                    2) +
                    " MB"});
  table.Print(std::cout);

  const ProtocolCounters& pc = proposer->counters();
  std::cout << "\nproposer protocol counters: elections="
            << pc.elections_started << " proposes=" << pc.proposes_sent
            << " retransmits=" << pc.retransmits
            << " step_downs=" << pc.step_downs
            << " intents_detected=" << pc.intents_detected << "\n";
  return 0;
}

int RunElection(Cluster& cluster, const CliOptions& o) {
  (void)o;
  TablePrinter table({"aspirant zone", "election latency (ms)"});
  for (ZoneId z = 0; z < cluster.topology().num_zones(); ++z) {
    // Fresh ballot per zone; prior leaders get preempted.
    Replica* aspirant = cluster.ReplicaInZone(z);
    aspirant->PrimeBallot(Ballot{(z + 1) * 100, 0});
    Result<Duration> latency = cluster.ElectLeader(aspirant->id());
    table.AddRow({cluster.topology().ZoneName(z),
                  latency.ok() ? Fmt(ToMillis(latency.value()), 1)
                               : latency.status().ToString()});
  }
  table.Print(std::cout);
  return 0;
}

int RunChaosCli(const CliOptions& o, ProtocolMode mode) {
  if (o.schedule != "none") {
    const auto names = Nemesis::ScheduleNames();
    if (std::find(names.begin(), names.end(), o.schedule) == names.end()) {
      std::cerr << "unknown --schedule " << o.schedule << "\n";
      return 2;
    }
  }
  ChaosOptions chaos;
  chaos.mode = mode;
  chaos.schedule = o.schedule;
  chaos.seed = o.seed;
  chaos.zones = o.aws ? 5 : o.zones;  // chaos always runs uniform
  chaos.nodes_per_zone = o.nodes;
  chaos.inter_zone_rtt_ms = o.aws ? 50.0 : o.rtt_ms;
  chaos.num_clients = o.clients;
  chaos.num_keys = o.keys;
  if (o.reads > 0) chaos.read_fraction = o.reads;
  chaos.duration = o.duration;
  chaos.enable_compaction = o.compaction;
  chaos.compaction_retained_suffix = o.retained;
  chaos.enable_fast_path = o.fast_path;

  std::cout << "== dpaxos_cli: chaos / " << ProtocolModeName(mode)
            << ", schedule=" << chaos.schedule << ", " << chaos.zones
            << " zones x " << chaos.nodes_per_zone << " nodes, seed="
            << chaos.seed
            << (o.compaction ? ", compaction on" : "") << "\n\n";
  const ChaosReport report = RunChaos(chaos);
  if (!report.nemesis_log.empty()) {
    std::cout << "nemesis actions:\n";
    for (const std::string& line : report.nemesis_log) {
      std::cout << "  " << line << "\n";
    }
    std::cout << "\n";
  }
  if (!report.converged) {
    std::cout << "node states:\n";
    for (const std::string& line : report.node_states) {
      std::cout << "  " << line << "\n";
    }
    std::cout << "\n";
  }
  std::cout << report.Summary() << "\n";
  return report.ok() ? 0 : 1;
}

/// Shard-parallel simperf: per-shard table (including the ShardedStore
/// steal/migration counters) plus the aggregate, written to JSON with the
/// "sharded" section. Results are bit-identical for any --threads value.
void PrintSimperfMobility(const SimperfMobilityReport& mobility) {
  std::cout << "\nmobility tour (3 zones, inter "
            << Fmt(mobility.inter_zone_rtt_ms, 0) << "ms / intra "
            << Fmt(mobility.intra_zone_rtt_ms, 0) << "ms RTT):\n";
  TablePrinter table({"cell", "zone", "ops", "p50 (ms)", "p99 (ms)",
                      "tail p50 (ms)", "steals"});
  for (const SimperfMobilityCell& cell : mobility.cells) {
    for (const SimperfMobilitySegment& seg : cell.segments) {
      const bool last = &seg == &cell.segments.back();
      table.AddRow({cell.label, std::to_string(seg.zone),
                    std::to_string(seg.ops), Fmt(seg.p50_ms, 2),
                    Fmt(seg.p99_ms, 2), Fmt(seg.tail_p50_ms, 2),
                    last ? std::to_string(cell.steals) : ""});
    }
  }
  table.Print(std::cout);
  std::cout << "adaptive_tracks_client: "
            << (mobility.adaptive_tracks_client ? "yes" : "NO") << "\n";
}

int RunSimperfShardedCli(const CliOptions& o) {
  SimperfOptions options;
  options.smoke = o.smoke;
  options.seed = o.seed;
  options.shards = o.shards;
  options.threads = o.threads;
  options.partitions = std::max(o.partitions, o.shards);
  options.window = o.sim_window;
  std::cout << "== dpaxos_cli: simperf sharded"
            << (options.smoke ? " (smoke)" : "") << ", shards="
            << options.shards << " threads=" << options.threads
            << " partitions=" << options.partitions << ", seed="
            << options.seed << "\n\n";
  const ShardedSimperfReport report = RunSimperfSharded(options);
  TablePrinter table({"shard", "partitions", "wall (ms)", "events",
                      "events/sec", "committed", "steals", "migrations"});
  for (const SimperfShard& s : report.per_shard) {
    table.AddRow({std::to_string(s.shard_id), std::to_string(s.partitions),
                  Fmt(s.wall_ms, 1), std::to_string(s.events),
                  Fmt(s.wall_ms > 0 ? s.events / (s.wall_ms / 1000.0) : 0,
                      0),
                  std::to_string(s.committed), std::to_string(s.steals),
                  std::to_string(s.migrations)});
  }
  table.AddRow({"TOTAL", std::to_string(report.partitions),
                Fmt(report.wall_ms, 1), std::to_string(report.events),
                Fmt(report.EventsPerSec(), 0),
                std::to_string(report.committed),
                std::to_string(report.steals),
                std::to_string(report.migrations)});
  table.Print(std::cout);
  std::cout << "\n" << report.counters.ToString() << "\n"
            << "aggregate " << Fmt(report.EventsPerSec(), 0)
            << " events/sec on " << report.threads
            << " threads, fingerprint " << report.Fingerprint() << "\n";

  // The legacy single-shard workload still provides the baseline/current
  // sections so the JSON shape stays stable for downstream tooling.
  SimperfOptions legacy;
  legacy.smoke = o.smoke;
  legacy.seed = o.seed;
  const SimperfReport current = RunSimperf(legacy);
  const SimperfMobilityReport mobility = RunSimperfMobility(legacy);
  PrintSimperfMobility(mobility);
  SimperfJsonExtras extras;
  extras.sharded = &report;
  extras.mobility = &mobility;
  if (!WriteSimperfJson(
          o.out, SimperfJson(current, legacy.baseline_events_per_sec,
                             extras))) {
    return 1;
  }
  std::cout << "wrote " << o.out << "\n";
  return 0;
}

int RunServe(const CliOptions& o, ProtocolMode mode) {
  Result<std::vector<HostPort>> cluster = ParseClusterSpec(o.cluster_spec);
  if (!cluster.ok()) {
    std::cerr << "bad --cluster: " << cluster.status().ToString() << "\n";
    return 2;
  }
  if (cluster->empty() || o.node >= cluster->size()) {
    std::cerr << "--node must index into --cluster\n";
    return 2;
  }
  if (o.zones == 0 || cluster->size() % o.zones != 0) {
    std::cerr << "--zones must evenly divide the cluster size\n";
    return 2;
  }
  NodeServerOptions server;
  server.node = o.node;
  server.cluster = std::move(cluster).value();
  server.zones = o.zones;
  server.mode = mode;
  server.ft = FaultTolerance{0, 0};  // a 2x2 cluster admits nothing more
  server.seed = o.seed;
  server.leader_hint = o.hint;
  server.catchup_delay = o.catchup_delay;
  server.compaction_interval = o.compaction_interval;
  server.reactors = o.reactors;
  server.reply_flush_delay = o.reply_flush;
  server.replica.enable_compaction = o.compaction_interval > 0;
  server.replica.compaction_retained_suffix = o.compaction_retain;
  server.replica.enable_fast_path = o.fast_path;
  server.data_dir = o.data_dir;
  server.disk_faults = o.disk_faults;
  server.wal_commit_delay = o.wal_commit_delay;
  server.ownership = o.ownership;
  server.placement_sweep_interval = o.placement_sweep;
  server.steal_cooldown = o.steal_cooldown;
  if (o.disk_faults && o.data_dir.empty()) {
    std::cerr << "--disk-faults requires --data-dir\n";
    return 2;
  }
  NodeServer node(std::move(server));
  Status st = node.Start();
  if (!st.ok()) {
    std::cerr << "serve failed: " << st.ToString() << "\n";
    return 1;
  }
  node.InstallSignalHandlers();
  node.Run();
  std::cout << node.StatsString() << "\n";
  return 0;
}

int RunClient(const CliOptions& o) {
  Result<HostPort> addr = HostPort::Parse(o.connect_spec);
  if (!addr.ok()) {
    std::cerr << "bad --connect: " << addr.status().ToString() << "\n";
    return 2;
  }
  const uint64_t id =
      o.client_id != 0 ? o.client_id : static_cast<uint64_t>(getpid());
  TcpClient client(id);
  Status st = client.Connect(addr.value(), 2 * kSecond);
  if (!st.ok()) {
    std::cerr << "connect failed: " << st.ToString() << "\n";
    return 1;
  }
  if (o.client_ops.empty()) {
    std::cerr << "--client needs at least one of --put/--get/--stats/--bench\n";
    return 2;
  }
  for (const auto& [op, arg] : o.client_ops) {
    if (op == "put") {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        std::cerr << "--put wants K=V\n";
        return 2;
      }
      st = client.Put(arg.substr(0, eq), arg.substr(eq + 1), 5 * kSecond);
      if (!st.ok()) {
        std::cerr << "put failed: " << st.ToString() << "\n";
        return 1;
      }
      std::cout << "OK\n";
    } else if (op == "get") {
      Result<std::string> value = client.Get(arg, 5 * kSecond);
      if (!value.ok()) {
        std::cerr << "get failed: " << value.status().ToString() << "\n";
        return 1;
      }
      std::cout << value.value() << "\n";
    } else if (op == "stats") {
      Result<std::string> stats = client.Stats(5 * kSecond);
      if (!stats.ok()) {
        std::cerr << "stats failed: " << stats.status().ToString() << "\n";
        return 1;
      }
      std::cout << stats.value() << "\n";
    } else {  // bench
      const uint64_t n = std::stoull(arg);
      Histogram latency;
      for (uint64_t i = 0; i < n; ++i) {
        const auto start = std::chrono::steady_clock::now();
        st = client.Put("bench" + std::to_string(i % 128),
                        std::to_string(i), 5 * kSecond);
        if (!st.ok()) {
          std::cerr << "bench put " << i << " failed: " << st.ToString()
                    << "\n";
          return 1;
        }
        latency.Add(static_cast<Duration>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
      }
      std::cout << "bench " << n << " puts: " << latency.Summary() << "\n";
    }
  }
  return 0;
}

int RunRealnetCli(const CliOptions& o) {
  RealnetBenchOptions bench;
  bench.server_binary = "/proc/self/exe";
  bench.requests = o.requests;
  bench.seed = o.seed;
  bench.connections = o.connections;
  bench.pipeline = o.pipeline;
  bench.rate = o.rate;
  if (o.reactors_set) bench.reactors = o.reactors;
  bench.reply_flush_us = static_cast<uint32_t>(o.reply_flush / kMicrosecond);
  bench.json_path = o.out_set ? o.out : "BENCH_realnet.json";
  bench.log_dir = o.log_dir;
  bench.data_dir_base = o.data_dir;  // "" = temp dir for the durable cell
  bench.wal_commit_delay = o.wal_commit_delay;
  bench.mobility = o.mobility;
  std::cout << "== dpaxos_cli: realnet, 2 zones x 2 nodes on loopback, "
            << bench.requests << " ops/mode over " << bench.connections
            << " conns x " << bench.pipeline << " pipeline"
            << (bench.rate > 0 ? " @" + Fmt(bench.rate, 0) + " ops/s"
                               : " (closed loop)")
            << ", reactors=" << bench.reactors << ", seed=" << bench.seed
            << "\n\n";
  Result<RealnetBenchReport> report = RunRealnetBench(bench);
  if (!report.ok()) {
    std::cerr << "realnet failed: " << report.status().ToString() << "\n";
    return 1;
  }
  TablePrinter table({"cell", "ops", "ops/sec", "p50 (ms)", "p99 (ms)",
                      "p999 (ms)", "fast c/f", "frames/writev",
                      "snap installs", "checksum match"});
  for (const RealnetModeResult& r : report->results) {
    const double frames_per_writev =
        r.tcp_writev_calls > 0
            ? static_cast<double>(r.tcp_writev_calls + r.tcp_frames_coalesced) /
                  static_cast<double>(r.tcp_writev_calls)
            : 0;
    table.AddRow({r.label, std::to_string(r.measured_ops),
                  Fmt(r.throughput_ops, 1), Fmt(r.latency.P50Millis(), 2),
                  Fmt(r.latency.P99Millis(), 2),
                  Fmt(r.latency.P999Millis(), 2),
                  std::to_string(r.fast_commits) + "/" +
                      std::to_string(r.fast_fallbacks),
                  Fmt(frames_per_writev, 2),
                  std::to_string(r.snapshots_installed),
                  r.checksum_match ? "yes" : "NO"});
  }
  table.Print(std::cout);
  for (const RealnetModeResult& r : report->results) {
    if (r.snapshots_installed == 0 || r.checksum_match == 0) {
      std::cerr << "\nrecovery check failed for " << r.label << "\n";
      return 1;
    }
  }
  if (!report->mobility.empty()) {
    std::cout << "\nmobility (leader-zone, inter "
              << Fmt(report->mobility.front().inter_oneway_ms, 0)
              << "ms one-way, gate: post p50 < 2x intra RTT):\n";
    TablePrinter mob({"cell", "phase", "ops", "p50 (ms)", "p99 (ms)",
                      "steals", "migration (s)", "redirects", "gate"});
    for (const RealnetMobilityResult& m : report->mobility) {
      for (const RealnetMobilityPhase& ph : m.phases) {
        const bool last = &ph == &m.phases.back();
        mob.AddRow({m.label, ph.name, std::to_string(ph.ops),
                    Fmt(ph.latency.P50Millis(), 2),
                    Fmt(ph.latency.P99Millis(), 2),
                    last ? std::to_string(m.steals_completed) + "/" +
                               std::to_string(m.steals_attempted)
                         : "",
                    last ? Fmt(m.migration_seconds, 2) : "",
                    last ? std::to_string(m.redirects_followed) : "",
                    last ? (m.gate_pass ? (m.adaptive ? "pass" : "-")
                                        : "FAIL")
                         : ""});
      }
    }
    mob.Print(std::cout);
    for (const RealnetMobilityResult& m : report->mobility) {
      if (m.adaptive && (!m.gate_pass || m.steals_completed == 0)) {
        std::cerr << "\nmobility gate failed for " << m.label
                  << ": steals=" << m.steals_completed << " post_p50="
                  << Fmt(m.phases.back().latency.P50Millis(), 2)
                  << "ms (limit " << Fmt(2 * m.intra_rtt_ms, 1) << "ms)\n";
        return 1;
      }
    }
  }
  if (!bench.json_path.empty()) {
    std::ofstream out_file(bench.json_path);
    if (!out_file) {
      std::cerr << "cannot write " << bench.json_path << "\n";
      return 1;
    }
    out_file << RealnetReportToJson(bench, report.value());
    std::cout << "\nwrote " << bench.json_path << "\n";
  }
  return 0;
}

int RunRealChaosCli(const CliOptions& o, ProtocolMode mode) {
  if (o.schedule != "none") {
    const auto names = RealNemesis::ScheduleNames();
    if (std::find(names.begin(), names.end(), o.schedule) == names.end()) {
      std::cerr << "unknown --schedule " << o.schedule
                << " (realchaos schedules: "
                   "mixed|partitions|process|lossy|disk|mobility)\n";
      return 2;
    }
  }
  RealChaosOptions chaos;
  chaos.server_binary = "/proc/self/exe";
  chaos.mode = mode;
  chaos.schedule = o.schedule;
  chaos.seed = o.seed;
  chaos.num_clients = o.clients;
  chaos.num_keys = std::max(o.keys, 32u);
  if (o.reads > 0) chaos.read_fraction = o.reads;
  chaos.duration = o.duration;
  chaos.soak_connections = o.soak_connections;
  chaos.log_dir = o.log_dir;
  chaos.fast_path = o.fast_path;
  chaos.ownership = o.ownership || o.schedule == "mobility";
  if (!o.data_dir.empty()) {
    chaos.durable = true;
    chaos.data_dir_base = o.data_dir;
    chaos.wal_commit_delay = o.wal_commit_delay;
  } else if (o.schedule == "disk") {
    std::cerr << "--schedule=disk requires --data-dir=BASE "
                 "(durable cluster)\n";
    return 2;
  }
  std::cout << "== dpaxos_cli: realchaos / " << ProtocolModeName(mode)
            << ", schedule=" << chaos.schedule << ", " << chaos.zones
            << " zones x " << chaos.nodes_per_zone
            << " proxied nodes, seed=" << chaos.seed << "\n\n";
  const RealChaosReport report = RunRealChaos(chaos);
  if (!report.nemesis_log.empty()) {
    std::cout << "nemesis actions:\n";
    for (const std::string& line : report.nemesis_log) {
      std::cout << "  " << line << "\n";
    }
    std::cout << "\n";
  }
  for (const std::string& violation : report.consistency.violations) {
    std::cout << "VIOLATION: " << violation << "\n";
  }
  std::cout << report.Summary() << "\n";

  // The chaos soak cell rides in BENCH_realnet.json next to the perf
  // rows rather than overwriting them.
  const std::string json_path = o.out_set ? o.out : "BENCH_realnet.json";
  if (!json_path.empty()) {
    std::string existing;
    {
      std::ifstream in(json_path);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        existing = buf.str();
      }
    }
    std::ofstream out_file(json_path);
    if (!out_file) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out_file << MergeChaosIntoBenchJson(
        existing, RealChaosSectionJson(chaos, report));
    std::cout << "merged chaos section into " << json_path << "\n";
  }
  return report.ok() ? 0 : 1;
}

int RunSimperfCli(const CliOptions& o) {
  if (o.shards > 0) return RunSimperfShardedCli(o);
  SimperfOptions options;
  options.smoke = o.smoke;
  options.seed = o.seed;
  std::cout << "== dpaxos_cli: simperf"
            << (options.smoke ? " (smoke)" : "") << ", seed="
            << options.seed << "\n\n";
  const SimperfReport report = RunSimperf(options);
  TablePrinter table({"phase", "wall (ms)", "events", "events/sec"});
  for (const auto& p : report.phases) {
    table.AddRow({p.name, Fmt(p.wall_ms, 1), std::to_string(p.events),
                  Fmt(p.wall_ms > 0 ? p.events / (p.wall_ms / 1000.0) : 0,
                      0)});
  }
  table.AddRow({"TOTAL", Fmt(report.wall_ms, 1),
                std::to_string(report.events),
                Fmt(report.EventsPerSec(), 0)});
  table.Print(std::cout);
  std::cout << "\n" << report.counters.ToString() << "\n"
            << "baseline " << Fmt(options.baseline_events_per_sec, 0)
            << " -> current " << Fmt(report.EventsPerSec(), 0)
            << " events/sec\n";
  const SimperfMobilityReport mobility = RunSimperfMobility(options);
  PrintSimperfMobility(mobility);
  SimperfJsonExtras extras;
  extras.mobility = &mobility;
  if (!WriteSimperfJson(
          o.out, SimperfJson(report, options.baseline_events_per_sec,
                             extras))) {
    return 1;
  }
  std::cout << "wrote " << o.out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(argv[i], &options)) {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      Usage();
      return 2;
    }
  }

  Result<ProtocolMode> mode = ParseMode(options.mode);
  if (!mode.ok()) {
    std::cerr << mode.status().ToString() << "\n";
    return 2;
  }

  // Server and client modes bypass the experiment dispatch entirely.
  if (options.serve) return RunServe(options, mode.value());
  if (options.client) return RunClient(options);

  // Validate the experiment name up front, before any cluster is built
  // or output produced — a typo must not half-run something else.
  if (options.experiment != "load" && options.experiment != "election" &&
      options.experiment != "chaos" && options.experiment != "simperf" &&
      options.experiment != "realnet" &&
      options.experiment != "realchaos") {
    std::cerr << "unknown --experiment " << options.experiment << "\n";
    Usage();
    return 2;
  }

  // Chaos, simperf and realnet build their own clusters.
  if (options.experiment == "chaos") {
    return RunChaosCli(options, mode.value());
  }
  if (options.experiment == "simperf") {
    return RunSimperfCli(options);
  }
  if (options.experiment == "realnet") {
    return RunRealnetCli(options);
  }
  if (options.experiment == "realchaos") {
    return RunRealChaosCli(options, mode.value());
  }

  ClusterOptions cluster_options;
  cluster_options.ft = FaultTolerance{options.fd, options.fz};
  cluster_options.seed = options.seed;
  cluster_options.replica.max_inflight = options.window;
  cluster_options.replica.enable_leases = options.leases;
  cluster_options.replica.enable_fast_path = options.fast_path;

  Topology topology =
      options.aws ? Topology::AwsSevenZones(options.nodes)
                  : Topology::Uniform(options.zones, options.nodes,
                                      options.rtt_ms);
  if (!options.topology_csv.empty()) {
    std::ifstream in(options.topology_csv);
    if (!in) {
      std::cerr << "cannot read " << options.topology_csv << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    Result<Topology> parsed =
        Topology::FromRttCsv(buf.str(), options.nodes);
    if (!parsed.ok()) {
      std::cerr << "bad topology csv: " << parsed.status().ToString()
                << "\n";
      return 2;
    }
    topology = std::move(parsed).value();
  }
  if (options.zone >= topology.num_zones()) {
    std::cerr << "--zone out of range\n";
    return 2;
  }
  Cluster cluster(std::move(topology), mode.value(), cluster_options);

  std::cout << "== dpaxos_cli: " << options.experiment << " / "
            << ProtocolModeName(mode.value()) << ", "
            << cluster.topology().num_zones() << " zones x "
            << cluster.topology().nodes_in_zone(0) << " nodes, fd="
            << options.fd << " fz=" << options.fz << ", seed="
            << options.seed << "\n\n";

  if (options.experiment == "load") return RunLoad(cluster, options);
  return RunElection(cluster, options);
}
