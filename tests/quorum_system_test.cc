// Property tests for the quorum systems: the paper's inter-intersection
// (Definition 1) and intra-intersection (Definition 2) conditions, quorum
// sizes, and target selection — parameterized over fault-tolerance levels
// and topologies.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/random.h"
#include "quorum/quorum_system.h"

namespace dpaxos {
namespace {

struct Scenario {
  std::string name;
  uint32_t zones;
  uint32_t nodes_per_zone;
  FaultTolerance ft;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  return info.param.name;
}

class QuorumSystemTest : public ::testing::TestWithParam<Scenario> {
 protected:
  QuorumSystemTest()
      : topo_(GetParam().zones == 7 && GetParam().nodes_per_zone == 3
                  ? Topology::AwsSevenZones()
                  : Topology::Uniform(GetParam().zones,
                                      GetParam().nodes_per_zone, 100.0)),
        ft_(GetParam().ft),
        rng_(2024) {}

  // Random subset of all nodes, used as an avoidance set to diversify the
  // satisfying sets sampled from a rule.
  std::set<NodeId> RandomAvoidSet() {
    std::set<NodeId> avoid;
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      if (rng_.NextBool(0.3)) avoid.insert(n);
    }
    return avoid;
  }

  Topology topo_;
  FaultTolerance ft_;
  Rng rng_;
};

TEST_P(QuorumSystemTest, SmallestReplicationQuorumSizeAndShape) {
  for (NodeId leader = 0; leader < topo_.num_nodes(); ++leader) {
    const std::vector<NodeId> q =
        SmallestReplicationQuorum(topo_, leader, ft_);
    // (fd+1) nodes in each of (fz+1) zones (paper Section 4.2).
    EXPECT_EQ(q.size(), ft_.ReplicationQuorumSize());
    EXPECT_NE(std::find(q.begin(), q.end(), leader), q.end());
    std::map<ZoneId, int> per_zone;
    for (NodeId n : q) per_zone[topo_.ZoneOf(n)]++;
    EXPECT_EQ(per_zone.size(), ft_.fz + 1);
    for (const auto& [zone, count] : per_zone) {
      EXPECT_EQ(count, static_cast<int>(ft_.fd + 1));
    }
    // The leader's own zone is part of the quorum (access locality).
    EXPECT_TRUE(per_zone.count(topo_.ZoneOf(leader)) > 0);
  }
}

TEST_P(QuorumSystemTest, ZoneCentricSatisfiesInterIntersection) {
  ZoneCentricQuorumSystem qs(&topo_, ft_);
  const QuorumRule le = qs.LeaderElectionRule(0, LeaderZoneView{});
  // Definition 1: the LE quorum must intersect EVERY possible replication
  // quorum — in particular every smallest one, anywhere.
  for (NodeId leader = 0; leader < topo_.num_nodes(); ++leader) {
    const std::vector<NodeId> rq =
        SmallestReplicationQuorum(topo_, leader, ft_);
    EXPECT_TRUE(le.AlwaysIntersects({rq.begin(), rq.end()}))
        << "LE quorum avoids replication quorum of leader " << leader;
  }
  // And every satisfying set of any DefaultReplicationRule.
  for (NodeId leader = 0; leader < topo_.num_nodes(); ++leader) {
    const QuorumRule repl = qs.DefaultReplicationRule(leader);
    for (int i = 0; i < 10; ++i) {
      const std::vector<NodeId> set =
          repl.PickSatisfyingSetAvoiding(RandomAvoidSet());
      if (set.empty()) continue;
      EXPECT_TRUE(le.AlwaysIntersects({set.begin(), set.end()}));
    }
  }
}

TEST_P(QuorumSystemTest, DelegateSatisfiesIntraIntersection) {
  DelegateQuorumSystem qs(&topo_, ft_);
  const QuorumRule le = qs.LeaderElectionRule(0, LeaderZoneView{});
  // Definition 2: any two LE quorums intersect. Sample minimal satisfying
  // sets adversarially and check the other rule cannot avoid them.
  for (int i = 0; i < 25; ++i) {
    const std::vector<NodeId> set =
        le.PickSatisfyingSetAvoiding(RandomAvoidSet());
    if (set.empty()) continue;
    EXPECT_TRUE(le.AlwaysIntersects({set.begin(), set.end()}))
        << "two delegate LE quorums can be disjoint";
  }
}

TEST_P(QuorumSystemTest, DelegateDoesNotInterIntersect) {
  // The point of Expanding Quorums: a Delegate LE quorum need NOT
  // intersect all replication quorums (it expands at runtime instead).
  // Only observable when a replication quorum can be zone-disjoint from
  // some majority of zones.
  if (MajorityOf(topo_.num_zones()) + ft_.fz + 1 > topo_.num_zones()) {
    GTEST_SKIP() << "topology too small for zone-disjoint quorums";
  }
  DelegateQuorumSystem qs(&topo_, ft_);
  const QuorumRule le = qs.LeaderElectionRule(0, LeaderZoneView{});
  bool some_avoidable = false;
  for (NodeId leader = 0; leader < topo_.num_nodes(); ++leader) {
    const std::vector<NodeId> rq =
        SmallestReplicationQuorum(topo_, leader, ft_);
    if (!le.AlwaysIntersects({rq.begin(), rq.end()})) some_avoidable = true;
  }
  EXPECT_TRUE(some_avoidable)
      << "delegate LE unexpectedly intersects every replication quorum";
}

TEST_P(QuorumSystemTest, LeaderZoneSatisfiesIntraIntersection) {
  LeaderZoneQuorumSystem qs(&topo_, ft_);
  LeaderZoneView view;
  view.current = topo_.num_zones() - 1;
  const QuorumRule le = qs.LeaderElectionRule(0, view);
  for (int i = 0; i < 25; ++i) {
    const std::vector<NodeId> set =
        le.PickSatisfyingSetAvoiding(RandomAvoidSet());
    if (set.empty()) continue;
    EXPECT_TRUE(le.AlwaysIntersects({set.begin(), set.end()}));
  }
}

TEST_P(QuorumSystemTest, LeaderZoneTransitionIntersectsBothZones) {
  LeaderZoneQuorumSystem qs(&topo_, ft_);
  LeaderZoneView stable;
  stable.current = 0;
  LeaderZoneView transition;
  transition.current = 0;
  transition.next = 1;
  const QuorumRule old_rule = qs.LeaderElectionRule(0, stable);
  const QuorumRule trans_rule = qs.LeaderElectionRule(0, transition);
  LeaderZoneView next_stable;
  next_stable.epoch = 1;
  next_stable.current = 1;
  const QuorumRule new_rule = qs.LeaderElectionRule(0, next_stable);
  // A transition-phase quorum (double majority) intersects quorums formed
  // under both the old and the new view.
  for (int i = 0; i < 10; ++i) {
    const std::vector<NodeId> t =
        trans_rule.PickSatisfyingSetAvoiding(RandomAvoidSet());
    if (t.empty()) continue;
    EXPECT_TRUE(old_rule.AlwaysIntersects({t.begin(), t.end()}));
    EXPECT_TRUE(new_rule.AlwaysIntersects({t.begin(), t.end()}));
  }
}

TEST_P(QuorumSystemTest, MajorityQuorumsIntersect) {
  MajorityQuorumSystem qs(&topo_, ft_);
  const QuorumRule le = qs.LeaderElectionRule(0, LeaderZoneView{});
  const QuorumRule repl = qs.DefaultReplicationRule(5 % topo_.num_nodes());
  for (int i = 0; i < 25; ++i) {
    const std::vector<NodeId> set =
        repl.PickSatisfyingSetAvoiding(RandomAvoidSet());
    if (set.empty()) continue;
    EXPECT_TRUE(le.AlwaysIntersects({set.begin(), set.end()}));
  }
}

TEST_P(QuorumSystemTest, DelegateTargetsAreNearestZoneMajority) {
  DelegateQuorumSystem qs(&topo_, ft_);
  for (NodeId aspirant : {NodeId{0}, topo_.num_nodes() - 1}) {
    const std::vector<NodeId> targets =
        qs.LeaderElectionTargets(aspirant, LeaderZoneView{});
    std::set<ZoneId> zones;
    for (NodeId n : targets) zones.insert(topo_.ZoneOf(n));
    EXPECT_EQ(zones.size(), MajorityOf(topo_.num_zones()));
    // The aspirant's own zone is always among the nearest.
    EXPECT_TRUE(zones.count(topo_.ZoneOf(aspirant)) > 0);
  }
}

TEST_P(QuorumSystemTest, FactoryProducesMatchingModes) {
  for (ProtocolMode mode :
       {ProtocolMode::kMultiPaxos, ProtocolMode::kFlexiblePaxos,
        ProtocolMode::kDelegate, ProtocolMode::kLeaderZone,
        ProtocolMode::kLeaderless}) {
    auto qs = MakeQuorumSystem(mode, &topo_, ft_);
    EXPECT_EQ(qs->mode(), mode);
    const bool expect_intents = mode == ProtocolMode::kDelegate ||
                                mode == ProtocolMode::kLeaderZone;
    EXPECT_EQ(qs->UsesIntents(), expect_intents);
    EXPECT_EQ(!qs->IntentQuorum(0).empty(), expect_intents);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, QuorumSystemTest,
    ::testing::Values(Scenario{"Aws7x3_fd1_fz0", 7, 3, {1, 0}},
                      Scenario{"Aws7x3_fd1_fz1", 7, 3, {1, 1}},
                      Scenario{"Uniform5x5_fd1_fz0", 5, 5, {1, 0}},
                      Scenario{"Uniform5x5_fd2_fz1", 5, 5, {2, 1}},
                      Scenario{"Uniform3x3_fd1_fz1", 3, 3, {1, 1}},
                      Scenario{"Uniform9x5_fd2_fz2", 9, 5, {2, 2}}),
    ScenarioName);

}  // namespace
}  // namespace dpaxos
