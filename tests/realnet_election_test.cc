// Clock-abstraction test (realnet tier): the same Replica that runs on
// the virtual-clock Simulator elects a leader and commits end-to-end on
// a real-clock EventLoop, over TCP loopback sockets, with no protocol
// changes — timers go through the EventScheduler interface either way.
//
// Three in-process nodes share one EventLoop (single-threaded, like the
// simulator, so no locking questions); what is real here is the clock,
// the sockets, and the wire codec. Labeled `realnet` and excluded from
// the tier-1 ctest default because it depends on wall-clock timing.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <optional>
#include <string_view>
#include <vector>

#include "net/tcp/event_loop.h"
#include "net/tcp/tcp_transport.h"
#include "paxos/node_host.h"
#include "quorum/quorum_system.h"
#include "paxos/replica.h"
#include "paxos/wire.h"
#include "smr/kv_store.h"
#include "smr/log_applier.h"
#include "txn/transaction.h"

namespace dpaxos {
namespace {

constexpr Duration kWait = 10 * kSecond;

struct RealNode {
  std::unique_ptr<TcpTransport> transport;
  std::unique_ptr<NodeHost> host;
  Replica* replica = nullptr;
  KvStateMachine kv;
  std::unique_ptr<LogApplier> applier;
};

class RealnetElectionTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNodes = 3;

  void SetUp() override {
    topology_ = Topology::Uniform(/*zones=*/1, kNodes, 1.0, 1.0);
    quorums_ = MakeQuorumSystem(ProtocolMode::kMultiPaxos, &*topology_,
                                FaultTolerance{});
    loop_ = std::make_unique<EventLoop>(/*seed=*/41);

    const std::vector<HostPort> any(kNodes, HostPort{"127.0.0.1", 0});
    for (NodeId n = 0; n < kNodes; ++n) {
      auto& node = nodes_.emplace_back();
      node.transport =
          std::make_unique<TcpTransport>(loop_.get(), n, any);
      node.transport->set_wire_codec(
          [](const Message& m, std::string* out) {
            SerializeMessageInto(m, out);
          },
          [](std::string_view bytes) -> MessagePtr {
            Result<MessagePtr> r = DeserializeMessage(bytes);
            return r.ok() ? r.value() : nullptr;
          });
      ASSERT_TRUE(node.transport->Listen().ok());
    }
    // Everyone bound an ephemeral port; tell every node where the
    // others actually ended up.
    for (NodeId a = 0; a < kNodes; ++a) {
      for (NodeId b = 0; b < kNodes; ++b) {
        if (a == b) continue;
        nodes_[a].transport->UpdatePeerAddress(
            b, HostPort{"127.0.0.1", nodes_[b].transport->listen_port()});
      }
    }
    for (NodeId n = 0; n < kNodes; ++n) {
      auto& node = nodes_[n];
      node.host = std::make_unique<NodeHost>(
          loop_.get(), node.transport.get(), &*topology_, n);
      ReplicaConfig config;
      // Tight real-time timeouts: the whole test runs in well under a
      // second on an idle host, with headroom for loaded CI machines.
      config.heartbeat_interval = 20 * kMillisecond;
      config.election_timeout = 100 * kMillisecond;
      config.le_timeout = 200 * kMillisecond;
      config.propose_timeout = 200 * kMillisecond;
      config.retry_backoff_base = 10 * kMillisecond;
      config.decide_policy = DecidePolicy::kAll;
      node.replica = node.host->AddReplica(quorums_.get(), config);
      node.applier = std::make_unique<LogApplier>(&node.kv);
      LogApplier* applier = node.applier.get();
      node.replica->set_decide_callback(
          [applier](SlotId slot, const Value& value) {
            applier->OnDecided(slot, value);
          });
    }
  }

  Topology* topology() { return &*topology_; }

  std::optional<Topology> topology_;
  std::unique_ptr<QuorumSystem> quorums_;
  std::unique_ptr<EventLoop> loop_;
  std::vector<RealNode> nodes_;
};

TEST_F(RealnetElectionTest, ElectsAndCommitsOnRealClock) {
  // Phase 1: node 0 campaigns; the Phase-1 round trips run over real
  // loopback TCP with real timers.
  Status election = Status::Unavailable("pending");
  bool election_done = false;
  nodes_[0].replica->TryBecomeLeader([&](const Status& st) {
    election = st;
    election_done = true;
  });
  ASSERT_TRUE(loop_->RunUntil([&] { return election_done; }, kWait));
  ASSERT_TRUE(election.ok()) << election.ToString();
  EXPECT_TRUE(nodes_[0].replica->is_leader());

  // Phase 2: commit one write through the elected leader and watch it
  // apply on every replica (decide broadcast over TCP).
  Transaction txn;
  txn.id = 1;
  txn.client_id = 77;
  txn.seq = 1;
  txn.ops.push_back(Operation::Put("greeting", "from-a-real-clock"));
  Status commit = Status::Unavailable("pending");
  bool committed = false;
  nodes_[0].replica->Submit(
      Value::Of(txn.id, EncodeBatch({txn})),
      [&](const Status& st, SlotId, Duration) {
        commit = st;
        committed = true;
      });
  ASSERT_TRUE(loop_->RunUntil([&] { return committed; }, kWait));
  ASSERT_TRUE(commit.ok()) << commit.ToString();

  ASSERT_TRUE(loop_->RunUntil(
      [&] {
        for (const auto& node : nodes_) {
          if (!node.kv.Get("greeting").has_value()) return false;
        }
        return true;
      },
      kWait));
  for (const auto& node : nodes_) {
    EXPECT_EQ(node.kv.Get("greeting").value_or(""), "from-a-real-clock");
    EXPECT_TRUE(node.kv.WasApplied(77, 1));
  }
  // All state machines converged byte-for-byte.
  EXPECT_EQ(nodes_[0].kv.Checksum(), nodes_[1].kv.Checksum());
  EXPECT_EQ(nodes_[1].kv.Checksum(), nodes_[2].kv.Checksum());
}

TEST_F(RealnetElectionTest, FollowerForwardsToLeaderOverTcp) {
  bool elected = false;
  nodes_[0].replica->TryBecomeLeader([&](const Status&) { elected = true; });
  ASSERT_TRUE(loop_->RunUntil([&] { return elected; }, kWait));
  ASSERT_TRUE(nodes_[0].replica->is_leader());

  // A follower that knows the leader forwards the submission instead of
  // campaigning (SubmitOrForward path, over a real socket).
  nodes_[2].replica->set_leader_hint(0);
  Transaction txn;
  txn.id = 2;
  txn.client_id = 78;
  txn.seq = 9;
  txn.ops.push_back(Operation::Put("fwd", "yes"));
  Status commit = Status::Unavailable("pending");
  bool committed = false;
  nodes_[2].replica->SubmitOrForward(
      Value::Of(txn.id, EncodeBatch({txn})),
      [&](const Status& st, SlotId, Duration) {
        commit = st;
        committed = true;
      });
  ASSERT_TRUE(loop_->RunUntil([&] { return committed; }, kWait));
  ASSERT_TRUE(commit.ok()) << commit.ToString();
  ASSERT_TRUE(loop_->RunUntil(
      [&] { return nodes_[2].kv.Get("fwd").has_value(); }, kWait));
  EXPECT_EQ(nodes_[2].kv.Get("fwd").value_or(""), "yes");
}

}  // namespace
}  // namespace dpaxos
