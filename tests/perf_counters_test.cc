// Tests for the always-on perf counters and the allocation discipline
// they enforce on the hot path: once the event slab and callable storage
// are warm, a steady-state window of scheduling must not grow anything.
#include "common/perf_counters.h"

#include <functional>

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/load_driver.h"
#include "sim/simulator.h"

namespace dpaxos {
namespace {

TEST(PerfCountersTest, DeltaSinceSubtractsFieldwise) {
  PerfCounters a;
  a.events_scheduled = 10;
  a.heap_pushes = 10;
  a.messages_sent = 3;
  PerfCounters b = a;
  b.events_scheduled = 25;
  b.heap_pushes = 27;
  b.messages_sent = 3;
  b.bytes_sent = 100;
  const PerfCounters d = b.DeltaSince(a);
  EXPECT_EQ(d.events_scheduled, 15u);
  EXPECT_EQ(d.heap_pushes, 17u);
  EXPECT_EQ(d.messages_sent, 0u);
  EXPECT_EQ(d.bytes_sent, 100u);
  EXPECT_EQ(d.events_executed, 0u);
}

TEST(PerfCountersTest, ScheduleExecuteCancelAreCounted) {
  Simulator sim(1);
  const PerfCounters before = SnapshotPerfCounters();
  int ran = 0;
  for (int i = 0; i < 100; ++i) sim.Schedule(i, [&ran] { ++ran; });
  const EventId doomed = sim.Schedule(1000, [&ran] { ++ran; });
  EXPECT_TRUE(sim.Cancel(doomed));
  EXPECT_FALSE(sim.Cancel(doomed));  // stale second cancel
  sim.RunUntilIdle();
  EXPECT_EQ(ran, 100);

  const PerfCounters d = SnapshotPerfCounters().DeltaSince(before);
  EXPECT_EQ(d.events_scheduled, 101u);
  EXPECT_EQ(d.events_executed, 100u);
  EXPECT_EQ(d.events_cancelled, 1u);
  EXPECT_EQ(d.stale_cancels, 1u);
}

// The warm-window allocation gate (ISSUE acceptance): after a warm-up
// burst sizes the slab and heap, a 100k-event steady-state window at the
// same concurrency must recycle slots and inline every callable — zero
// slab growth, zero callable heap fallbacks, and pure POD pops (every
// pop accounted, no hidden copies re-entering the heap).
TEST(PerfCountersTest, WarmWindowDoesNotGrowSlab) {
  Simulator sim(7);
  constexpr int kWindow = 64;
  uint64_t fired = 0;

  // Self-rescheduling timer chain: each firing schedules the next, so the
  // live-event population stays exactly kWindow forever.
  std::function<void()> tick = [&] {
    ++fired;
    sim.Schedule(10 + (fired % 3), tick);
  };
  for (int i = 0; i < kWindow; ++i) sim.Schedule(i + 1, tick);

  sim.RunUntilIdle(10'000);  // warm-up: slab reaches steady-state size
  const PerfCounters before = SnapshotPerfCounters();
  const uint64_t fired_before = fired;
  sim.RunUntilIdle(100'000);
  const PerfCounters d = SnapshotPerfCounters().DeltaSince(before);

  EXPECT_EQ(fired - fired_before, 100'000u);
  EXPECT_EQ(d.events_executed, 100'000u);
  EXPECT_EQ(d.slab_growths, 0u) << "steady-state window grew the slab";
  EXPECT_EQ(d.callable_heap_allocs, 0u)
      << "small capture fell back to heap allocation";
  // Move/POD-only pops: each executed or cancelled event is exactly one
  // heap pop; nothing is copied back or re-popped.
  EXPECT_EQ(d.heap_pops, d.events_executed + d.events_cancelled);
}

// Zero-growth FROM COLD (ISSUE satellite): when the workload shape is
// known up front, the cluster hints (expected_pending_events +
// initial_delivery_batches) pre-size the event slab and the transport
// delivery pool so a full closed-loop run never grows either — not even
// during warm-up. The hints mirror PresizeForSimperf in
// src/harness/simperf.cc; if this test trips after a workload change,
// re-measure the peaks and bump both places.
TEST(PerfCountersTest, PresizedClusterRunsWithZeroGrowth) {
  ClusterOptions options;
  options.ft = FaultTolerance{1, 0};
  options.seed = 42;
  options.replica.max_inflight = 32;
  options.replica.decide_policy = DecidePolicy::kQuorum;
  options.expected_pending_events = 2048 + 512;
  options.transport.initial_delivery_batches = 4096 + 256;

  const PerfCounters before = SnapshotPerfCounters();
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  Replica* proposer = cluster.ReplicaInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(proposer->id()).ok());

  LoadOptions load;
  load.batch_bytes = 1024;
  load.duration = 1 * kSecond;  // past warm-up into steady state
  load.window = 32;
  const LoadResult result = RunClosedLoop(cluster, proposer, load);
  ASSERT_GT(result.committed, 0u);

  const PerfCounters d = SnapshotPerfCounters().DeltaSince(before);
  EXPECT_GT(d.events_executed, 10'000u) << "load never ramped up";
  EXPECT_EQ(d.slab_growths, 0u)
      << "expected_pending_events hint under-sized the event slab";
  EXPECT_EQ(d.delivery_pool_growths, 0u)
      << "initial_delivery_batches hint under-sized the delivery pool";
  EXPECT_EQ(d.callable_heap_allocs, 0u);
}

}  // namespace
}  // namespace dpaxos
