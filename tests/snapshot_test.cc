// Unit coverage of the snapshot envelope (src/smr/snapshot.h) and the
// full-state serialization it carries: round-trips, exhaustive
// corruption detection (every single-bit flip, every truncation), and
// install-then-lossy-restart consistency of the KvStateMachine payload
// including the per-client dedup windows.
#include "smr/snapshot.h"

#include <gtest/gtest.h>

#include <string>

#include "common/status.h"
#include "smr/kv_store.h"
#include "txn/transaction.h"

namespace dpaxos {
namespace {

std::string PutValue(uint64_t id, const std::string& key,
                     const std::string& val, uint64_t client_id = 0,
                     uint64_t seq = 0) {
  Transaction txn;
  txn.id = id;
  txn.client_id = client_id;
  txn.seq = seq;
  txn.ops = {Operation::Put(key, val)};
  return EncodeBatch({txn});
}

TEST(SnapshotEnvelopeTest, RoundTrip) {
  const std::string payload = "opaque state machine bytes \x00\x01\xff";
  const std::string bytes = EncodeSnapshot(1234, payload);
  Result<Snapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().through_slot, 1234u);
  EXPECT_EQ(decoded.value().payload, payload);
}

TEST(SnapshotEnvelopeTest, EmptyPayloadRoundTrip) {
  const std::string bytes = EncodeSnapshot(0, "");
  Result<Snapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().through_slot, 0u);
  EXPECT_TRUE(decoded.value().payload.empty());
}

// Every single-bit flip anywhere in the envelope — header, payload, or
// the checksum itself — must surface as Corruption, never as a decoded
// snapshot with wrong contents.
TEST(SnapshotEnvelopeTest, CrcDetectsEverySingleBitFlip) {
  const std::string bytes = EncodeSnapshot(42, "some payload worth guarding");
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      Result<Snapshot> decoded = DecodeSnapshot(flipped);
      ASSERT_FALSE(decoded.ok())
          << "bit flip at byte " << byte << " bit " << bit
          << " decoded successfully";
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
    }
  }
}

// Every proper prefix must be rejected — a torn write or truncated
// chunk reassembly can cut the envelope at any byte.
TEST(SnapshotEnvelopeTest, EveryTruncationRejected) {
  const std::string bytes = EncodeSnapshot(7, std::string(100, 'p'));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<Snapshot> decoded = DecodeSnapshot(bytes.substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "prefix of length " << cut << " decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(SnapshotEnvelopeTest, TrailingGarbageRejected) {
  std::string bytes = EncodeSnapshot(7, "payload");
  bytes += '\0';
  EXPECT_FALSE(DecodeSnapshot(bytes).ok());
  bytes += "more garbage";
  EXPECT_FALSE(DecodeSnapshot(bytes).ok());
}

TEST(SnapshotEnvelopeTest, BadMagicAndVersionRejected) {
  std::string bad_magic = EncodeSnapshot(1, "x");
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeSnapshot(bad_magic).status().code(),
            StatusCode::kCorruption);

  // Byte 4 is the low byte of the version field; bumping it simulates a
  // snapshot written by a future incompatible format.
  std::string bad_version = EncodeSnapshot(1, "x");
  bad_version[4] = static_cast<char>(kSnapshotVersion + 1);
  EXPECT_EQ(DecodeSnapshot(bad_version).status().code(),
            StatusCode::kCorruption);
}

TEST(SnapshotEnvelopeTest, Crc32KnownVector) {
  // The IEEE 802.3 check value: CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(KvSnapshotTest, SerializeFullRoundTripPreservesStateAndCounters) {
  KvStateMachine kv;
  kv.Apply(0, PutValue(1, "alpha", "1", /*client_id=*/7, /*seq=*/1));
  kv.Apply(1, PutValue(2, "beta", "2", /*client_id=*/7, /*seq=*/2));
  // Out-of-order seq leaves a sparse entry in client 9's dedup window.
  kv.Apply(2, PutValue(3, "gamma", "3", /*client_id=*/9, /*seq=*/5));
  // Duplicate: must bump duplicates_skipped and not re-apply.
  kv.Apply(3, PutValue(4, "alpha", "dup", /*client_id=*/7, /*seq=*/1));

  KvStateMachine restored;
  ASSERT_TRUE(restored.RestoreFull(kv.SerializeFull()).ok());

  EXPECT_EQ(restored.Checksum(), kv.Checksum());
  EXPECT_EQ(restored.Get("alpha"), "1");
  EXPECT_EQ(restored.applied_commands(), kv.applied_commands());
  EXPECT_EQ(restored.applied_writes(), kv.applied_writes());
  EXPECT_EQ(restored.duplicates_skipped(), kv.duplicates_skipped());
  EXPECT_TRUE(restored.WasApplied(7, 1));
  EXPECT_TRUE(restored.WasApplied(7, 2));
  EXPECT_TRUE(restored.WasApplied(9, 5));
  EXPECT_FALSE(restored.WasApplied(9, 4));
}

// The reason SerializeFull exists: a client retry that straddles the
// snapshot point must still dedup after install + residual replay.
TEST(KvSnapshotTest, DedupWindowSurvivesInstall) {
  KvStateMachine kv;
  kv.Apply(0, PutValue(1, "k", "committed", /*client_id=*/3, /*seq=*/1));

  KvStateMachine restored;
  ASSERT_TRUE(restored.RestoreFull(kv.SerializeFull()).ok());

  // Residual replay re-delivers the same tagged transaction.
  restored.Apply(1, PutValue(9, "k", "retry", /*client_id=*/3, /*seq=*/1));
  EXPECT_EQ(restored.Get("k"), "committed");
  EXPECT_EQ(restored.duplicates_skipped(), 1u);
}

TEST(KvSnapshotTest, RestoreFullRejectsEveryTruncation) {
  KvStateMachine kv;
  kv.Apply(0, PutValue(1, "key", "value", 5, 1));
  const std::string full = kv.SerializeFull();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    KvStateMachine victim;
    victim.Apply(0, PutValue(2, "pre", "existing"));
    const uint64_t before = victim.Checksum();
    Status st = victim.RestoreFull(full.substr(0, cut));
    ASSERT_FALSE(st.ok()) << "prefix of length " << cut << " restored";
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
    // Failed restore must leave the state untouched.
    EXPECT_EQ(victim.Checksum(), before);
  }
}

// Full pipeline a lossy restart exercises: state -> SerializeFull ->
// envelope -> (storage) -> decode -> RestoreFull, then residual replay
// converging with a replica that never restarted.
TEST(KvSnapshotTest, InstallThenResidualReplayConverges) {
  KvStateMachine primary;
  for (uint64_t i = 0; i < 20; ++i) {
    primary.Apply(i, PutValue(i + 1, "key" + std::to_string(i % 5),
                              "v" + std::to_string(i), /*client_id=*/1,
                              /*seq=*/i + 1));
  }
  const std::string envelope =
      EncodeSnapshot(/*through_slot=*/20, primary.SerializeFull());

  // Keep applying on the primary after the snapshot point.
  for (uint64_t i = 20; i < 30; ++i) {
    primary.Apply(i, PutValue(i + 1, "key" + std::to_string(i % 5),
                              "v" + std::to_string(i), 1, i + 1));
  }

  // Restarted replica: install the snapshot, then replay the residual
  // tail [20, 30).
  Result<Snapshot> snap = DecodeSnapshot(envelope);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().through_slot, 20u);
  KvStateMachine restarted;
  ASSERT_TRUE(restarted.RestoreFull(snap.value().payload).ok());
  for (uint64_t i = 20; i < 30; ++i) {
    restarted.Apply(i, PutValue(i + 1, "key" + std::to_string(i % 5),
                                "v" + std::to_string(i), 1, i + 1));
  }

  EXPECT_EQ(restarted.Checksum(), primary.Checksum());
  EXPECT_EQ(restarted.applied_commands(), primary.applied_commands());
}

}  // namespace
}  // namespace dpaxos
