// Tests for the sharded multi-leader store (WPaxos-style object
// stealing over per-partition DPaxos instances).
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "directory/sharded_store.h"
#include "harness/cluster.h"

namespace dpaxos {
namespace {

constexpr uint32_t kPartitions = 4;

std::unique_ptr<Cluster> MakeShardedCluster() {
  ClusterOptions options;
  options.partitions.clear();
  for (uint32_t p = 0; p < kPartitions; ++p) options.partitions.push_back(p);
  return std::make_unique<Cluster>(Topology::AwsSevenZones(),
                                   ProtocolMode::kLeaderZone, options);
}

ShardedStore MakeStore(Cluster& cluster,
                       ShardedStore::Options options = {}) {
  options.num_partitions = kPartitions;
  return ShardedStore(
      &cluster.sim(), &cluster.topology(),
      [&cluster](NodeId n, PartitionId p) { return cluster.replica(n, p); },
      options);
}

// Transaction with a single op on `key`.
Transaction TxnOn(uint64_t id, const std::string& key) {
  Transaction txn;
  txn.id = id;
  txn.ops = {Operation::Put(key, "v")};
  return txn;
}

// A key that hashes to `partition`.
std::string KeyIn(const ShardedStore& store, PartitionId partition) {
  for (int i = 0;; ++i) {
    std::string key = "key" + std::to_string(i);
    if (store.PartitionOf(key) == partition) return key;
  }
}

Result<Duration> RunTxn(Cluster& cluster, ShardedStore& store,
                     const Transaction& txn, ZoneId zone) {
  std::optional<Status> done;
  Duration latency = 0;
  store.Execute(txn, zone, [&](const Status& st, Duration lat) {
    done = st;
    latency = lat;
  });
  while (!done.has_value() && cluster.sim().Step()) {
  }
  if (!done.has_value()) return Status::Internal("no progress");
  if (!done->ok()) return *done;
  return latency;
}

TEST(ShardedStoreTest, HashingIsStableAndCoversAllPartitions) {
  auto cluster = MakeShardedCluster();
  ShardedStore store = MakeStore(*cluster);
  std::set<PartitionId> seen;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "user" + std::to_string(i);
    const PartitionId p = store.PartitionOf(key);
    EXPECT_EQ(p, store.PartitionOf(key));
    EXPECT_LT(p, kPartitions);
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), kPartitions);
}

TEST(ShardedStoreTest, FirstAccessClaimsPartitionLocally) {
  auto cluster = MakeShardedCluster();
  ShardedStore store = MakeStore(*cluster);
  const std::string key = KeyIn(store, 2);
  ASSERT_TRUE(RunTxn(*cluster, store, TxnOn(1, key), /*zone=*/5).ok());
  const NodeId leader = store.LeaderOf(2);
  ASSERT_NE(leader, kInvalidNode);
  EXPECT_EQ(cluster->topology().ZoneOf(leader), 5u);
  EXPECT_EQ(store.steals(), 1u);
  // Unaccessed partitions stay unowned.
  EXPECT_EQ(store.LeaderOf(0) != kInvalidNode ||
                store.PartitionOf(key) == 0,
            store.PartitionOf(key) == 0);
}

TEST(ShardedStoreTest, SubsequentLocalAccessesAreFast) {
  auto cluster = MakeShardedCluster();
  ShardedStore store = MakeStore(*cluster);
  const std::string key = KeyIn(store, 1);
  ASSERT_TRUE(RunTxn(*cluster, store, TxnOn(1, key), 3).ok());
  Result<Duration> second = RunTxn(*cluster, store, TxnOn(2, key), 3);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second.value(), FromMillis(15));  // leader is zone-local
  EXPECT_EQ(store.steals(), 1u);
}

TEST(ShardedStoreTest, RemoteAccessesForwardWithoutStealing) {
  auto cluster = MakeShardedCluster();
  ShardedStore::Options options;
  options.auto_steal = false;
  ShardedStore store = MakeStore(*cluster, options);
  const std::string key = KeyIn(store, 0);
  ASSERT_TRUE(RunTxn(*cluster, store, TxnOn(1, key), 0).ok());  // California

  // One-off Mumbai access: forwarded, not stolen.
  Result<Duration> remote = RunTxn(*cluster, store, TxnOn(2, key), 6);
  ASSERT_TRUE(remote.ok());
  EXPECT_GE(remote.value(), FromMillis(249));
  EXPECT_EQ(cluster->topology().ZoneOf(store.LeaderOf(0)), 0u);
  EXPECT_EQ(store.steals(), 1u);
}

TEST(ShardedStoreTest, SustainedRemoteAccessTriggersSteal) {
  auto cluster = MakeShardedCluster();
  ShardedStore store = MakeStore(*cluster);
  const std::string key = KeyIn(store, 3);
  // Claimed by California first.
  ASSERT_TRUE(RunTxn(*cluster, store, TxnOn(1, key), 0).ok());

  // The workload moves to Mumbai; after enough accesses the advisor
  // steals the partition there and latency collapses.
  Duration last = 0;
  for (uint64_t i = 2; i <= 12; ++i) {
    cluster->sim().RunFor(kSecond);
    Result<Duration> r = RunTxn(*cluster, store, TxnOn(i, key), 6);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    last = r.value();
  }
  EXPECT_EQ(cluster->topology().ZoneOf(store.LeaderOf(3)), 6u);
  EXPECT_GE(store.steals(), 2u);
  EXPECT_LT(last, FromMillis(20));  // now Mumbai-local
}

TEST(ShardedStoreTest, PartitionsMoveIndependently) {
  auto cluster = MakeShardedCluster();
  ShardedStore store = MakeStore(*cluster);
  // Pin each partition to a different zone by first access.
  const ZoneId zones[kPartitions] = {0, 2, 4, 6};
  for (PartitionId p = 0; p < kPartitions; ++p) {
    ASSERT_TRUE(
        RunTxn(*cluster, store, TxnOn(100 + p, KeyIn(store, p)), zones[p]).ok());
  }
  for (PartitionId p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(cluster->topology().ZoneOf(store.LeaderOf(p)), zones[p]);
  }
  // Each partition's log is independent.
  for (PartitionId p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(cluster->replica(store.LeaderOf(p), p)->decided().size(), 1u);
  }
}

TEST(ShardedStoreTest, CrossPartitionTransactionsRejected) {
  auto cluster = MakeShardedCluster();
  ShardedStore store = MakeStore(*cluster);
  // Find two keys in different partitions.
  std::string a = KeyIn(store, 0), b = KeyIn(store, 1);
  Transaction txn;
  txn.id = 1;
  txn.ops = {Operation::Put(a, "x"), Operation::Put(b, "y")};
  Result<Duration> r = RunTxn(*cluster, store, txn, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST(ShardedStoreTest, EmptyTransactionRejected) {
  auto cluster = MakeShardedCluster();
  ShardedStore store = MakeStore(*cluster);
  Result<Duration> r = RunTxn(*cluster, store, Transaction{}, 0);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ShardedStoreTest, ManualStealOverridesPlacement) {
  auto cluster = MakeShardedCluster();
  ShardedStore::Options options;
  options.auto_steal = false;
  ShardedStore store = MakeStore(*cluster, options);
  const std::string key = KeyIn(store, 2);
  ASSERT_TRUE(RunTxn(*cluster, store, TxnOn(1, key), 0).ok());

  std::optional<Status> stolen;
  store.Steal(2, 5, [&](const Status& st) { stolen = st; });
  ASSERT_TRUE(cluster->RunUntil([&] { return stolen.has_value(); },
                                60 * kSecond));
  ASSERT_TRUE(stolen->ok());
  EXPECT_EQ(cluster->topology().ZoneOf(store.LeaderOf(2)), 5u);
  // The stolen partition still serves (and adopted the old log).
  ASSERT_TRUE(RunTxn(*cluster, store, TxnOn(2, key), 5).ok());
}

}  // namespace
}  // namespace dpaxos
