// Randomized corruption fuzzing of the protocol wire codec: flip bytes,
// truncate, splice and extend serialized messages and assert the decoder
// never crashes, reads out of bounds, or over-allocates — every outcome
// is either a clean Corruption error or a structurally valid message
// that re-serializes without aborting.
//
// The second half applies the same treatment to the real-network framing
// layer (net/tcp/framing.h): the frame splitter and the Hello/Client
// frame parsers face truncations, hostile length prefixes and arbitrary
// chunked garbage, and must fail terminally instead of crashing or
// reading past their buffer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/tcp/framing.h"
#include "paxos/messages.h"
#include "paxos/wire.h"

namespace dpaxos {
namespace {

Intent SampleIntent(uint64_t round, NodeId leader) {
  return Intent{Ballot{round, leader}, leader, {leader, leader + 1}};
}

// One serialized specimen per interesting message shape: nested vectors,
// large payloads, optional sections, empty collections.
std::vector<std::string> Corpus() {
  std::vector<std::string> corpus;
  LeaderZoneView view;
  view.epoch = 3;
  view.current = 2;
  view.next = 5;

  PrepareMsg prepare(7, Ballot{42, 3}, 17,
                     {SampleIntent(42, 3), SampleIntent(41, 9)}, true, view);
  corpus.push_back(SerializeMessage(prepare));

  PromiseMsg promise(1, Ballot{9, 2}, false);
  promise.accepted.push_back(
      AcceptedEntry{5, Ballot{8, 1}, Value::Of(77, "payload\x00bytes")});
  promise.accepted.push_back(
      AcceptedEntry{6, Ballot{8, 1}, Value::Of(78, "fastvote"), true});
  promise.intents.push_back(SampleIntent(7, 4));
  promise.lz_view = view;
  corpus.push_back(SerializeMessage(promise));

  ProposeMsg propose(2, Ballot{5, 0}, 9, Value::Synthetic(123, 4096));
  propose.lease_request = true;
  propose.lease_until = 999'999;
  corpus.push_back(SerializeMessage(propose));

  AcceptMsg accept(2, Ballot{5, 0}, 9);
  accept.lease_vote = true;
  corpus.push_back(SerializeMessage(accept));

  DecideMsg decide(0, 3, Value::Of(1, std::string(200, 'x')));
  corpus.push_back(SerializeMessage(decide));

  ForwardMsg forward(0, 77, Value::Of(9, "fwd"));
  corpus.push_back(SerializeMessage(forward));

  LearnReplyMsg learn(0);
  learn.from_slot = 10;
  learn.peer_watermark = 40;
  for (SlotId s = 10; s < 20; ++s) {
    learn.entries.push_back(DecidedEntryWire{s, Value::Of(s, "entry")});
  }
  corpus.push_back(SerializeMessage(learn));

  HeartbeatMsg heartbeat(0, Ballot{4, 4});
  corpus.push_back(SerializeMessage(heartbeat));

  SnapshotRequestMsg snap_req(3, /*offset=*/65536);
  corpus.push_back(SerializeMessage(snap_req));

  SnapshotChunkMsg snap_chunk(3, /*through_slot=*/500, /*offset=*/4096,
                              /*total_bytes=*/1 << 20,
                              std::string(512, '\xAB'));
  corpus.push_back(SerializeMessage(snap_chunk));

  // Fast-path messages (tags 31-34): the grant carries a NodeId vector
  // (length-prefixed), accept/accepted carry full values, and the
  // promise specimen above already covers the fast flag on entries.
  FastGrantMsg fast_grant(2, Ballot{7, 1}, 40, {1, 4, 9, 12});
  corpus.push_back(SerializeMessage(fast_grant));

  FastAcceptMsg fast_accept(2, Ballot{7, 1}, 55,
                            Value::Of(9, std::string(300, 'f')));
  corpus.push_back(SerializeMessage(fast_accept));

  FastAcceptedMsg fast_accepted(2, Ballot{7, 1}, 41, 4, 55,
                                Value::Of(9, "fastv"));
  corpus.push_back(SerializeMessage(fast_accepted));

  FastNackMsg fast_nack(2, Ballot{7, 1}, Ballot{8, 2}, 55);
  fast_nack.leader_hint = 3;
  corpus.push_back(SerializeMessage(fast_nack));

  // Ownership steal messages (tags 35-36): the request is the smallest
  // flag-bearing message, the grant carries an enum byte the decoder
  // range-checks.
  StealRequestMsg steal(1, Ballot{9, 3}, /*zone=*/4, /*inv=*/false);
  corpus.push_back(SerializeMessage(steal));

  OwnershipGrantMsg grant(1, /*g=*/true, StealRefusal::kNone, Ballot{9, 3},
                          /*next=*/70, /*decided=*/69, /*snap=*/true,
                          /*hint=*/2);
  corpus.push_back(SerializeMessage(grant));

  return corpus;
}

// Whatever decodes must also re-serialize (SerializeMessage aborts on
// structurally invalid messages, so this asserts structural soundness).
void DecodeMustNotCrash(const std::string& bytes) {
  Result<MessagePtr> decoded = DeserializeMessage(bytes);
  if (decoded.ok()) {
    const std::string reencoded = SerializeMessage(*decoded.value());
    EXPECT_FALSE(reencoded.empty());
  } else {
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(WireFuzzTest, EveryTruncationRejectsCleanly) {
  for (const std::string& bytes : Corpus()) {
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      DecodeMustNotCrash(bytes.substr(0, cut));
    }
  }
}

TEST(WireFuzzTest, RandomByteFlips) {
  Rng rng(0xF1E2);
  const std::vector<std::string> corpus = Corpus();
  for (int round = 0; round < 4000; ++round) {
    std::string bytes = corpus[rng.NextBounded(corpus.size())];
    const uint32_t flips = 1 + rng.NextBounded(8);
    for (uint32_t f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] =
          static_cast<char>(rng.Next() & 0xff);
    }
    DecodeMustNotCrash(bytes);
  }
}

TEST(WireFuzzTest, RandomSpliceAndExtend) {
  Rng rng(0xBEEF);
  const std::vector<std::string> corpus = Corpus();
  for (int round = 0; round < 2000; ++round) {
    const std::string& a = corpus[rng.NextBounded(corpus.size())];
    const std::string& b = corpus[rng.NextBounded(corpus.size())];
    // Graft a prefix of one message onto a suffix of another, then
    // maybe append garbage.
    std::string bytes = a.substr(0, rng.NextBounded(a.size() + 1)) +
                        b.substr(rng.NextBounded(b.size() + 1));
    if (rng.NextBool(0.3)) {
      std::string tail(rng.NextBounded(32), '\0');
      for (char& c : tail) c = static_cast<char>(rng.Next() & 0xff);
      bytes += tail;
    }
    DecodeMustNotCrash(bytes);
  }
}

TEST(WireFuzzTest, PureGarbageNeverDecodesDangerously) {
  Rng rng(0xD00D);
  for (int round = 0; round < 4000; ++round) {
    std::string garbage(rng.NextBounded(256), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next() & 0xff);
    DecodeMustNotCrash(garbage);
  }
}

// Hostile length prefixes must not drive allocations: a tiny message
// claiming a 4-billion-element vector has to fail on remaining-bytes
// checks, not by reserving gigabytes.
TEST(WireFuzzTest, HostileLengthPrefixes) {
  for (const std::string& bytes : Corpus()) {
    for (size_t pos = 0; pos + 4 <= bytes.size(); ++pos) {
      std::string hostile = bytes;
      hostile[pos] = '\xff';
      hostile[pos + 1] = '\xff';
      hostile[pos + 2] = '\xff';
      hostile[pos + 3] = '\xff';
      DecodeMustNotCrash(hostile);
    }
  }
}

// A hostile peer can put ANY partition id in a StealRequest — the codec
// is partition-agnostic by design (the header carries a raw u32), so the
// decode must succeed structurally and hand the bogus id up unchanged
// for the replica/server layer to drop. What must never happen is a
// crash, a clamp, or a re-encode mismatch.
TEST(WireFuzzTest, HostileStealRequestPartitionIds) {
  const PartitionId hostile_ids[] = {1, 31, 1u << 20, 0x7FFFFFFFu,
                                     0xFFFFFFFFu};
  for (PartitionId p : hostile_ids) {
    StealRequestMsg m(p, Ballot{0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFu},
                      /*zone=*/0xFFFFFFFFu, /*inv=*/false);
    const std::string bytes = SerializeMessage(m);
    Result<MessagePtr> decoded = DeserializeMessage(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    auto typed =
        std::dynamic_pointer_cast<const StealRequestMsg>(decoded.value());
    ASSERT_NE(typed, nullptr);
    EXPECT_EQ(typed->partition, p);  // no clamping — rejection is upstairs
    EXPECT_EQ(SerializeMessage(*typed), bytes);
    // Then every truncation and byte-flip of the hostile specimen stays
    // clean too.
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      DecodeMustNotCrash(bytes.substr(0, cut));
    }
    for (size_t i = 0; i < bytes.size(); ++i) {
      std::string flipped = bytes;
      flipped[i] = static_cast<char>(flipped[i] ^ 0x80);
      DecodeMustNotCrash(flipped);
    }
  }
}

// --- framing layer (net/tcp) -------------------------------------------

// A well-formed multi-frame stream covering every frame type.
std::string FramedStream() {
  std::string stream;
  stream += EncodeHelloFrame(Hello{PeerKind::kClient, 42});
  ClientRequest req;
  req.request_id = 7;
  req.op = ClientOp::kPut;
  req.key = "key";
  req.value = std::string(300, 'v');
  stream += EncodeClientRequestFrame(req);
  ClientReply reply;
  reply.request_id = 7;
  reply.status_code = 0;
  reply.value = "12";
  stream += EncodeClientReplyFrame(reply);
  AppendNodeMessageFrame(std::string(64, '\x5A'), &stream);
  return stream;
}

// Drain a decoder; every popped body must parse-or-reject cleanly.
void DrainDecoder(FrameDecoder& decoder) {
  std::string_view body;
  for (;;) {
    const FrameDecoder::Next next = decoder.Pop(&body);
    if (next != FrameDecoder::Next::kFrame) return;
    ASSERT_FALSE(body.empty());  // zero-length bodies are decoder errors
    // Feed each body to every parser: at most one may accept (the type
    // byte routes), and rejections must be clean Corruption.
    const Result<Hello> hello = ParseHello(body);
    const Result<ClientRequest> request = ParseClientRequest(body);
    const Result<ClientReply> rep = ParseClientReply(body);
    for (const Status& st :
         {hello.status(), request.status(), rep.status()}) {
      if (!st.ok()) {
        EXPECT_EQ(st.code(), StatusCode::kCorruption);
      }
    }
  }
}

TEST(FramingFuzzTest, CleanStreamYieldsAllFrames) {
  FrameDecoder decoder;
  decoder.Feed(FramedStream());
  std::string_view body;
  int frames = 0;
  while (decoder.Pop(&body) == FrameDecoder::Next::kFrame) ++frames;
  EXPECT_EQ(frames, 4);
  EXPECT_FALSE(decoder.failed());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FramingFuzzTest, ByteAtATimeFeedingIsLossless) {
  const std::string stream = FramedStream();
  FrameDecoder decoder;
  int frames = 0;
  std::string_view body;
  for (char c : stream) {
    decoder.Feed(std::string_view(&c, 1));
    while (decoder.Pop(&body) == FrameDecoder::Next::kFrame) ++frames;
  }
  EXPECT_EQ(frames, 4);
  EXPECT_FALSE(decoder.failed());
}

TEST(FramingFuzzTest, EveryTruncationNeedsMoreOrFails) {
  const std::string stream = FramedStream();
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(stream.substr(0, cut));
    std::string_view body;
    // Must terminate (no livelock) and never crash; a truncated tail is
    // either "need more" or, if the cut bit a length prefix that now
    // reads hostile, a terminal error.
    while (decoder.Pop(&body) == FrameDecoder::Next::kFrame) {
    }
  }
}

TEST(FramingFuzzTest, ZeroLengthFrameIsTerminal) {
  FrameDecoder decoder;
  decoder.Feed(std::string_view("\x00\x00\x00\x00", 4));
  std::string_view body;
  EXPECT_EQ(decoder.Pop(&body), FrameDecoder::Next::kError);
  EXPECT_TRUE(decoder.failed());
  // Failed decoders stay failed even when fed a valid stream.
  decoder.Feed(FramedStream());
  EXPECT_EQ(decoder.Pop(&body), FrameDecoder::Next::kError);
}

TEST(FramingFuzzTest, OversizedLengthPrefixRejectedBeforeBuffering) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  // Claims 0xFFFFFFFF bytes; the decoder must reject on the prefix
  // alone, without waiting for (or allocating) 4 GiB.
  decoder.Feed(std::string_view("\xff\xff\xff\xff", 4));
  std::string_view body;
  EXPECT_EQ(decoder.Pop(&body), FrameDecoder::Next::kError);
  EXPECT_LT(decoder.buffered_bytes(), 64u);
}

TEST(FramingFuzzTest, GarbageLengthPrefixesNeverOverread) {
  Rng rng(0xFA5C);
  for (int round = 0; round < 2000; ++round) {
    std::string garbage(rng.NextBounded(512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next() & 0xff);
    FrameDecoder decoder(/*max_frame_bytes=*/4096);
    decoder.Feed(garbage);
    DrainDecoder(decoder);
  }
}

TEST(FramingFuzzTest, FuzzedChunkedStreamNeverCrashes) {
  Rng rng(0xC0FFEE);
  const std::string clean = FramedStream();
  for (int round = 0; round < 1500; ++round) {
    // Start from a clean stream, corrupt a few bytes, then feed it in
    // random-sized chunks — the decoder must stay bounded and sane.
    std::string bytes = clean + clean;
    const uint32_t flips = rng.NextBounded(6);
    for (uint32_t f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] =
          static_cast<char>(rng.Next() & 0xff);
    }
    FrameDecoder decoder;
    size_t fed = 0;
    while (fed < bytes.size()) {
      const size_t chunk =
          std::min<size_t>(1 + rng.NextBounded(64), bytes.size() - fed);
      decoder.Feed(std::string_view(bytes).substr(fed, chunk));
      fed += chunk;
      DrainDecoder(decoder);
      if (decoder.failed()) break;
    }
    EXPECT_LE(decoder.buffered_bytes(), bytes.size());
  }
}

TEST(FramingFuzzTest, ParserTruncationsRejectCleanly) {
  const std::string bodies[] = {
      EncodeHelloFrame(Hello{PeerKind::kNode, 3}).substr(kFrameHeaderBytes),
      EncodeClientRequestFrame(ClientRequest{9, ClientOp::kGet, "k", ""})
          .substr(kFrameHeaderBytes),
      EncodeClientReplyFrame(ClientReply{9, 5, "oops"})
          .substr(kFrameHeaderBytes),
  };
  for (const std::string& body : bodies) {
    for (size_t cut = 0; cut <= body.size(); ++cut) {
      const std::string_view slice = std::string_view(body).substr(0, cut);
      const Result<Hello> hello = ParseHello(slice);
      const Result<ClientRequest> request = ParseClientRequest(slice);
      const Result<ClientReply> reply = ParseClientReply(slice);
      int accepted = 0;
      accepted += hello.ok() ? 1 : 0;
      accepted += request.ok() ? 1 : 0;
      accepted += reply.ok() ? 1 : 0;
      if (cut == body.size()) {
        EXPECT_EQ(accepted, 1);  // exactly the matching parser
      } else {
        EXPECT_EQ(accepted, 0);  // truncations satisfy nobody
      }
    }
  }
}

}  // namespace
}  // namespace dpaxos
