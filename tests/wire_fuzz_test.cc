// Randomized corruption fuzzing of the protocol wire codec: flip bytes,
// truncate, splice and extend serialized messages and assert the decoder
// never crashes, reads out of bounds, or over-allocates — every outcome
// is either a clean Corruption error or a structurally valid message
// that re-serializes without aborting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "paxos/messages.h"
#include "paxos/wire.h"

namespace dpaxos {
namespace {

Intent SampleIntent(uint64_t round, NodeId leader) {
  return Intent{Ballot{round, leader}, leader, {leader, leader + 1}};
}

// One serialized specimen per interesting message shape: nested vectors,
// large payloads, optional sections, empty collections.
std::vector<std::string> Corpus() {
  std::vector<std::string> corpus;
  LeaderZoneView view;
  view.epoch = 3;
  view.current = 2;
  view.next = 5;

  PrepareMsg prepare(7, Ballot{42, 3}, 17,
                     {SampleIntent(42, 3), SampleIntent(41, 9)}, true, view);
  corpus.push_back(SerializeMessage(prepare));

  PromiseMsg promise(1, Ballot{9, 2}, false);
  promise.accepted.push_back(
      AcceptedEntry{5, Ballot{8, 1}, Value::Of(77, "payload\x00bytes")});
  promise.intents.push_back(SampleIntent(7, 4));
  promise.lz_view = view;
  corpus.push_back(SerializeMessage(promise));

  ProposeMsg propose(2, Ballot{5, 0}, 9, Value::Synthetic(123, 4096));
  propose.lease_request = true;
  propose.lease_until = 999'999;
  corpus.push_back(SerializeMessage(propose));

  AcceptMsg accept(2, Ballot{5, 0}, 9);
  accept.lease_vote = true;
  corpus.push_back(SerializeMessage(accept));

  DecideMsg decide(0, 3, Value::Of(1, std::string(200, 'x')));
  corpus.push_back(SerializeMessage(decide));

  ForwardMsg forward(0, 77, Value::Of(9, "fwd"));
  corpus.push_back(SerializeMessage(forward));

  LearnReplyMsg learn(0);
  learn.from_slot = 10;
  learn.peer_watermark = 40;
  for (SlotId s = 10; s < 20; ++s) {
    learn.entries.push_back(DecidedEntryWire{s, Value::Of(s, "entry")});
  }
  corpus.push_back(SerializeMessage(learn));

  HeartbeatMsg heartbeat(0, Ballot{4, 4});
  corpus.push_back(SerializeMessage(heartbeat));

  SnapshotRequestMsg snap_req(3, /*offset=*/65536);
  corpus.push_back(SerializeMessage(snap_req));

  SnapshotChunkMsg snap_chunk(3, /*through_slot=*/500, /*offset=*/4096,
                              /*total_bytes=*/1 << 20,
                              std::string(512, '\xAB'));
  corpus.push_back(SerializeMessage(snap_chunk));

  return corpus;
}

// Whatever decodes must also re-serialize (SerializeMessage aborts on
// structurally invalid messages, so this asserts structural soundness).
void DecodeMustNotCrash(const std::string& bytes) {
  Result<MessagePtr> decoded = DeserializeMessage(bytes);
  if (decoded.ok()) {
    const std::string reencoded = SerializeMessage(*decoded.value());
    EXPECT_FALSE(reencoded.empty());
  } else {
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(WireFuzzTest, EveryTruncationRejectsCleanly) {
  for (const std::string& bytes : Corpus()) {
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      DecodeMustNotCrash(bytes.substr(0, cut));
    }
  }
}

TEST(WireFuzzTest, RandomByteFlips) {
  Rng rng(0xF1E2);
  const std::vector<std::string> corpus = Corpus();
  for (int round = 0; round < 4000; ++round) {
    std::string bytes = corpus[rng.NextBounded(corpus.size())];
    const uint32_t flips = 1 + rng.NextBounded(8);
    for (uint32_t f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] =
          static_cast<char>(rng.Next() & 0xff);
    }
    DecodeMustNotCrash(bytes);
  }
}

TEST(WireFuzzTest, RandomSpliceAndExtend) {
  Rng rng(0xBEEF);
  const std::vector<std::string> corpus = Corpus();
  for (int round = 0; round < 2000; ++round) {
    const std::string& a = corpus[rng.NextBounded(corpus.size())];
    const std::string& b = corpus[rng.NextBounded(corpus.size())];
    // Graft a prefix of one message onto a suffix of another, then
    // maybe append garbage.
    std::string bytes = a.substr(0, rng.NextBounded(a.size() + 1)) +
                        b.substr(rng.NextBounded(b.size() + 1));
    if (rng.NextBool(0.3)) {
      std::string tail(rng.NextBounded(32), '\0');
      for (char& c : tail) c = static_cast<char>(rng.Next() & 0xff);
      bytes += tail;
    }
    DecodeMustNotCrash(bytes);
  }
}

TEST(WireFuzzTest, PureGarbageNeverDecodesDangerously) {
  Rng rng(0xD00D);
  for (int round = 0; round < 4000; ++round) {
    std::string garbage(rng.NextBounded(256), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next() & 0xff);
    DecodeMustNotCrash(garbage);
  }
}

// Hostile length prefixes must not drive allocations: a tiny message
// claiming a 4-billion-element vector has to fail on remaining-bytes
// checks, not by reserving gigabytes.
TEST(WireFuzzTest, HostileLengthPrefixes) {
  for (const std::string& bytes : Corpus()) {
    for (size_t pos = 0; pos + 4 <= bytes.size(); ++pos) {
      std::string hostile = bytes;
      hostile[pos] = '\xff';
      hostile[pos + 1] = '\xff';
      hostile[pos + 2] = '\xff';
      hostile[pos + 3] = '\xff';
      DecodeMustNotCrash(hostile);
    }
  }
}

}  // namespace
}  // namespace dpaxos
