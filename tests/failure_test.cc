// Failure-injection tests: node crashes, zone outages, partitions, and
// recovery through elections and multi-intent failover. All fault
// injection goes through the Nemesis engine's targeted primitives
// (src/harness/nemesis.h); the tests only pick the victims.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/nemesis.h"

namespace dpaxos {
namespace {

TEST(FailureTest, LeaderCrashTriggersRecoveryElection) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kDelegate);
  Nemesis nemesis(&cluster, /*seed=*/1);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, Value::Of(i, "v")).ok());
  }
  nemesis.Crash(leader);

  // Another node takes over and preserves the decided prefix.
  Replica* successor = cluster.ReplicaInZone(1);
  successor->PrimeBallot(cluster.replica(leader)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(successor->id()).ok());
  cluster.sim().RunFor(5 * kSecond);
  ASSERT_TRUE(cluster.Commit(successor->id(), Value::Of(10, "new")).ok());
  // Slots 0..2 were committed at {0,1}; node 1 is in the quorum and must
  // have re-learned/adopted them all.
  EXPECT_GE(successor->DecidedWatermark(), 4u);
}

TEST(FailureTest, QuorumMemberCrashStallsSingleIntentLeader) {
  ClusterOptions options;
  options.replica.propose_timeout = 200 * kMillisecond;
  options.replica.max_propose_retries = 2;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  Nemesis nemesis(&cluster, /*seed=*/1);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());

  // Crash the only other member of the declared replication quorum.
  const std::vector<NodeId>& quorum =
      cluster.replica(leader)->declared_intents()[0].quorum;
  for (NodeId n : quorum) {
    if (n != leader) nemesis.Crash(n);
  }
  // With a single declared intent the leader cannot change quorums
  // without a Leader Election: the commit fails and it steps down.
  Result<Duration> r = cluster.Commit(leader, Value::Of(2, "b"));
  EXPECT_FALSE(cluster.replica(leader)->is_leader());
  (void)r;

  // Recovery: re-election (by the same node) declares a fresh intent
  // avoiding... the deterministic intent picks the lowest peer ids, so
  // elect a different node whose quorum is healthy.
  Replica* successor = cluster.ReplicaInZone(2, 0);
  successor->PrimeBallot(Ballot{100, 0});
  ASSERT_TRUE(cluster.ElectLeader(successor->id()).ok());
  ASSERT_TRUE(cluster.Commit(successor->id(), Value::Of(3, "c")).ok());
}

TEST(FailureTest, MultiIntentLeaderFailsOverWithoutElection) {
  ClusterOptions options;
  options.replica.num_intents = 2;
  options.replica.propose_timeout = 200 * kMillisecond;
  options.replica.max_propose_retries = 2;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  Nemesis nemesis(&cluster, /*seed=*/1);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_EQ(cluster.replica(leader)->declared_intents().size(), 2u);
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());

  // Crash the primary intent's companion; the alternate must kick in.
  NodeId companion = kInvalidNode;
  for (NodeId n : cluster.replica(leader)->declared_intents()[0].quorum) {
    if (n != leader) companion = n;
  }
  nemesis.Crash(companion);
  const uint64_t elections = cluster.replica(leader)->elections_won();
  Result<Duration> r = cluster.Commit(leader, Value::Of(2, "b"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(cluster.replica(leader)->is_leader());
  EXPECT_EQ(cluster.replica(leader)->elections_won(), elections);
}

TEST(FailureTest, ToleratesFdNodeFailuresPerZone) {
  // fd=1: one crash per zone leaves every protocol functional.
  for (ProtocolMode mode :
       {ProtocolMode::kFlexiblePaxos, ProtocolMode::kDelegate}) {
    Cluster cluster(Topology::AwsSevenZones(), mode);
    Nemesis nemesis(&cluster, /*seed=*/1);
    for (ZoneId z = 0; z < 7; ++z) {
      nemesis.Crash(cluster.NodeInZone(z, 2));
    }
    const NodeId leader = cluster.NodeInZone(0);
    ASSERT_TRUE(cluster.ElectLeader(leader).ok())
        << ProtocolModeName(mode);
    ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  }
}

TEST(FailureTest, ZoneFailureWithFz1) {
  // fz=1, fd=1 on a 5-zone topology: an entire zone dies; replication
  // quorums span 2 zones, so commits keep succeeding.
  ClusterOptions options;
  options.ft = FaultTolerance{1, 1};
  Cluster cluster(Topology::Uniform(5, 3, 80.0), ProtocolMode::kDelegate,
                  options);
  Nemesis nemesis(&cluster, /*seed=*/1);
  // The leader's replication quorum spans its own zone 0 and the nearest
  // other zone (1); a zone outside the quorum dies completely.
  nemesis.CrashZone(2);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  Result<Duration> r = cluster.Commit(leader, Value::Of(1, "a"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // And the cross-zone quorum means even losing the leader's OWN zone
  // does not lose decided data: a zone-1 node has every decided slot.
  cluster.sim().RunFor(1 * kSecond);  // let decide notifications land
  EXPECT_EQ(cluster.ReplicaInZone(1, 0)->decided().size(),
            cluster.replica(leader)->decided().size());
}

TEST(FailureTest, MessageLossIsMaskedByRetransmission) {
  ClusterOptions options;
  options.transport.drop_probability = 0.15;
  options.replica.propose_timeout = 300 * kMillisecond;
  options.replica.le_timeout = 1 * kSecond;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  int committed = 0;
  for (uint64_t i = 1; i <= 20; ++i) {
    if (cluster.Commit(leader, Value::Of(i, "v")).ok()) ++committed;
  }
  // Retransmissions mask sporadic loss; expect a high success rate.
  EXPECT_GE(committed, 18);
}

TEST(FailureTest, PartitionedLeaderZoneBlocksElectionsUntilHealed) {
  ClusterOptions options;
  options.replica.max_le_attempts = 3;
  options.replica.le_timeout = 400 * kMillisecond;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  Nemesis nemesis(&cluster, /*seed=*/1);
  Replica* aspirant = cluster.ReplicaInZone(4);
  // Partition the aspirant from the whole Leader Zone.
  nemesis.IsolateNodeFromZone(aspirant->id(), 0);
  Status result;
  bool done = false;
  aspirant->TryBecomeLeader([&](const Status& st) {
    result = st;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 60 * kSecond));
  EXPECT_FALSE(result.ok());

  nemesis.HealPartitions();
  ASSERT_TRUE(cluster.ElectLeader(aspirant->id()).ok());
}

TEST(FailureTest, CrashRecoverRejoinsAsAcceptor) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Nemesis nemesis(&cluster, /*seed=*/1);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());

  const NodeId peer = cluster.NodeInZone(0, 1);
  nemesis.Crash(peer);
  // With fd=1 the leader's quorum {leader, peer}... peer IS the quorum
  // companion, so commits stall; recover it (network-level, the process
  // survives) and commits resume.
  nemesis.Recover(peer);
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(2, "b")).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(3, "c")).ok());
}

}  // namespace
}  // namespace dpaxos
