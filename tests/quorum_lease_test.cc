// Tests for quorum read leases (the Moraru-style alternative the paper's
// Section 4.5 notes can be adapted to DPaxos): replication-quorum
// members serve linearizable local reads while they hold the lease and
// their learned prefix is complete.
#include <gtest/gtest.h>

#include "client/client.h"
#include "harness/cluster.h"
#include "txn/transaction.h"

namespace dpaxos {
namespace {

ClusterOptions QuorumLeaseOptions() {
  ClusterOptions options;
  options.replica.enable_leases = true;
  options.replica.enable_quorum_reads = true;
  options.replica.lease_duration = 10 * kSecond;
  options.replica.decide_policy = DecidePolicy::kQuorum;
  return options;
}

TEST(QuorumLeaseTest, QuorumMemberServesReadsWhenQuiet) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  QuorumLeaseOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "w")).ok());
  cluster.sim().RunFor(kSecond);  // decide notification lands

  // The quorum companion (node 1) granted the lease and is caught up.
  Replica* member = cluster.replica(1);
  EXPECT_FALSE(member->is_leader());
  EXPECT_TRUE(member->CanServeQuorumRead());
  // A non-member never qualifies.
  EXPECT_FALSE(cluster.replica(5)->CanServeQuorumRead());
}

TEST(QuorumLeaseTest, DisabledWithoutTheFlag) {
  ClusterOptions options = QuorumLeaseOptions();
  options.replica.enable_quorum_reads = false;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "w")).ok());
  cluster.sim().RunFor(kSecond);
  EXPECT_FALSE(cluster.replica(1)->CanServeQuorumRead());
  EXPECT_TRUE(cluster.replica(leader)->CanServeLocalRead());
}

TEST(QuorumLeaseTest, PendingWriteBlocksMemberReads) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  QuorumLeaseOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "w")).ok());
  cluster.sim().RunFor(kSecond);
  Replica* member = cluster.replica(1);
  ASSERT_TRUE(member->CanServeQuorumRead());

  // Start a write and advance only until the member ACCEPTED it but has
  // not yet learned the decision: the member must refuse reads (it
  // cannot know whether the write is already committed elsewhere).
  cluster.replica(leader)->Submit(Value::Of(2, "pending"),
                                  [](const Status&, SlotId, Duration) {});
  cluster.sim().RunFor(6 * kMillisecond);  // one-way 5ms: accepted, no decide
  ASSERT_GT(member->acceptor().accepted_count(),
            member->DecidedWatermark());
  EXPECT_FALSE(member->CanServeQuorumRead());

  // Once the decide notification arrives, reads resume.
  cluster.sim().RunFor(kSecond);
  EXPECT_TRUE(member->CanServeQuorumRead());
}

TEST(QuorumLeaseTest, ExpiryDisqualifiesMembers) {
  ClusterOptions options = QuorumLeaseOptions();
  options.replica.lease_duration = 2 * kSecond;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "w")).ok());
  cluster.sim().RunFor(kSecond);
  EXPECT_TRUE(cluster.replica(1)->CanServeQuorumRead());
  cluster.sim().RunFor(3 * kSecond);
  EXPECT_FALSE(cluster.replica(1)->CanServeQuorumRead());
}

TEST(QuorumLeaseTest, ClientReadsLocallyAtAMember) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  QuorumLeaseOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "w")).ok());
  cluster.sim().RunFor(kSecond);

  Client client(&cluster.sim(), cluster.replica(1));  // at the member
  Transaction ro;
  ro.id = 9;
  ro.ops = {Operation::Get("k")};
  bool done = false;
  Duration lat = 0;
  client.ExecuteReadOnly(ro, [&](const Status& st, Duration l) {
    EXPECT_TRUE(st.ok());
    lat = l;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 5 * kSecond));
  EXPECT_EQ(client.local_reads(), 1u);
  EXPECT_LT(lat, kMillisecond);
}

TEST(QuorumLeaseTest, ReadsNeverMissCommittedWrites) {
  // Linearizability probe: interleave writes and member-side read
  // eligibility checks; whenever the member says "readable", its learned
  // prefix must contain every commit the leader has completed.
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  QuorumLeaseOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  Replica* member = cluster.replica(1);

  uint64_t committed = 0;
  for (uint64_t i = 1; i <= 20; ++i) {
    cluster.replica(leader)->Submit(
        Value::Synthetic(i, 128),
        [&committed](const Status& st, SlotId, Duration) {
          if (st.ok()) ++committed;
        });
    // Probe at random virtual offsets while the write is in flight.
    for (int probe = 0; probe < 4; ++probe) {
      cluster.sim().RunFor(3 * kMillisecond);
      if (member->CanServeQuorumRead()) {
        EXPECT_GE(member->DecidedWatermark(), committed)
            << "member would serve a stale read";
      }
    }
    cluster.sim().RunFor(kSecond);
  }
  EXPECT_EQ(committed, 20u);
}

}  // namespace
}  // namespace dpaxos
