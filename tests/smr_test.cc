// Tests for the state machine replication layer: in-order application,
// the KV state machine, and cross-replica convergence through a real
// consensus run.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "smr/kv_store.h"
#include "smr/log_applier.h"
#include "txn/transaction.h"
#include "workload/oltp.h"

namespace dpaxos {
namespace {

Value PutValue(uint64_t id, const std::string& key, const std::string& val) {
  Transaction txn;
  txn.id = id;
  txn.ops = {Operation::Put(key, val)};
  return Value::Of(id, EncodeBatch({txn}));
}

TEST(LogApplierTest, AppliesContiguously) {
  KvStateMachine kv;
  LogApplier applier(&kv);
  applier.OnDecided(0, PutValue(1, "a", "1"));
  EXPECT_EQ(applier.applied_watermark(), 1u);
  EXPECT_EQ(kv.Get("a"), "1");
}

TEST(LogApplierTest, BuffersOutOfOrderSlots) {
  KvStateMachine kv;
  LogApplier applier(&kv);
  applier.OnDecided(2, PutValue(3, "c", "3"));
  applier.OnDecided(1, PutValue(2, "b", "2"));
  EXPECT_EQ(applier.applied_watermark(), 0u);
  EXPECT_EQ(applier.buffered(), 2u);
  EXPECT_FALSE(kv.Get("b").has_value());

  applier.OnDecided(0, PutValue(1, "a", "1"));  // unblocks everything
  EXPECT_EQ(applier.applied_watermark(), 3u);
  EXPECT_EQ(applier.buffered(), 0u);
  EXPECT_EQ(kv.Get("a"), "1");
  EXPECT_EQ(kv.Get("b"), "2");
  EXPECT_EQ(kv.Get("c"), "3");
}

TEST(LogApplierTest, IgnoresDuplicateLearns) {
  KvStateMachine kv;
  LogApplier applier(&kv);
  applier.OnDecided(0, PutValue(1, "a", "first"));
  applier.OnDecided(0, PutValue(9, "a", "dup"));
  EXPECT_EQ(kv.Get("a"), "first");
  EXPECT_EQ(kv.applied_commands(), 1u);
}

TEST(KvStateMachineTest, AppliesWritesSkipsReads) {
  KvStateMachine kv;
  Transaction txn;
  txn.id = 1;
  txn.ops = {Operation::Get("x"), Operation::Put("k", "v"),
             Operation::Get("k")};
  kv.Apply(0, EncodeBatch({txn}));
  EXPECT_EQ(kv.size(), 1u);
  EXPECT_EQ(kv.applied_writes(), 1u);
  EXPECT_EQ(kv.Get("k"), "v");
  EXPECT_FALSE(kv.Get("x").has_value());
}

TEST(KvStateMachineTest, NoOpAndGarbagePayloadsAreHarmless) {
  KvStateMachine kv;
  kv.Apply(0, "");          // no-op filler
  kv.Apply(1, "garbage!");  // undecodable: logged, not applied
  EXPECT_EQ(kv.size(), 0u);
  EXPECT_EQ(kv.applied_commands(), 0u);
}

TEST(KvStateMachineTest, ChecksumTracksContentNotOrder) {
  KvStateMachine a, b;
  Transaction t1;
  t1.id = 1;
  t1.ops = {Operation::Put("x", "1"), Operation::Put("y", "2")};
  Transaction t2;
  t2.id = 2;
  t2.ops = {Operation::Put("y", "2"), Operation::Put("x", "1")};
  a.Apply(0, EncodeBatch({t1}));
  b.Apply(0, EncodeBatch({t2}));
  EXPECT_EQ(a.Checksum(), b.Checksum());

  b.Apply(1, EncodeBatch({t1}));  // same content again: unchanged
  EXPECT_EQ(a.Checksum(), b.Checksum());

  Transaction t3;
  t3.id = 3;
  t3.ops = {Operation::Put("x", "DIFFERENT")};
  b.Apply(2, EncodeBatch({t3}));
  EXPECT_NE(a.Checksum(), b.Checksum());
}

TEST(SmrIntegrationTest, ReplicasConvergeThroughConsensus) {
  // Full stack: OLTP batches -> consensus (decide broadcast to all) ->
  // per-replica appliers -> identical KV state everywhere.
  ClusterOptions options;
  options.replica.decide_policy = DecidePolicy::kAll;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);

  std::vector<std::unique_ptr<KvStateMachine>> machines;
  std::vector<std::unique_ptr<LogApplier>> appliers;
  for (NodeId n : cluster.topology().AllNodes()) {
    machines.push_back(std::make_unique<KvStateMachine>());
    appliers.push_back(std::make_unique<LogApplier>(machines.back().get()));
    LogApplier* applier = appliers.back().get();
    cluster.replica(n)->set_decide_callback(
        [applier](SlotId slot, const Value& value) {
          applier->OnDecided(slot, value);
        });
  }

  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  OltpGenerator gen(OltpConfig{.num_keys = 1000}, 42);
  for (int i = 0; i < 15; ++i) {
    const std::vector<Transaction> batch = gen.NextBatch(1024);
    ASSERT_TRUE(cluster
                    .Commit(leader, Value::Of(static_cast<uint64_t>(i) + 1,
                                              EncodeBatch(batch)))
                    .ok());
  }
  cluster.sim().RunFor(5 * kSecond);  // let decide broadcasts land

  ASSERT_GT(machines[leader]->applied_writes(), 0u);
  const uint64_t checksum = machines[leader]->Checksum();
  for (NodeId n : cluster.topology().AllNodes()) {
    EXPECT_EQ(appliers[n]->applied_watermark(), 15u) << "node " << n;
    EXPECT_EQ(machines[n]->Checksum(), checksum) << "node " << n;
  }
}

}  // namespace
}  // namespace dpaxos
