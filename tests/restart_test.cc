// Crash-restart durability tests: Paxos safety requires promises,
// accepted values and intents to survive a process restart; everything
// volatile (roles, in-flight proposals, the decided log) is rebuilt
// through elections and catch-up.
#include <gtest/gtest.h>

#include <set>

#include "harness/cluster.h"
#include "harness/nemesis.h"

namespace dpaxos {
namespace {

TEST(RestartTest, PromisesSurviveRestart) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  const Ballot promised = cluster.replica(1)->acceptor().promised();
  ASSERT_FALSE(promised.is_null());

  cluster.RestartNode(1);
  // The durable promise survived the restart...
  EXPECT_EQ(cluster.replica(1)->acceptor().promised(), promised);
  // ...and still rejects lower ballots.
  auto stale = std::make_shared<PrepareMsg>(
      0, Ballot{0, 5}, 0, std::vector<Intent>{}, false, LeaderZoneView{});
  cluster.transport().Send(5, 1, stale);
  cluster.sim().RunFor(kSecond);
  EXPECT_EQ(cluster.replica(1)->acceptor().promised(), promised);
}

TEST(RestartTest, AcceptedValuesSurviveAndGetAdopted) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(i, 64)).ok());
  }

  // Restart the whole replication quorum — the decided values must
  // still be recoverable from the durable accepted entries.
  cluster.RestartNode(0);
  cluster.RestartNode(1);
  EXPECT_FALSE(cluster.replica(0)->is_leader());      // volatile role lost
  EXPECT_EQ(cluster.replica(0)->decided().size(), 0u);  // volatile log lost
  EXPECT_EQ(cluster.replica(0)->acceptor().accepted_count(), 3u);  // durable

  // A new leader adopts the accepted values through its election.
  Replica* successor = cluster.ReplicaInZone(2);
  ASSERT_TRUE(cluster.ElectLeader(successor->id()).ok());
  cluster.sim().RunFor(5 * kSecond);
  ASSERT_GE(successor->DecidedWatermark(), 3u);
  for (uint64_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(successor->decided().at(i - 1).id, i);
  }
}

TEST(RestartTest, IntentsSurviveRestart) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(2);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  const Ballot leader_ballot = cluster.replica(leader)->ballot();

  // Restart the whole Leader Zone (zone 0): the stored intent must
  // survive, or a future election could miss the live leader's quorum.
  for (NodeId n : cluster.topology().NodesInZone(0)) {
    cluster.RestartNode(n);
  }
  int holders = 0;
  for (NodeId n : cluster.topology().NodesInZone(0)) {
    for (const Intent& in : cluster.replica(n)->acceptor().intents()) {
      if (in.ballot == leader_ballot) ++holders;
    }
  }
  EXPECT_GE(holders, 2);

  // And a post-restart aspirant still detects + intersects it.
  Replica* aspirant = cluster.ReplicaInZone(5);
  aspirant->PrimeBallot(leader_ballot);
  ASSERT_TRUE(cluster.ElectLeader(aspirant->id()).ok());
  EXPECT_EQ(aspirant->expansion_rounds(), 1u);
}

TEST(RestartTest, RestartedLeaderDoesNotResumeLeadership) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(1, 64)).ok());

  cluster.RestartNode(leader);
  EXPECT_FALSE(cluster.replica(leader)->is_leader());
  // Its next election must pick a HIGHER ballot than anything it may
  // have promised before the crash (durable promise floor).
  const Ballot old = cluster.replica(leader)->acceptor().promised();
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  EXPECT_GT(cluster.replica(leader)->ballot(), old);
  ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(2, 64)).ok());
}

TEST(RestartTest, RestartPlusCatchUpRebuildsTheLog) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(i, 64)).ok());
  }

  cluster.RestartNode(1);
  EXPECT_EQ(cluster.replica(1)->decided().size(), 0u);
  bool done = false;
  Status st;
  cluster.replica(1)->CatchUpFrom(leader, [&](const Status& s) {
    st = s;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 30 * kSecond));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(cluster.replica(1)->DecidedWatermark(), 10u);
}

TEST(RestartTest, PendingTimersOfDeadReplicasNeverFire) {
  // A replica with an armed election timer is restarted; the stale timer
  // must not touch the new replica (the ScheduleSafe liveness guard).
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Replica* r = cluster.ReplicaInZone(3);
  const NodeId node = r->id();  // r itself dies with the restart below
  // Partition it from the Leader Zone so the election hangs on a timer.
  for (NodeId n : cluster.topology().NodesInZone(0)) {
    cluster.transport().Partition(node, n);
  }
  r->TryBecomeLeader([](const Status&) {});
  ASSERT_TRUE(r->is_candidate());

  cluster.RestartNode(node);
  cluster.transport().HealAll();
  // Drive past the old timer's deadline: nothing must crash, and the
  // fresh replica is a clean follower.
  cluster.sim().RunFor(30 * kSecond);
  EXPECT_FALSE(cluster.replica(node)->is_candidate());
  ASSERT_TRUE(cluster.ElectLeader(node).ok());
}

TEST(RestartTest, LeasePromiseSurvivesRestart) {
  ClusterOptions options;
  options.replica.enable_leases = true;
  options.replica.lease_duration = 10 * kSecond;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(1, 64)).ok());

  // Restart a lease-voting acceptor: the durable lease promise still
  // blocks rival elections until expiry.
  cluster.RestartNode(1);
  EXPECT_TRUE(cluster.replica(1)->acceptor().HasActiveLease(
      cluster.sim().Now()));
  Replica* rival = cluster.ReplicaInZone(4);
  rival->PrimeBallot(cluster.replica(leader)->ballot());
  const Timestamp start = cluster.sim().Now();
  ASSERT_TRUE(cluster.ElectLeader(rival->id()).ok());
  EXPECT_GE(cluster.sim().Now() - start, 5 * kSecond);  // waited out lease
}

TEST(RestartTest, SafetyUnderRandomRestarts) {
  // Crash/restart churn through the nemesis, with crash-fault storage:
  // every restart in the second half of the waves additionally rolls the
  // acceptor records back to their last completed sync. Because an
  // acceptor marks its record synced before any promise/accept reply is
  // sent, the lost suffix was never visible to a quorum and agreement
  // must still hold.
  for (uint64_t seed : {11u, 22u, 33u}) {
    ClusterOptions options;
    options.seed = seed;
    options.replica.le_timeout = 800 * kMillisecond;
    options.replica.propose_timeout = 400 * kMillisecond;
    options.replica.storage_sync_delay = 100 * kMicrosecond;
    Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                    options);
    for (NodeId n : cluster.topology().AllNodes()) {
      cluster.host(n)->storage().set_crash_faults(true);
    }
    Nemesis nemesis(&cluster, seed);
    Rng rng(seed * 31 + 1);

    std::set<uint64_t> submitted;
    uint64_t id = 0;
    for (int wave = 0; wave < 10; ++wave) {
      nemesis.CrashRandomNode();
      const NodeId proposer = static_cast<NodeId>(
          rng.NextBounded(cluster.topology().num_nodes()));
      if (nemesis.crashed().count(proposer) == 0) {
        submitted.insert(++id);
        cluster.replica(proposer)->Submit(
            Value::Synthetic(id, 128),
            [](const Status&, SlotId, Duration) {});
      }
      cluster.sim().RunFor(rng.NextBounded(2 * kSecond));
      nemesis.RestartRandomCrashedNode(/*lose_unsynced=*/wave >= 5);
      cluster.sim().RunFor(rng.NextBounded(2 * kSecond));
    }
    nemesis.Quiesce();
    cluster.sim().RunFor(30 * kSecond);

    // Agreement across every replica's (possibly partial) decided log.
    std::map<SlotId, uint64_t> canonical;
    for (NodeId n : cluster.topology().AllNodes()) {
      for (const auto& [slot, value] : cluster.replica(n)->decided()) {
        auto [it, inserted] = canonical.emplace(slot, value.id);
        ASSERT_EQ(it->second, value.id)
            << "seed " << seed << " slot " << slot;
        if (!value.is_noop()) {
          ASSERT_TRUE(submitted.count(value.id) > 0);
        }
      }
    }
  }
}

TEST(RestartTest, LossyRestartDropsUnsyncedWrites) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  cluster.host(1)->storage().set_crash_faults(true);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(1, 64)).ok());

  // Node 1 replied to the promise and the accept, so both mutations were
  // synced. Now scribble an unsynced suffix straight into the record,
  // as if the process died mid-write before the fsync completed.
  const Ballot promised = cluster.replica(1)->acceptor().promised();
  const size_t accepted = cluster.replica(1)->acceptor().accepted_count();
  AcceptorRecord* rec = cluster.host(1)->storage().RecordFor(0);
  rec->promised = Ballot{promised.round + 100, 9};
  rec->accepted.clear();

  cluster.RestartNode(1, /*lose_unsynced=*/true);
  // The un-fsynced suffix is gone; everything the node ever replied to
  // is intact (that is exactly what Paxos safety needs).
  EXPECT_EQ(cluster.replica(1)->acceptor().promised(), promised);
  EXPECT_EQ(cluster.replica(1)->acceptor().accepted_count(), accepted);

  // A clean restart, by contrast, keeps even unsynced writes.
  cluster.host(2)->storage().set_crash_faults(true);
  AcceptorRecord* rec2 = cluster.host(2)->storage().RecordFor(0);
  const Ballot scribble{promised.round + 7, 3};
  rec2->promised = scribble;
  cluster.RestartNode(2, /*lose_unsynced=*/false);
  EXPECT_EQ(cluster.replica(2)->acceptor().promised(), scribble);
}

TEST(RestartTest, SyncWriteAccountingGrows) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  const uint64_t after_election =
      cluster.replica(leader)->acceptor().sync_writes();
  EXPECT_GE(after_election, 1u);  // the promise was durable
  ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(1, 64)).ok());
  EXPECT_GT(cluster.replica(leader)->acceptor().sync_writes(),
            after_election);  // the acceptance too
}

}  // namespace
}  // namespace dpaxos
