// Unit tests for NodeHost: partition demultiplexing, restart blueprints,
// storage wiring and garbage-collector routing.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "paxos/node_host.h"

namespace dpaxos {
namespace {

TEST(NodeHostTest, DemultiplexesByPartition) {
  ClusterOptions options;
  options.partitions = {0, 7};
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  // A message for partition 7 must reach partition 7's replica only.
  ASSERT_TRUE(cluster.ElectLeader(cluster.NodeInZone(0), 7).ok());
  ASSERT_TRUE(
      cluster.Commit(cluster.NodeInZone(0), Value::Of(1, "seven"), 7).ok());
  EXPECT_EQ(cluster.replica(cluster.NodeInZone(0), 7)->decided().size(), 1u);
  EXPECT_EQ(cluster.replica(cluster.NodeInZone(0), 0)->decided().size(), 0u);
}

TEST(NodeHostTest, MessagesForUnknownPartitionsAreDropped) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  // Partition 42 is hosted nowhere; the message must be ignored, not
  // crash the host.
  auto msg = std::make_shared<GcPollMsg>(42);
  cluster.transport().Send(0, 1, msg);
  cluster.sim().RunFor(kSecond);
  ASSERT_TRUE(cluster.Commit(cluster.NodeInZone(0), Value::Of(1, "x")).ok());
}

TEST(NodeHostTest, RestartRebuildsEveryPartitionFromStorage) {
  ClusterOptions options;
  options.partitions = {0, 1};
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  for (PartitionId p : {0u, 1u}) {
    ASSERT_TRUE(cluster.ElectLeader(cluster.NodeInZone(0), p).ok());
    ASSERT_TRUE(
        cluster.Commit(cluster.NodeInZone(0), Value::Of(p + 1, "v"), p).ok());
  }
  const Ballot p0_promised = cluster.replica(1, 0)->acceptor().promised();
  const Ballot p1_promised = cluster.replica(1, 1)->acceptor().promised();

  cluster.RestartNode(1);
  // Both partitions exist again, each resuming its own durable record.
  ASSERT_NE(cluster.replica(1, 0), nullptr);
  ASSERT_NE(cluster.replica(1, 1), nullptr);
  EXPECT_EQ(cluster.replica(1, 0)->acceptor().promised(), p0_promised);
  EXPECT_EQ(cluster.replica(1, 1)->acceptor().promised(), p1_promised);
}

TEST(NodeHostTest, GcRepliesRouteToTheAttachedCollector) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "x")).ok());

  GarbageCollector* gc = cluster.AddGarbageCollector(4);
  gc->SweepOnce();
  cluster.sim().RunFor(2 * kSecond);
  // The collector (not the replica) consumed the poll replies and
  // learned the leader's recovery-complete ballot.
  EXPECT_EQ(gc->threshold(), cluster.replica(leader)->ballot());
}

TEST(NodeHostDeathTest, RejectsDuplicatePartitions) {
  Simulator sim(1);
  Topology topo = Topology::Uniform(3, 3, 50.0);
  SimTransport transport(&sim, &topo);
  auto quorums =
      MakeQuorumSystem(ProtocolMode::kLeaderZone, &topo, FaultTolerance{1, 0});
  NodeHost host(&sim, &transport, &topo, 0);
  ReplicaConfig config;
  config.partition = 3;
  host.AddReplica(quorums.get(), config);
  EXPECT_DEATH(host.AddReplica(quorums.get(), config), "already hosted");
}

TEST(NodeHostDeathTest, RejectsForeignGarbageCollector) {
  Simulator sim(1);
  Topology topo = Topology::Uniform(3, 3, 50.0);
  SimTransport transport(&sim, &topo);
  NodeHost host(&sim, &transport, &topo, 0);
  GarbageCollector gc(&sim, &transport, &topo, /*host=*/5, 0);
  EXPECT_DEATH(host.AttachGarbageCollector(&gc), "");
}

}  // namespace
}  // namespace dpaxos
