// Golden-file determinism tests: the observable schedule of a run —
// operation history, commit latencies, virtual clock, wire traffic — is
// a pure function of the seed, and must stay BYTE-IDENTICAL across
// kernel/transport/codec rewrites. The goldens in tests/golden/ were
// captured from the original copy-on-pop priority_queue kernel; any
// hot-path change that alters them has changed the simulated schedule,
// not just its wall-clock cost (see docs/perf.md).
//
// To regenerate after an INTENTIONAL schedule change (e.g. a new fault
// schedule), run the test once with DPAXOS_REGEN_GOLDEN=1 and commit the
// updated files together with an explanation of why the schedule moved.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/chaos.h"
#include "harness/cluster.h"
#include "harness/load_driver.h"

#ifndef DPAXOS_GOLDEN_DIR
#error "build must define DPAXOS_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace dpaxos {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(DPAXOS_GOLDEN_DIR) + "/" + name;
}

bool RegenRequested() {
  const char* v = std::getenv("DPAXOS_REGEN_GOLDEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// Compare `actual` against the named golden file, or rewrite the file
/// when DPAXOS_REGEN_GOLDEN is set. On mismatch, report the first
/// differing line — a raw two-string diff of a multi-thousand-line
/// history is unreadable.
void CompareOrRegen(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (RegenRequested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path << " (" << actual.size()
                 << " bytes)";
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — capture it with DPAXOS_REGEN_GOLDEN=1 on a known-good build";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == actual) return;

  std::istringstream want(expected), got(actual);
  std::string want_line, got_line;
  size_t line = 0;
  while (true) {
    ++line;
    const bool more_want = static_cast<bool>(std::getline(want, want_line));
    const bool more_got = static_cast<bool>(std::getline(got, got_line));
    if (!more_want && !more_got) break;  // diff is in trailing bytes
    if (!more_want || !more_got || want_line != got_line) {
      FAIL() << "schedule diverged from golden " << name << " at line "
             << line << "\n  golden: "
             << (more_want ? want_line : std::string("<eof>"))
             << "\n  actual: "
             << (more_got ? got_line : std::string("<eof>"))
             << "\n(sizes: golden=" << expected.size()
             << " actual=" << actual.size() << " bytes)";
    }
  }
  FAIL() << "golden " << name << " differs (sizes: golden="
         << expected.size() << " actual=" << actual.size() << " bytes)";
}

/// Fingerprint of one closed-loop load run: everything a bench would
/// report, down to each individual latency sample in completion order.
/// Deliberately excludes perf counters and pending_events() — those
/// describe the kernel's internals, which optimisations MAY change.
std::string LoadFingerprint(ProtocolMode mode) {
  ClusterOptions options;
  options.ft = FaultTolerance{1, 0};
  options.seed = 42;
  options.replica.max_inflight = 8;
  options.replica.decide_policy = DecidePolicy::kQuorum;
  Cluster cluster(Topology::AwsSevenZones(), mode, options);

  Replica* proposer = cluster.ReplicaInZone(0);
  Result<Duration> elected = cluster.ElectLeader(proposer->id());
  EXPECT_TRUE(elected.ok());

  LoadOptions load;
  load.batch_bytes = 512;
  load.duration = 5 * kSecond;
  load.window = 8;
  const LoadResult result = RunClosedLoop(cluster, proposer, load);

  std::ostringstream out;
  out << "mode=" << ProtocolModeName(mode)
      << " committed=" << result.committed << " failed=" << result.failed
      << " reads=" << result.reads_served << "\n";
  out << "throughput ops=" << result.throughput.operations
      << " bytes=" << result.throughput.bytes
      << " elapsed=" << result.throughput.elapsed << "\n";
  out << "now=" << cluster.sim().Now()
      << " bytes_sent=" << cluster.transport().TotalBytesSent() << "\n";
  for (Duration sample : result.commit_latency.samples()) {
    out << "lat " << sample << "\n";
  }
  return out.str();
}

TEST(DeterminismGolden, LoadLeaderZone) {
  CompareOrRegen("load_leaderzone_w8_seed42.txt",
                 LoadFingerprint(ProtocolMode::kLeaderZone));
}

TEST(DeterminismGolden, LoadDelegate) {
  CompareOrRegen("load_delegate_w8_seed42.txt",
                 LoadFingerprint(ProtocolMode::kDelegate));
}

// The chaos cell exercises every hot path at once — nemesis timers and
// their cancellations, client retries, duplicated and dropped messages —
// and its per-op history (invoke/complete virtual timestamps included)
// is the strictest schedule fingerprint the harness can produce.
TEST(DeterminismGolden, ChaosLeaderZoneMixed) {
  ChaosOptions options;
  options.mode = ProtocolMode::kLeaderZone;
  options.schedule = "mixed";
  options.seed = 5;
  options.duration = 10 * kSecond;
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.Summary();

  std::ostringstream out;
  out << "invoked=" << report.ops_invoked
      << " committed=" << report.ops_committed
      << " failed=" << report.ops_failed
      << " indeterminate=" << report.ops_indeterminate
      << " retries=" << report.client_retries
      << " nemesis=" << report.nemesis_actions << "\n";
  out << report.history_text;
  CompareOrRegen("chaos_leaderzone_mixed_seed5.txt", out.str());
}

// Compaction-enabled schedule: the "recovery" nemesis forces compaction
// sweeps, corrupts snapshots mid-transfer and crashes nodes during
// install, so this golden pins the whole snapshot-recovery stack —
// chunked transfer timers, CRC rejection, retry backoff draws and
// failover ordering — not just the legacy consensus paths. Captured
// when the subsystem landed; regenerate only with an intentional
// schedule change.
TEST(DeterminismGolden, ChaosLeaderZoneRecoveryCompaction) {
  ChaosOptions options;
  options.mode = ProtocolMode::kLeaderZone;
  options.schedule = "recovery";
  options.seed = 13;
  options.duration = 10 * kSecond;
  options.enable_compaction = true;
  options.compaction_retained_suffix = 32;
  options.compaction_interval = 1 * kSecond;
  options.snapshot_chunk_bytes = 256;
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.log_compactions, 0u) << report.Summary();

  std::ostringstream out;
  out << "invoked=" << report.ops_invoked
      << " committed=" << report.ops_committed
      << " failed=" << report.ops_failed
      << " indeterminate=" << report.ops_indeterminate
      << " retries=" << report.client_retries
      << " nemesis=" << report.nemesis_actions << "\n";
  out << "compactions=" << report.log_compactions
      << " installed=" << report.snapshots_installed
      << " corruptions=" << report.snapshot_corruptions_detected
      << " max_resident=" << report.max_resident_decided << "\n";
  out << report.history_text;
  CompareOrRegen("chaos_leaderzone_recovery_seed13.txt", out.str());
}

}  // namespace
}  // namespace dpaxos
