// Unit tests for the common utilities: Status/Result, Rng, Histogram,
// duration formatting.
#include <gtest/gtest.h>

#include <set>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace dpaxos {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(st, Status::OK());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status st = Status::Aborted("lost the race");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_EQ(st.message(), "lost the race");
  EXPECT_EQ(st.ToString(), "Aborted: lost the race");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.MeanMillis(), 0.0);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(HistogramTest, PercentilesAndMean) {
  Histogram h;
  for (Duration d = 1; d <= 100; ++d) h.Add(d * kMillisecond);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.MeanMillis(), 50.5, 0.1);
  EXPECT_EQ(h.Min(), 1 * kMillisecond);
  EXPECT_EQ(h.Max(), 100 * kMillisecond);
  EXPECT_NEAR(h.P50Millis(), 50, 1.0);
  EXPECT_NEAR(h.P99Millis(), 99, 1.0);
  EXPECT_EQ(h.Percentile(0), 1 * kMillisecond);
  EXPECT_EQ(h.Percentile(100), 100 * kMillisecond);
}

TEST(HistogramTest, InterleavedAddAndQuery) {
  Histogram h;
  h.Add(10);
  EXPECT_EQ(h.Percentile(50), 10u);
  h.Add(20);
  h.Add(30);
  EXPECT_EQ(h.Percentile(100), 30u);  // re-sorts after new samples
}

TEST(ThroughputCounterTest, Rates) {
  ThroughputCounter tc;
  tc.Record(10, 10 * 1024);
  tc.elapsed = 2 * kSecond;
  EXPECT_NEAR(tc.KilobytesPerSecond(), 5.0, 0.01);
  EXPECT_NEAR(tc.OpsPerSecond(), 5.0, 0.01);
}

TEST(ThroughputCounterTest, ZeroElapsedIsZeroRate) {
  ThroughputCounter tc;
  tc.Record(10, 1024);
  EXPECT_EQ(tc.KilobytesPerSecond(), 0.0);
}

TEST(DurationTest, Formatting) {
  EXPECT_EQ(DurationToString(500), "500us");
  EXPECT_EQ(DurationToString(12'340), "12.34ms");
  EXPECT_EQ(DurationToString(2'500'000), "2.500s");
}

TEST(DurationTest, Conversions) {
  EXPECT_EQ(FromMillis(12.5), 12'500u);
  EXPECT_DOUBLE_EQ(ToMillis(12'500), 12.5);
}

}  // namespace
}  // namespace dpaxos
