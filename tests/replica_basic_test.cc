// End-to-end commit tests for every protocol mode on the paper's
// seven-zone topology.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "paxos/value.h"

namespace dpaxos {
namespace {

class ReplicaBasicTest : public ::testing::TestWithParam<ProtocolMode> {};

TEST_P(ReplicaBasicTest, ElectAndCommit) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam());
  const NodeId proposer = cluster.NodeInZone(0);

  if (GetParam() != ProtocolMode::kLeaderless) {
    Result<Duration> elect = cluster.ElectLeader(proposer);
    ASSERT_TRUE(elect.ok()) << elect.status().ToString();
    EXPECT_TRUE(cluster.replica(proposer)->is_leader());
  }

  Result<Duration> commit =
      cluster.Commit(proposer, Value::Of(1, "hello"));
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_GT(commit.value(), 0u);

  // The proposer learned its own decision.
  const auto& log = cluster.replica(proposer)->decided();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.begin()->second.payload, "hello");
}

TEST_P(ReplicaBasicTest, CommitSequence) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam());
  const NodeId proposer = cluster.NodeInZone(2);  // Virginia

  for (uint64_t i = 1; i <= 20; ++i) {
    Result<Duration> commit = cluster.Commit(
        proposer, Value::Of(i, "value" + std::to_string(i)));
    ASSERT_TRUE(commit.ok()) << "i=" << i << ": " << commit.status().ToString();
  }
  EXPECT_EQ(cluster.replica(proposer)->decided().size(), 20u);
  if (GetParam() == ProtocolMode::kLeaderless) {
    // Leaderless proposers stripe slots: this one owns slots congruent to
    // its node id modulo the node count.
    SlotId expected = proposer;
    for (const auto& [slot, value] : cluster.replica(proposer)->decided()) {
      EXPECT_EQ(slot, expected);
      expected += cluster.topology().num_nodes();
    }
  } else {
    // A single prolonged leader produces a contiguous log from slot 0.
    EXPECT_EQ(cluster.replica(proposer)->DecidedWatermark(), 20u);
  }
}

TEST_P(ReplicaBasicTest, SecondCommitSkipsElection) {
  if (GetParam() == ProtocolMode::kLeaderless) GTEST_SKIP();
  Cluster cluster(Topology::AwsSevenZones(), GetParam());
  const NodeId proposer = cluster.NodeInZone(0);

  // First submit auto-elects: latency includes the Leader Election round.
  Result<Duration> first = cluster.Commit(proposer, Value::Of(1, "a"));
  ASSERT_TRUE(first.ok());
  // Prolonged leader: subsequent commits bypass Leader Election.
  Result<Duration> second = cluster.Commit(proposer, Value::Of(2, "b"));
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second.value(), first.value());
  EXPECT_EQ(cluster.replica(proposer)->elections_won(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ReplicaBasicTest,
    ::testing::Values(ProtocolMode::kMultiPaxos, ProtocolMode::kFlexiblePaxos,
                      ProtocolMode::kDelegate, ProtocolMode::kLeaderZone,
                      ProtocolMode::kLeaderless),
    [](const ::testing::TestParamInfo<ProtocolMode>& info) {
      std::string name = ProtocolModeName(info.param);
      std::erase(name, '-');
      return name;
    });

}  // namespace
}  // namespace dpaxos
