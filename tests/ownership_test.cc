// Partition ownership (docs/PROTOCOL.md §ownership): the transfer-record
// codec, the OwnershipDirectory learner, and the protocol-level steal —
// StealRequest/OwnershipGrant exchange, refusals, the crash-mid-steal
// election fallback, and the placement counters the store keeps.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/perf_counters.h"
#include "directory/sharded_store.h"
#include "harness/cluster.h"
#include "placement/ownership.h"

namespace dpaxos {
namespace {

OwnershipRecord SampleRecord() {
  OwnershipRecord record;
  record.partition = 3;
  record.zone = 6;
  record.node = 19;
  record.epoch = 7;
  return record;
}

TEST(OwnershipRecordTest, RoundTripsThroughCarrierValue) {
  const OwnershipRecord record = SampleRecord();
  const Value value = MakeOwnershipTransferValue(record, /*seq=*/42);
  EXPECT_TRUE(IsOwnershipValueId(value.id));
  const std::optional<OwnershipRecord> decoded =
      DecodeOwnershipRecord(value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, record);
}

TEST(OwnershipRecordTest, SequenceDisambiguatesValueIds) {
  const Value a = MakeOwnershipTransferValue(SampleRecord(), 1);
  const Value b = MakeOwnershipTransferValue(SampleRecord(), 2);
  EXPECT_NE(a.id, b.id);
  EXPECT_TRUE(IsOwnershipValueId(a.id));
  EXPECT_TRUE(IsOwnershipValueId(b.id));
}

TEST(OwnershipRecordTest, OrdinaryValuesAreNotRecords) {
  // Client ids have a zero top byte; the tag check alone rejects them.
  EXPECT_FALSE(DecodeOwnershipRecord(Value::Of(7, "payload")).has_value());
  EXPECT_FALSE(DecodeOwnershipRecord(Value()).has_value());
  // The no-op filler (id 0) is not a record either.
  EXPECT_FALSE(DecodeOwnershipRecord(Value::Of(0, "")).has_value());
}

TEST(OwnershipRecordTest, HostileTaggedValuesDecodeToNothing) {
  const uint64_t tagged_id = (static_cast<uint64_t>(kOwnershipValueTag)
                              << 56) |
                             99;
  // Tagged id but garbage payload: not a batch at all.
  EXPECT_FALSE(
      DecodeOwnershipRecord(Value::Of(tagged_id, "garbage")).has_value());
  // Tagged id with an empty payload.
  EXPECT_FALSE(DecodeOwnershipRecord(Value::Of(tagged_id, "")).has_value());
  // A well-formed record whose key is truncated/extended by one byte
  // must be rejected by the length check, never mis-decoded.
  const Value good = MakeOwnershipTransferValue(SampleRecord(), 1);
  for (int delta : {-1, 1}) {
    Result<std::vector<Transaction>> batch = DecodeBatch(good.payload);
    ASSERT_TRUE(batch.ok());
    Transaction txn = batch->front();
    std::string key = txn.ops.front().key;
    if (delta < 0) {
      key.pop_back();
    } else {
      key.push_back('\x00');
    }
    txn.ops.front() = Operation::Get(key);
    EXPECT_FALSE(
        DecodeOwnershipRecord(Value::Of(good.id, EncodeBatch({txn})))
            .has_value());
  }
  // Right shape but a Put instead of a Get: wrong carrier op.
  {
    Result<std::vector<Transaction>> batch = DecodeBatch(good.payload);
    ASSERT_TRUE(batch.ok());
    Transaction txn = batch->front();
    txn.ops.front() = Operation::Put(txn.ops.front().key, "");
    EXPECT_FALSE(
        DecodeOwnershipRecord(Value::Of(good.id, EncodeBatch({txn})))
            .has_value());
  }
}

TEST(OwnershipDirectoryTest, AppliesRecordsInSlotOrder) {
  OwnershipDirectory directory(4);
  EXPECT_FALSE(directory.has_owner(2));
  EXPECT_EQ(directory.owner_node(2), kInvalidNode);

  OwnershipRecord first{2, 1, 5, 1};
  EXPECT_TRUE(directory.Observe(10, first));
  EXPECT_TRUE(directory.has_owner(2));
  EXPECT_EQ(directory.owner_node(2), 5u);
  EXPECT_EQ(directory.owner_zone(2), 1u);
  EXPECT_EQ(directory.epoch(2), 1u);
  EXPECT_EQ(directory.record_slot(2), 10u);

  // A later slot advances the entry; the same or an earlier slot is a
  // replay and changes nothing.
  OwnershipRecord second{2, 3, 11, 2};
  EXPECT_TRUE(directory.Observe(20, second));
  EXPECT_EQ(directory.owner_node(2), 11u);
  OwnershipRecord replay{2, 0, 99, 9};
  EXPECT_FALSE(directory.Observe(20, replay));
  EXPECT_FALSE(directory.Observe(15, replay));
  EXPECT_EQ(directory.owner_node(2), 11u);
  EXPECT_EQ(directory.records_observed(), 4u);
  EXPECT_EQ(directory.records_stale(), 2u);
}

TEST(OwnershipDirectoryTest, RejectsOutOfRangePartitions) {
  OwnershipDirectory directory(2);
  // A hostile record naming a partition the directory does not track is
  // dropped without counting, crashing, or touching any entry.
  for (PartitionId p : {2u, 31u, 0xFFFFFFFFu}) {
    OwnershipRecord hostile{p, 0, 1, 1};
    EXPECT_FALSE(directory.Observe(5, hostile));
  }
  EXPECT_EQ(directory.records_observed(), 0u);
  EXPECT_FALSE(directory.has_owner(0));
  EXPECT_FALSE(directory.has_owner(1));
}

// --- protocol-level steals in the simulator ----------------------------

ClusterOptions StealOptions() {
  ClusterOptions options;
  // Handoff/steal elections recover mid-flight state; the default 2s
  // le_timeout can preempt them under WAN RTTs.
  options.replica.le_timeout = 30 * kSecond;
  return options;
}

class ProtocolStealTest : public ::testing::TestWithParam<ProtocolMode> {};

TEST_P(ProtocolStealTest, StealTransfersLeadershipAndCommitsRecord) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), StealOptions());
  const NodeId incumbent = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(incumbent).ok());
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(cluster.Commit(incumbent, Value::Of(i, "v")).ok());
  }

  const NodeId thief = cluster.NodeInZone(6);
  Replica* thief_replica = cluster.replica(thief);
  thief_replica->PrimeBallot(cluster.replica(incumbent)->ballot());
  const OwnershipRecord record{0, 6, thief, 1};
  std::optional<Status> done;
  thief_replica->StealOwnershipFrom(
      incumbent, MakeOwnershipTransferValue(record, 1),
      [&](const Status& st) { done = st; });
  ASSERT_TRUE(cluster.RunUntil([&] { return done.has_value(); },
                               120 * kSecond));
  ASSERT_TRUE(done->ok()) << done->ToString();
  EXPECT_TRUE(thief_replica->is_leader());
  EXPECT_FALSE(cluster.replica(incumbent)->is_leader());

  // The exchange ran (no timeout fallback) and the thief's first decided
  // entry past the adopted prefix is the transfer record.
  EXPECT_EQ(thief_replica->counters().steal_requests_sent, 1u);
  EXPECT_EQ(thief_replica->counters().steals_won, 1u);
  EXPECT_EQ(cluster.replica(incumbent)->counters().steal_requests_received,
            1u);
  EXPECT_EQ(cluster.replica(incumbent)->counters().steals_granted, 1u);
  bool found = false;
  for (const auto& [slot, value] : thief_replica->decided()) {
    const std::optional<OwnershipRecord> decoded =
        DecodeOwnershipRecord(value);
    if (decoded.has_value()) {
      EXPECT_EQ(*decoded, record);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // The stolen partition still serves.
  EXPECT_TRUE(cluster.Commit(thief, Value::Of(10, "after")).ok());
}

TEST_P(ProtocolStealTest, IncumbentCrashMidStealFallsBackToElection) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), StealOptions());
  const NodeId incumbent = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(incumbent).ok());
  ASSERT_TRUE(cluster.Commit(incumbent, Value::Of(1, "v")).ok());

  // The incumbent dies before it can answer: the StealRequest blackholes
  // and after propose_timeout the thief falls back to an ordinary
  // election, which preempts the dead leader's ballot and still commits
  // the transfer record.
  cluster.transport().Crash(incumbent);
  const NodeId thief = cluster.NodeInZone(6);
  Replica* thief_replica = cluster.replica(thief);
  thief_replica->PrimeBallot(cluster.replica(incumbent)->ballot());
  const OwnershipRecord record{0, 6, thief, 1};
  std::optional<Status> done;
  thief_replica->StealOwnershipFrom(
      incumbent, MakeOwnershipTransferValue(record, 1),
      [&](const Status& st) { done = st; });
  ASSERT_TRUE(cluster.RunUntil([&] { return done.has_value(); },
                               120 * kSecond));
  ASSERT_TRUE(done->ok()) << done->ToString();
  EXPECT_TRUE(thief_replica->is_leader());
  // No grant ever arrived; the win came from the fallback election.
  EXPECT_EQ(thief_replica->counters().steals_won, 1u);
  bool found = false;
  for (const auto& [slot, value] : thief_replica->decided()) {
    if (DecodeOwnershipRecord(value).has_value()) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(cluster.Commit(thief, Value::Of(2, "after")).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ProtocolStealTest,
    ::testing::Values(ProtocolMode::kMultiPaxos, ProtocolMode::kLeaderZone),
    [](const ::testing::TestParamInfo<ProtocolMode>& info) {
      std::string name = ProtocolModeName(info.param);
      std::erase(name, '-');
      return name;
    });

TEST(ProtocolStealTest, FastGrantOutstandingRefusesSteal) {
  ClusterOptions options = StealOptions();
  options.replica.enable_fast_path = true;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kMultiPaxos,
                  options);
  const NodeId incumbent = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(incumbent).ok());
  cluster.sim().RunFor(2 * kSecond);  // let the fast grant broadcast land
  ASSERT_TRUE(cluster.replica(incumbent)->fast_grant().valid());

  const NodeId thief = cluster.NodeInZone(6);
  Replica* thief_replica = cluster.replica(thief);
  std::optional<Status> done;
  thief_replica->StealOwnershipFrom(
      incumbent, MakeOwnershipTransferValue({0, 6, thief, 1}, 1),
      [&](const Status& st) { done = st; });
  ASSERT_TRUE(cluster.RunUntil([&] { return done.has_value(); },
                               60 * kSecond));
  // With fast commits possibly unobserved by the incumbent, only an
  // election may take over — the steal is refused, not granted.
  EXPECT_TRUE(done->IsFailedPrecondition()) << done->ToString();
  EXPECT_FALSE(thief_replica->is_leader());
  EXPECT_TRUE(cluster.replica(incumbent)->is_leader());
  EXPECT_EQ(cluster.replica(incumbent)->counters().steals_refused, 1u);
  EXPECT_EQ(cluster.replica(incumbent)->counters().steals_granted, 0u);
}

TEST(ProtocolStealTest, InviteStealFiresHostCallback) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  StealOptions());
  const NodeId incumbent = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(incumbent).ok());

  const NodeId thief = cluster.NodeInZone(3);
  std::optional<NodeId> invited_by;
  cluster.replica(thief)->set_steal_invite_callback(
      [&](NodeId from) { invited_by = from; });
  // A leader ignores invitations addressed to itself.
  std::optional<NodeId> self_invited;
  cluster.replica(incumbent)->set_steal_invite_callback(
      [&](NodeId from) { self_invited = from; });

  cluster.replica(incumbent)->InviteSteal(thief);
  cluster.replica(incumbent)->InviteSteal(incumbent);  // no-op
  ASSERT_TRUE(
      cluster.RunUntil([&] { return invited_by.has_value(); }, 10 * kSecond));
  EXPECT_EQ(*invited_by, incumbent);
  cluster.sim().RunFor(5 * kSecond);
  EXPECT_FALSE(self_invited.has_value());
}

// --- the store's ownership mode ----------------------------------------

constexpr uint32_t kPartitions = 2;

std::unique_ptr<Cluster> MakeOwnershipCluster(
    ClusterOptions options = StealOptions()) {
  options.partitions.clear();
  for (uint32_t p = 0; p < kPartitions; ++p) options.partitions.push_back(p);
  return std::make_unique<Cluster>(Topology::AwsSevenZones(),
                                   ProtocolMode::kLeaderZone, options);
}

ShardedStore MakeOwnershipStore(Cluster& cluster,
                                ShardedStore::Options options = {}) {
  options.num_partitions = kPartitions;
  options.ownership = true;
  return ShardedStore(
      &cluster.sim(), &cluster.topology(),
      [&cluster](NodeId n, PartitionId p) { return cluster.replica(n, p); },
      options);
}

std::string KeyIn(const ShardedStore& store, PartitionId partition) {
  for (int i = 0;; ++i) {
    std::string key = "key" + std::to_string(i);
    if (store.PartitionOf(key) == partition) return key;
  }
}

Transaction TxnOn(uint64_t id, const std::string& key) {
  Transaction txn;
  txn.id = id;
  txn.ops = {Operation::Put(key, "v")};
  return txn;
}

Result<Duration> RunTxn(Cluster& cluster, ShardedStore& store,
                        const Transaction& txn, ZoneId zone) {
  std::optional<Status> done;
  Duration latency = 0;
  store.Execute(txn, zone, [&](const Status& st, Duration lat) {
    done = st;
    latency = lat;
  });
  while (!done.has_value() && cluster.sim().Step()) {
  }
  if (!done.has_value()) return Status::Internal("no progress");
  if (!done->ok()) return *done;
  return latency;
}

TEST(OwnershipStoreTest, StealGoesThroughProtocolAndFeedsDirectory) {
  auto cluster = MakeOwnershipCluster();
  ShardedStore::Options sopts;
  sopts.auto_steal = false;
  ShardedStore store = MakeOwnershipStore(*cluster, sopts);

  const PerfCounters before = SnapshotPerfCounters();
  // First access claims partition 1 for zone 2 — already a protocol
  // steal: the claim commits a transfer record the directory learns.
  ASSERT_TRUE(RunTxn(*cluster, store, TxnOn(1, KeyIn(store, 1)), 2).ok());
  ASSERT_TRUE(store.directory().has_owner(1));
  EXPECT_EQ(cluster->topology().ZoneOf(store.directory().owner_node(1)), 2u);
  EXPECT_EQ(store.directory().epoch(1), 1u);

  // A manual steal to zone 5 runs the StealRequest/OwnershipGrant
  // exchange against the incumbent and bumps the epoch.
  std::optional<Status> stolen;
  store.Steal(1, 5, [&](const Status& st) { stolen = st; });
  ASSERT_TRUE(
      cluster->RunUntil([&] { return stolen.has_value(); }, 120 * kSecond));
  ASSERT_TRUE(stolen->ok()) << stolen->ToString();
  EXPECT_EQ(cluster->topology().ZoneOf(store.directory().owner_node(1)), 5u);
  EXPECT_EQ(store.directory().epoch(1), 2u);
  EXPECT_EQ(store.LeaderOf(1), store.directory().owner_node(1));
  const NodeId owner = store.directory().owner_node(1);
  EXPECT_GE(cluster->replica(owner, 1)->counters().steals_won, 1u);

  const PerfCounters after = SnapshotPerfCounters();
  EXPECT_EQ(after.placement_steals_attempted -
                before.placement_steals_attempted,
            2u);
  EXPECT_EQ(after.placement_steals_completed -
                before.placement_steals_completed,
            2u);

  // Routing follows the directory: a zone-5 access is now local-fast.
  Result<Duration> local = RunTxn(*cluster, store, TxnOn(2, KeyIn(store, 1)),
                                  5);
  ASSERT_TRUE(local.ok());
  EXPECT_LT(local.value(), FromMillis(20));
}

TEST(OwnershipStoreTest, ObserveDecidedIgnoresCrossPartitionRecords) {
  auto cluster = MakeOwnershipCluster();
  ShardedStore::Options sopts;
  sopts.auto_steal = false;
  ShardedStore store = MakeOwnershipStore(*cluster, sopts);
  ASSERT_TRUE(RunTxn(*cluster, store, TxnOn(1, KeyIn(store, 0)), 0).ok());
  const NodeId owner = store.directory().owner_node(0);
  ASSERT_NE(owner, kInvalidNode);

  // A record naming partition 1 decided inside partition 0's log would
  // cross-wire the slot ordering; ObserveDecided must drop it.
  const Value hostile = MakeOwnershipTransferValue({1, 6, 19, 5}, 99);
  store.ObserveDecided(0, /*slot=*/1000, hostile);
  EXPECT_FALSE(store.directory().has_owner(1));
  // Same for an out-of-range partition id.
  const Value bogus = MakeOwnershipTransferValue({77, 6, 19, 5}, 100);
  store.ObserveDecided(0, /*slot=*/1001, bogus);
  EXPECT_EQ(store.directory().owner_node(0), owner);
}

TEST(OwnershipStoreTest, FastGrantRefusalCountsAsRejected) {
  ClusterOptions copts = StealOptions();
  copts.replica.enable_fast_path = true;
  auto cluster = MakeOwnershipCluster(copts);
  ShardedStore::Options sopts;
  sopts.auto_steal = false;
  ShardedStore store = MakeOwnershipStore(*cluster, sopts);
  ASSERT_TRUE(RunTxn(*cluster, store, TxnOn(1, KeyIn(store, 0)), 0).ok());
  cluster->sim().RunFor(2 * kSecond);  // fast grant broadcast lands
  ASSERT_TRUE(
      cluster->replica(store.directory().owner_node(0), 0)->fast_grant()
          .valid());

  const PerfCounters before = SnapshotPerfCounters();
  std::optional<Status> stolen;
  store.Steal(0, 6, [&](const Status& st) { stolen = st; });
  ASSERT_TRUE(
      cluster->RunUntil([&] { return stolen.has_value(); }, 60 * kSecond));
  EXPECT_TRUE(stolen->IsFailedPrecondition()) << stolen->ToString();
  const PerfCounters after = SnapshotPerfCounters();
  EXPECT_EQ(after.placement_steals_attempted -
                before.placement_steals_attempted,
            1u);
  EXPECT_EQ(
      after.placement_steals_rejected - before.placement_steals_rejected,
      1u);
  EXPECT_EQ(
      after.placement_steals_completed - before.placement_steals_completed,
      0u);
  // Ownership did not move.
  EXPECT_EQ(cluster->topology().ZoneOf(store.directory().owner_node(0)), 0u);
}

}  // namespace
}  // namespace dpaxos
