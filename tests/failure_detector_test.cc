// Tests for autonomous failover: leader heartbeats + member watchdogs.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

ClusterOptions DetectorOptions() {
  ClusterOptions options;
  options.replica.enable_failure_detector = true;
  options.replica.heartbeat_interval = 200 * kMillisecond;
  options.replica.election_timeout = 800 * kMillisecond;
  options.replica.le_timeout = 1 * kSecond;
  // The successor's default intent would include the node that just
  // died (its zone companion): declare an alternate quorum so failover
  // can commit without waiting for recovery (Section 4.6).
  options.replica.num_intents = 2;
  options.replica.propose_timeout = 300 * kMillisecond;
  options.replica.max_propose_retries = 2;
  return options;
}

// Count current self-declared leaders.
int Leaders(Cluster& cluster) {
  int n = 0;
  for (NodeId id : cluster.topology().AllNodes()) {
    if (cluster.replica(id)->is_leader()) ++n;
  }
  return n;
}

TEST(FailureDetectorTest, HealthyLeaderIsNeverDeposed) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  DetectorOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  // A long quiet period: heartbeats alone must keep the members calm.
  cluster.sim().RunFor(30 * kSecond);
  EXPECT_TRUE(cluster.replica(leader)->is_leader());
  EXPECT_EQ(Leaders(cluster), 1);
  uint64_t elections = 0;
  for (NodeId n : cluster.topology().AllNodes()) {
    elections += cluster.replica(n)->counters().elections_started;
  }
  EXPECT_EQ(elections, 1u);  // only the bootstrap election ever ran
}

TEST(FailureDetectorTest, CrashedLeaderIsReplacedAutomatically) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  DetectorOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  cluster.sim().RunFor(2 * kSecond);

  cluster.transport().Crash(leader);
  // No harness intervention: a quorum member's watchdog fires, it elects
  // itself, and the partition keeps serving. (The crashed process still
  // *believes* it leads — its state is frozen, not erased.)
  auto live_successor = [&]() -> NodeId {
    for (NodeId n : cluster.topology().AllNodes()) {
      if (n != leader && cluster.replica(n)->is_leader()) return n;
    }
    return kInvalidNode;
  };
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return live_successor() != kInvalidNode; }, 60 * kSecond));
  const NodeId successor = live_successor();
  ASSERT_NE(successor, kInvalidNode);
  EXPECT_NE(successor, leader);
  // The successor was a watcher of the old quorum (node 1, the
  // companion) — the only node wired to notice.
  EXPECT_EQ(successor, 1u);
  Result<Duration> r = cluster.Commit(successor, Value::Of(2, "b"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The decided prefix survived the failover.
  EXPECT_EQ(cluster.replica(successor)->decided().at(0).id, 1u);
}

TEST(FailureDetectorTest, HandoffKeepsHeartbeatsFlowing) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  DetectorOptions());
  const NodeId a = cluster.NodeInZone(0, 0);
  const NodeId b = cluster.NodeInZone(0, 1);
  ASSERT_TRUE(cluster.ElectLeader(a).ok());
  ASSERT_TRUE(cluster.replica(a)->HandoffTo(b).ok());
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return cluster.replica(b)->is_leader(); }, 10 * kSecond));
  // The new leader heartbeats; nobody usurps it during a quiet spell.
  cluster.sim().RunFor(20 * kSecond);
  EXPECT_TRUE(cluster.replica(b)->is_leader());
  EXPECT_EQ(Leaders(cluster), 1);
}

TEST(FailureDetectorTest, RepeatedFailuresKeepRecovering) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  DetectorOptions());
  NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(1, 64)).ok());

  for (int round = 0; round < 3; ++round) {
    cluster.transport().Crash(leader);
    ASSERT_TRUE(cluster.RunUntil(
        [&] {
          for (NodeId n : cluster.topology().AllNodes()) {
            if (n != leader && cluster.replica(n)->is_leader()) return true;
          }
          return false;
        },
        60 * kSecond))
        << "round " << round;
    cluster.transport().Recover(leader);
    cluster.RestartNode(leader);
    for (NodeId n : cluster.topology().AllNodes()) {
      if (cluster.replica(n)->is_leader()) leader = n;
    }
    ASSERT_TRUE(cluster
                    .Commit(leader, Value::Synthetic(
                                        10 + static_cast<uint64_t>(round), 64))
                    .ok());
  }
}

TEST(FailureDetectorTest, OffByDefaultNobodyWatches) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  cluster.transport().Crash(leader);
  cluster.sim().RunFor(30 * kSecond);
  // Nobody noticed — by design. (The dead process itself still claims
  // the role; no LIVE node assumed it.)
  for (NodeId n : cluster.topology().AllNodes()) {
    if (n != leader) EXPECT_FALSE(cluster.replica(n)->is_leader());
  }
}

}  // namespace
}  // namespace dpaxos
