// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace dpaxos {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.Schedule(10, chain);
  };
  sim.Schedule(10, chain);
  sim.RunUntilIdle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.Now(), 50u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(20, [&] { ++fired; });
  sim.Schedule(30, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20u);  // clock advances to the deadline
  EXPECT_EQ(sim.RunUntilIdle(), 1u);
}

TEST(SimulatorTest, RunForAdvancesRelative) {
  Simulator sim;
  sim.RunFor(100);
  EXPECT_EQ(sim.Now(), 100u);
  sim.RunFor(50);
  EXPECT_EQ(sim.Now(), 150u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(0));
  EXPECT_FALSE(sim.Cancel(12345));
}

TEST(SimulatorTest, DoubleCancelFails) {
  Simulator sim;
  const EventId id = sim.Schedule(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  sim.RunUntilIdle();
}

TEST(SimulatorTest, CancelAfterFireFails) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(5, [&] { fired = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(fired);
  // The handle died the moment the event ran; cancelling is a stale no-op.
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, HandleReuseAcrossMillionEvents) {
  Simulator sim;
  uint64_t fired = 0;
  std::vector<EventId> stale;
  constexpr int kEvents = 1'000'000;
  for (int i = 0; i < kEvents; ++i) {
    const EventId id = sim.Schedule(1, [&] { ++fired; });
    if (stale.size() < 100) stale.push_back(id);
    ASSERT_TRUE(sim.Step());
  }
  EXPECT_EQ(fired, static_cast<uint64_t>(kEvents));

  // The retained handles' slots have been reused ~a million times each;
  // generation tagging must keep every old handle dead.
  for (EventId id : stale) EXPECT_FALSE(sim.Cancel(id));

  // A stale cancel must also never kill the *current* occupant of the
  // reused slot: schedule a fresh event, cancel an old handle, and the
  // fresh event still fires.
  bool late_fired = false;
  sim.Schedule(1, [&] { late_fired = true; });
  EXPECT_FALSE(sim.Cancel(stale.front()));
  sim.RunUntilIdle();
  EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  Timestamp seen = 0;
  sim.ScheduleAt(123, [&] { seen = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(seen, 123u);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] { ++fired; });
  sim.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunUntilIdleRespectsEventCap) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.Schedule(1, forever); };
  sim.Schedule(1, forever);
  EXPECT_EQ(sim.RunUntilIdle(1000), 1000u);
}

TEST(SimulatorTest, PendingEventsTracksCancellations) {
  Simulator sim;
  const EventId a = sim.Schedule(10, [] {});
  sim.Schedule(20, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 100; ++i) {
      sim.Schedule(sim.rng().NextBounded(1000),
                   [&trace, &sim] { trace.push_back(sim.Now()); });
    }
    sim.RunUntilIdle();
    return trace;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace dpaxos
