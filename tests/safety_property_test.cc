// Randomized safety property tests: under message loss, jitter, crashes
// and concurrent proposers, every protocol preserves
//   - agreement: at most one value decided per slot, across all replicas,
//   - non-triviality: only submitted values (or no-ops) are decided.
// Parameterized over (protocol, seed) for schedule diversity.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

struct Param {
  ProtocolMode mode;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string name = ProtocolModeName(info.param.mode);
  std::erase(name, '-');
  return name + "_seed" + std::to_string(info.param.seed);
}

// Cross-replica agreement + non-triviality check.
void CheckDecisionInvariants(Cluster& cluster,
                             const std::set<uint64_t>& submitted_ids) {
  std::map<SlotId, uint64_t> canonical;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const auto& [slot, value] : cluster.replica(n)->decided()) {
      auto [it, inserted] = canonical.emplace(slot, value.id);
      ASSERT_EQ(it->second, value.id)
          << "agreement violated at node " << n << " slot " << slot;
      if (!value.is_noop()) {
        ASSERT_TRUE(submitted_ids.count(value.id) > 0)
            << "non-triviality violated: decided unknown value " << value.id;
      }
    }
  }
}

class SafetyPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(SafetyPropertyTest, ConcurrentProposersUnderMessageLoss) {
  ClusterOptions options;
  options.seed = GetParam().seed;
  options.transport.drop_probability = 0.10;
  options.transport.max_jitter = 20 * kMillisecond;
  options.replica.le_timeout = 800 * kMillisecond;
  options.replica.propose_timeout = 400 * kMillisecond;
  options.replica.max_le_attempts = 10;
  Cluster cluster(Topology::AwsSevenZones(), GetParam().mode, options);
  Rng rng(GetParam().seed * 7919 + 13);

  std::set<uint64_t> submitted;
  uint64_t next_id = 0;
  // Fire submissions at random nodes at random times; dueling proposers
  // preempt each other constantly.
  for (int wave = 0; wave < 8; ++wave) {
    const int submitters = 1 + static_cast<int>(rng.NextBounded(3));
    for (int s = 0; s < submitters; ++s) {
      const NodeId node = static_cast<NodeId>(
          rng.NextBounded(cluster.topology().num_nodes()));
      const uint64_t id = ++next_id;
      submitted.insert(id);
      cluster.replica(node)->Submit(Value::Synthetic(id, 256),
                                    [](const Status&, SlotId, Duration) {});
    }
    cluster.sim().RunFor(rng.NextBounded(2 * kSecond));
  }
  cluster.sim().RunFor(30 * kSecond);
  CheckDecisionInvariants(cluster, submitted);
}

TEST_P(SafetyPropertyTest, RandomCrashesAndRecoveries) {
  ClusterOptions options;
  options.seed = GetParam().seed + 1000;
  options.replica.le_timeout = 800 * kMillisecond;
  options.replica.propose_timeout = 400 * kMillisecond;
  options.replica.max_le_attempts = 8;
  options.replica.num_intents = 2;
  Cluster cluster(Topology::AwsSevenZones(), GetParam().mode, options);
  Rng rng(GetParam().seed * 104729 + 7);

  std::set<uint64_t> submitted;
  uint64_t next_id = 0;
  std::set<NodeId> crashed;
  for (int wave = 0; wave < 10; ++wave) {
    // Crash/recover random nodes, never exceeding fd per zone.
    const NodeId victim = static_cast<NodeId>(
        rng.NextBounded(cluster.topology().num_nodes()));
    if (crashed.count(victim) > 0) {
      cluster.transport().Recover(victim);
      crashed.erase(victim);
    } else {
      // Respect the fault model: at most one down node per zone.
      const ZoneId vz = cluster.topology().ZoneOf(victim);
      bool zone_has_crash = false;
      for (NodeId c : crashed) {
        if (cluster.topology().ZoneOf(c) == vz) zone_has_crash = true;
      }
      if (!zone_has_crash) {
        cluster.transport().Crash(victim);
        crashed.insert(victim);
      }
    }
    // Submit from a healthy node.
    NodeId node;
    do {
      node = static_cast<NodeId>(
          rng.NextBounded(cluster.topology().num_nodes()));
    } while (crashed.count(node) > 0);
    const uint64_t id = ++next_id;
    submitted.insert(id);
    cluster.replica(node)->Submit(Value::Synthetic(id, 256),
                                  [](const Status&, SlotId, Duration) {});
    cluster.sim().RunFor(rng.NextBounded(3 * kSecond));
  }
  for (NodeId c : crashed) cluster.transport().Recover(c);
  cluster.sim().RunFor(30 * kSecond);
  CheckDecisionInvariants(cluster, submitted);
}

TEST_P(SafetyPropertyTest, LivenessAfterChaosQuiets) {
  // After the network stabilizes, some node can still commit new values.
  ClusterOptions options;
  options.seed = GetParam().seed + 2000;
  options.transport.drop_probability = 0.3;
  options.replica.le_timeout = 600 * kMillisecond;
  options.replica.propose_timeout = 300 * kMillisecond;
  Cluster cluster(Topology::AwsSevenZones(), GetParam().mode, options);
  Rng rng(GetParam().seed + 5);

  std::set<uint64_t> submitted;
  for (uint64_t id = 1; id <= 5; ++id) {
    submitted.insert(id);
    const NodeId node =
        static_cast<NodeId>(rng.NextBounded(cluster.topology().num_nodes()));
    cluster.replica(node)->Submit(Value::Synthetic(id, 128),
                                  [](const Status&, SlotId, Duration) {});
    cluster.sim().RunFor(500 * kMillisecond);
  }
  cluster.sim().RunFor(20 * kSecond);
  cluster.transport().set_drop_probability(0.0);

  submitted.insert(777);
  Result<Duration> r =
      cluster.Commit(cluster.NodeInZone(1, 0), Value::Synthetic(777, 128));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  CheckDecisionInvariants(cluster, submitted);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, SafetyPropertyTest,
    ::testing::Values(
        Param{ProtocolMode::kMultiPaxos, 1}, Param{ProtocolMode::kMultiPaxos, 2},
        Param{ProtocolMode::kFlexiblePaxos, 1},
        Param{ProtocolMode::kFlexiblePaxos, 2},
        Param{ProtocolMode::kDelegate, 1}, Param{ProtocolMode::kDelegate, 2},
        Param{ProtocolMode::kDelegate, 3}, Param{ProtocolMode::kLeaderZone, 1},
        Param{ProtocolMode::kLeaderZone, 2},
        Param{ProtocolMode::kLeaderZone, 3},
        Param{ProtocolMode::kLeaderZone, 4}),
    ParamName);

}  // namespace
}  // namespace dpaxos
