// Unit tests for the cluster topology (zones, node layout, RTT matrix).
#include <gtest/gtest.h>

#include "net/topology.h"

namespace dpaxos {
namespace {

TEST(TopologyTest, AwsSevenZonesLayout) {
  const Topology topo = Topology::AwsSevenZones();
  EXPECT_EQ(topo.num_zones(), 7u);
  EXPECT_EQ(topo.num_nodes(), 21u);
  for (ZoneId z = 0; z < 7; ++z) EXPECT_EQ(topo.nodes_in_zone(z), 3u);
  EXPECT_EQ(topo.ZoneName(0), "California");
  EXPECT_EQ(topo.ZoneName(6), "Mumbai");
}

TEST(TopologyTest, AwsRttMatchesPaperTable1) {
  const Topology topo = Topology::AwsSevenZones();
  // Spot checks against Table 1 (milliseconds).
  EXPECT_EQ(topo.ZoneRtt(0, 1), FromMillis(19));    // California-Oregon
  EXPECT_EQ(topo.ZoneRtt(0, 6), FromMillis(249));   // California-Mumbai
  EXPECT_EQ(topo.ZoneRtt(3, 5), FromMillis(67));    // Tokyo-Singapore
  EXPECT_EQ(topo.ZoneRtt(2, 4), FromMillis(81));    // Virginia-Ireland
  EXPECT_EQ(topo.ZoneRtt(5, 6), FromMillis(58));    // Singapore-Mumbai
  // Intra-zone: the emulated 10 ms edge-node delay.
  EXPECT_EQ(topo.ZoneRtt(2, 2), FromMillis(10));
}

TEST(TopologyTest, RttIsSymmetricAndZeroOnSelf) {
  const Topology topo = Topology::AwsSevenZones();
  for (NodeId a = 0; a < topo.num_nodes(); ++a) {
    EXPECT_EQ(topo.Rtt(a, a), 0u);
    for (NodeId b = 0; b < topo.num_nodes(); ++b) {
      EXPECT_EQ(topo.Rtt(a, b), topo.Rtt(b, a));
      EXPECT_EQ(topo.OneWayDelay(a, b), topo.Rtt(a, b) / 2);
    }
  }
}

TEST(TopologyTest, ZoneOfAssignsDensely) {
  const Topology topo = Topology::AwsSevenZones();
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(topo.ZoneOf(n), n / 3);
  }
}

TEST(TopologyTest, NodesInZone) {
  const Topology topo = Topology::AwsSevenZones();
  EXPECT_EQ(topo.NodesInZone(0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(topo.NodesInZone(6), (std::vector<NodeId>{18, 19, 20}));
  EXPECT_EQ(topo.AllNodes().size(), 21u);
}

TEST(TopologyTest, ZonesByProximityFromCalifornia) {
  const Topology topo = Topology::AwsSevenZones();
  // C(0) O(19) V(62) T(113) I(134) S(183) M(249).
  EXPECT_EQ(topo.ZonesByProximity(0),
            (std::vector<ZoneId>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(TopologyTest, ZonesByProximityFromMumbai) {
  const Topology topo = Topology::AwsSevenZones();
  // M(0) S(58) I(120) T(124) V(182) O(221) C(249).
  EXPECT_EQ(topo.ZonesByProximity(6),
            (std::vector<ZoneId>{6, 5, 4, 3, 2, 1, 0}));
}

TEST(TopologyTest, UniformTopology) {
  const Topology topo = Topology::Uniform(5, 4, 100.0, 5.0);
  EXPECT_EQ(topo.num_zones(), 5u);
  EXPECT_EQ(topo.num_nodes(), 20u);
  EXPECT_EQ(topo.ZoneRtt(1, 3), FromMillis(100));
  EXPECT_EQ(topo.ZoneRtt(2, 2), FromMillis(5));
}

TEST(TopologyTest, UnevenZoneSizes) {
  TopologyConfig config;
  config.nodes_per_zone = {2, 5, 3};
  config.zone_rtt_ms = {{0, 10, 20}, {10, 0, 30}, {20, 30, 0}};
  Result<Topology> topo = Topology::Create(config);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_nodes(), 10u);
  EXPECT_EQ(topo->ZoneOf(1), 0u);
  EXPECT_EQ(topo->ZoneOf(2), 1u);
  EXPECT_EQ(topo->ZoneOf(6), 1u);
  EXPECT_EQ(topo->ZoneOf(7), 2u);
  EXPECT_EQ(topo->NodesInZone(1), (std::vector<NodeId>{2, 3, 4, 5, 6}));
}

TEST(TopologyTest, FromRttCsvWithNames) {
  const std::string csv =
      "# measured matrix\n"
      "east, 0, 40, 90\n"
      "west, 40, 0, 70\n"
      "apac, 90, 70, 0\n";
  Result<Topology> topo = Topology::FromRttCsv(csv, 3, 5.0);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  EXPECT_EQ(topo->num_zones(), 3u);
  EXPECT_EQ(topo->num_nodes(), 9u);
  EXPECT_EQ(topo->ZoneName(0), "east");
  EXPECT_EQ(topo->ZoneName(2), "apac");
  EXPECT_EQ(topo->ZoneRtt(0, 2), FromMillis(90));
  EXPECT_EQ(topo->ZoneRtt(1, 1), FromMillis(5.0));
}

TEST(TopologyTest, FromRttCsvWithoutNames) {
  Result<Topology> topo =
      Topology::FromRttCsv("0,25\n25,0\n", 3);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->ZoneName(0), "zone0");
  EXPECT_EQ(topo->ZoneRtt(0, 1), FromMillis(25));
}

TEST(TopologyTest, FromRttCsvRejectsMalformedInput) {
  EXPECT_FALSE(Topology::FromRttCsv("", 3).ok());
  EXPECT_FALSE(Topology::FromRttCsv("0,1\n2,0\n", 3).ok());  // asymmetric
  EXPECT_FALSE(Topology::FromRttCsv("0,1,2\n1,0\n", 3).ok());  // ragged
  EXPECT_FALSE(Topology::FromRttCsv("a,b\nc,d\n", 3).ok());  // names only
}

TEST(TopologyTest, CreateRejectsEmptyTopology) {
  TopologyConfig config;
  EXPECT_FALSE(Topology::Create(config).ok());
}

TEST(TopologyTest, CreateRejectsEmptyZone) {
  TopologyConfig config;
  config.nodes_per_zone = {3, 0};
  config.zone_rtt_ms = {{0, 10}, {10, 0}};
  EXPECT_FALSE(Topology::Create(config).ok());
}

TEST(TopologyTest, CreateRejectsAsymmetricRtt) {
  TopologyConfig config;
  config.nodes_per_zone = {1, 1};
  config.zone_rtt_ms = {{0, 10}, {20, 0}};
  EXPECT_FALSE(Topology::Create(config).ok());
}

TEST(TopologyTest, CreateRejectsNonSquareMatrix) {
  TopologyConfig config;
  config.nodes_per_zone = {1, 1};
  config.zone_rtt_ms = {{0, 10}};
  EXPECT_FALSE(Topology::Create(config).ok());
}

TEST(TopologyTest, CreateRejectsNegativeRtt) {
  TopologyConfig config;
  config.nodes_per_zone = {1, 1};
  config.zone_rtt_ms = {{0, -1}, {-1, 0}};
  EXPECT_FALSE(Topology::Create(config).ok());
}

}  // namespace
}  // namespace dpaxos
