// Unit tests for the simulated transport: delivery latency composition,
// NIC egress serialization, WAN link caps, failure injection, stats.
#include <gtest/gtest.h>

#include <vector>

#include "net/transport.h"

namespace dpaxos {
namespace {

struct TestMsg final : Message {
  explicit TestMsg(uint64_t size, int tag = 0) : size_bytes(size), tag(tag) {}
  uint64_t size_bytes;
  int tag;
  uint64_t SizeBytes() const override { return size_bytes; }
  const char* TypeName() const override { return "test"; }
};

struct Delivery {
  NodeId from;
  Timestamp at;
  int tag;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : topo_(Topology::Uniform(3, 3, 100.0, 10.0)), sim_(7) {}

  SimTransport MakeTransport(SimTransportOptions options) {
    return SimTransport(&sim_, &topo_, options);
  }

  void Record(SimTransport& t, NodeId node) {
    t.RegisterHandler(node, [this, node](NodeId from, const MessagePtr& m) {
      deliveries_.push_back(Delivery{
          from, sim_.Now(), static_cast<const TestMsg*>(m.get())->tag});
      (void)node;
    });
  }

  Topology topo_;
  Simulator sim_;
  std::vector<Delivery> deliveries_;
};

TEST_F(TransportTest, DeliveryLatencyComposition) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 1'000'000;  // 1 MB/s
  options.inter_zone_link_bytes_per_sec = 0;
  options.processing_delay = 500;
  SimTransport t = MakeTransport(options);
  Record(t, 3);  // zone 1

  // 1000 bytes at 1 MB/s = 1000 us egress; one-way 50 ms; +500 us proc.
  t.Send(0, 3, std::make_shared<TestMsg>(1000));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].at, 1000u + 50'000u + 500u);
}

TEST_F(TransportTest, EgressSerializesBackToBack) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 1'000'000;
  options.inter_zone_link_bytes_per_sec = 0;
  options.processing_delay = 0;
  SimTransport t = MakeTransport(options);
  Record(t, 3);
  Record(t, 4);

  // Two 1000-byte messages: the second waits for the first on the NIC.
  t.Send(0, 3, std::make_shared<TestMsg>(1000, 1));
  t.Send(0, 4, std::make_shared<TestMsg>(1000, 2));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(deliveries_[0].at, 1000u + 50'000u);
  EXPECT_EQ(deliveries_[1].at, 2000u + 50'000u);
}

TEST_F(TransportTest, WanLinkCapsCrossZoneOnly) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 0;  // isolate the link model
  options.inter_zone_link_bytes_per_sec = 100'000;  // 100 KB/s
  options.processing_delay = 0;
  SimTransport t = MakeTransport(options);
  Record(t, 1);  // same zone as sender 0
  Record(t, 3);  // different zone

  t.Send(0, 1, std::make_shared<TestMsg>(100'000, 1));  // intra: no cap
  t.Send(0, 3, std::make_shared<TestMsg>(100'000, 2));  // inter: 1 s transfer
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(deliveries_[0].at, 5'000u);                 // half of 10 ms
  EXPECT_EQ(deliveries_[1].at, 1'000'000u + 50'000u);
}

TEST_F(TransportTest, WanLinkIsFifoPerDirectedLink) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 0;
  options.inter_zone_link_bytes_per_sec = 100'000;
  options.processing_delay = 0;
  SimTransport t = MakeTransport(options);
  Record(t, 3);
  Record(t, 6);

  // Two transfers on the same link queue; a different link is unaffected.
  t.Send(0, 3, std::make_shared<TestMsg>(100'000, 1));
  t.Send(0, 3, std::make_shared<TestMsg>(100'000, 2));
  t.Send(0, 6, std::make_shared<TestMsg>(100'000, 3));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 3u);
  // tags 1 and 3 after 1 s transfer; tag 2 queued behind tag 1.
  Timestamp t1 = 0, t2 = 0, t3 = 0;
  for (const Delivery& d : deliveries_) {
    if (d.tag == 1) t1 = d.at;
    if (d.tag == 2) t2 = d.at;
    if (d.tag == 3) t3 = d.at;
  }
  EXPECT_EQ(t1, 1'050'000u);
  EXPECT_EQ(t2, 2'050'000u);
  EXPECT_EQ(t3, 1'050'000u);
}

TEST_F(TransportTest, LoopbackIsFastAndImmuneToDrops) {
  SimTransportOptions options;
  options.drop_probability = 1.0;
  options.loopback_delay = 50;
  SimTransport t = MakeTransport(options);
  Record(t, 0);
  t.Send(0, 0, std::make_shared<TestMsg>(1000));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].at, 50u);
}

TEST_F(TransportTest, DropsLoseMessages) {
  SimTransportOptions options;
  options.drop_probability = 1.0;
  SimTransport t = MakeTransport(options);
  Record(t, 3);
  for (int i = 0; i < 10; ++i) t.Send(0, 3, std::make_shared<TestMsg>(100));
  sim_.RunUntilIdle();
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(t.StatsFor(0).messages_dropped, 10u);
}

TEST_F(TransportTest, CrashedNodeNeitherSendsNorReceives) {
  SimTransport t = MakeTransport({});
  Record(t, 0);
  Record(t, 3);
  t.Crash(3);
  EXPECT_TRUE(t.IsCrashed(3));
  t.Send(0, 3, std::make_shared<TestMsg>(100, 1));  // lost at delivery
  t.Send(3, 0, std::make_shared<TestMsg>(100, 2));  // never leaves
  sim_.RunUntilIdle();
  EXPECT_TRUE(deliveries_.empty());

  t.Recover(3);
  t.Send(0, 3, std::make_shared<TestMsg>(100, 3));
  sim_.RunUntilIdle();
  EXPECT_EQ(deliveries_.size(), 1u);
}

TEST_F(TransportTest, InFlightMessagesDieWithCrashAtDelivery) {
  SimTransport t = MakeTransport({});
  Record(t, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100));
  // Crash while the message is in flight: it is dropped on arrival.
  sim_.RunFor(1000);
  t.Crash(3);
  sim_.RunUntilIdle();
  EXPECT_TRUE(deliveries_.empty());
}

TEST_F(TransportTest, PartitionIsDirectional) {
  SimTransport t = MakeTransport({});
  Record(t, 0);
  Record(t, 3);
  t.PartitionOneWay(0, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100, 1));  // cut
  t.Send(3, 0, std::make_shared<TestMsg>(100, 2));  // open
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].tag, 2);
}

TEST_F(TransportTest, HealRestoresLinks) {
  SimTransport t = MakeTransport({});
  Record(t, 3);
  t.Partition(0, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100, 1));
  t.Heal(0, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100, 2));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].tag, 2);
}

TEST_F(TransportTest, StatsCountMessagesAndBytes) {
  SimTransport t = MakeTransport({});
  Record(t, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100));
  t.Send(0, 3, std::make_shared<TestMsg>(200));
  sim_.RunUntilIdle();
  EXPECT_EQ(t.StatsFor(0).messages_sent, 2u);
  EXPECT_EQ(t.StatsFor(0).bytes_sent, 300u);
  EXPECT_EQ(t.TotalBytesSent(), 300u);
}

TEST_F(TransportTest, JitterAddsBoundedDelay) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 0;
  options.processing_delay = 0;
  options.inter_zone_link_bytes_per_sec = 0;
  options.max_jitter = 5'000;
  SimTransport t = MakeTransport(options);
  Record(t, 3);
  for (int i = 0; i < 50; ++i) t.Send(0, 3, std::make_shared<TestMsg>(10));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 50u);
  bool saw_jitter = false;
  for (const Delivery& d : deliveries_) {
    EXPECT_GE(d.at, 50'000u);
    EXPECT_LE(d.at, 55'000u);
    if (d.at != 50'000u) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);
}

}  // namespace
}  // namespace dpaxos
