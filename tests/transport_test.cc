// Unit tests for the transport layer: the simulated transport (delivery
// latency composition, NIC egress serialization, WAN link caps, failure
// injection, stats) and the TCP transport's conformance to the
// Transport::Send delivery contract over real loopback sockets.
#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/tcp/event_loop.h"
#include "net/tcp/framing.h"
#include "net/tcp/reactor_pool.h"
#include "net/tcp/socket_util.h"
#include "net/tcp/tcp_transport.h"
#include "net/transport.h"

namespace dpaxos {
namespace {

struct TestMsg final : Message {
  explicit TestMsg(uint64_t size, int tag = 0) : size_bytes(size), tag(tag) {}
  uint64_t size_bytes;
  int tag;
  uint64_t SizeBytes() const override { return size_bytes; }
  const char* TypeName() const override { return "test"; }
};

struct Delivery {
  NodeId from;
  Timestamp at;
  int tag;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : topo_(Topology::Uniform(3, 3, 100.0, 10.0)), sim_(7) {}

  SimTransport MakeTransport(SimTransportOptions options) {
    return SimTransport(&sim_, &topo_, options);
  }

  void Record(SimTransport& t, NodeId node) {
    t.RegisterHandler(node, [this, node](NodeId from, const MessagePtr& m) {
      deliveries_.push_back(Delivery{
          from, sim_.Now(), static_cast<const TestMsg*>(m.get())->tag});
      (void)node;
    });
  }

  Topology topo_;
  Simulator sim_;
  std::vector<Delivery> deliveries_;
};

TEST_F(TransportTest, DeliveryLatencyComposition) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 1'000'000;  // 1 MB/s
  options.inter_zone_link_bytes_per_sec = 0;
  options.processing_delay = 500;
  SimTransport t = MakeTransport(options);
  Record(t, 3);  // zone 1

  // 1000 bytes at 1 MB/s = 1000 us egress; one-way 50 ms; +500 us proc.
  t.Send(0, 3, std::make_shared<TestMsg>(1000));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].at, 1000u + 50'000u + 500u);
}

TEST_F(TransportTest, EgressSerializesBackToBack) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 1'000'000;
  options.inter_zone_link_bytes_per_sec = 0;
  options.processing_delay = 0;
  SimTransport t = MakeTransport(options);
  Record(t, 3);
  Record(t, 4);

  // Two 1000-byte messages: the second waits for the first on the NIC.
  t.Send(0, 3, std::make_shared<TestMsg>(1000, 1));
  t.Send(0, 4, std::make_shared<TestMsg>(1000, 2));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(deliveries_[0].at, 1000u + 50'000u);
  EXPECT_EQ(deliveries_[1].at, 2000u + 50'000u);
}

TEST_F(TransportTest, WanLinkCapsCrossZoneOnly) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 0;  // isolate the link model
  options.inter_zone_link_bytes_per_sec = 100'000;  // 100 KB/s
  options.processing_delay = 0;
  SimTransport t = MakeTransport(options);
  Record(t, 1);  // same zone as sender 0
  Record(t, 3);  // different zone

  t.Send(0, 1, std::make_shared<TestMsg>(100'000, 1));  // intra: no cap
  t.Send(0, 3, std::make_shared<TestMsg>(100'000, 2));  // inter: 1 s transfer
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(deliveries_[0].at, 5'000u);                 // half of 10 ms
  EXPECT_EQ(deliveries_[1].at, 1'000'000u + 50'000u);
}

TEST_F(TransportTest, WanLinkIsFifoPerDirectedLink) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 0;
  options.inter_zone_link_bytes_per_sec = 100'000;
  options.processing_delay = 0;
  SimTransport t = MakeTransport(options);
  Record(t, 3);
  Record(t, 6);

  // Two transfers on the same link queue; a different link is unaffected.
  t.Send(0, 3, std::make_shared<TestMsg>(100'000, 1));
  t.Send(0, 3, std::make_shared<TestMsg>(100'000, 2));
  t.Send(0, 6, std::make_shared<TestMsg>(100'000, 3));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 3u);
  // tags 1 and 3 after 1 s transfer; tag 2 queued behind tag 1.
  Timestamp t1 = 0, t2 = 0, t3 = 0;
  for (const Delivery& d : deliveries_) {
    if (d.tag == 1) t1 = d.at;
    if (d.tag == 2) t2 = d.at;
    if (d.tag == 3) t3 = d.at;
  }
  EXPECT_EQ(t1, 1'050'000u);
  EXPECT_EQ(t2, 2'050'000u);
  EXPECT_EQ(t3, 1'050'000u);
}

TEST_F(TransportTest, LoopbackIsFastAndImmuneToDrops) {
  SimTransportOptions options;
  options.drop_probability = 1.0;
  options.loopback_delay = 50;
  SimTransport t = MakeTransport(options);
  Record(t, 0);
  t.Send(0, 0, std::make_shared<TestMsg>(1000));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].at, 50u);
}

TEST_F(TransportTest, DropsLoseMessages) {
  SimTransportOptions options;
  options.drop_probability = 1.0;
  SimTransport t = MakeTransport(options);
  Record(t, 3);
  for (int i = 0; i < 10; ++i) t.Send(0, 3, std::make_shared<TestMsg>(100));
  sim_.RunUntilIdle();
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(t.StatsFor(0).messages_dropped, 10u);
}

TEST_F(TransportTest, CrashedNodeNeitherSendsNorReceives) {
  SimTransport t = MakeTransport({});
  Record(t, 0);
  Record(t, 3);
  t.Crash(3);
  EXPECT_TRUE(t.IsCrashed(3));
  t.Send(0, 3, std::make_shared<TestMsg>(100, 1));  // lost at delivery
  t.Send(3, 0, std::make_shared<TestMsg>(100, 2));  // never leaves
  sim_.RunUntilIdle();
  EXPECT_TRUE(deliveries_.empty());

  t.Recover(3);
  t.Send(0, 3, std::make_shared<TestMsg>(100, 3));
  sim_.RunUntilIdle();
  EXPECT_EQ(deliveries_.size(), 1u);
}

TEST_F(TransportTest, InFlightMessagesDieWithCrashAtDelivery) {
  SimTransport t = MakeTransport({});
  Record(t, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100));
  // Crash while the message is in flight: it is dropped on arrival.
  sim_.RunFor(1000);
  t.Crash(3);
  sim_.RunUntilIdle();
  EXPECT_TRUE(deliveries_.empty());
}

TEST_F(TransportTest, PartitionIsDirectional) {
  SimTransport t = MakeTransport({});
  Record(t, 0);
  Record(t, 3);
  t.PartitionOneWay(0, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100, 1));  // cut
  t.Send(3, 0, std::make_shared<TestMsg>(100, 2));  // open
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].tag, 2);
}

TEST_F(TransportTest, HealRestoresLinks) {
  SimTransport t = MakeTransport({});
  Record(t, 3);
  t.Partition(0, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100, 1));
  t.Heal(0, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100, 2));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].tag, 2);
}

TEST_F(TransportTest, StatsCountMessagesAndBytes) {
  SimTransport t = MakeTransport({});
  Record(t, 3);
  t.Send(0, 3, std::make_shared<TestMsg>(100));
  t.Send(0, 3, std::make_shared<TestMsg>(200));
  sim_.RunUntilIdle();
  EXPECT_EQ(t.StatsFor(0).messages_sent, 2u);
  EXPECT_EQ(t.StatsFor(0).bytes_sent, 300u);
  EXPECT_EQ(t.TotalBytesSent(), 300u);
}

TEST_F(TransportTest, JitterAddsBoundedDelay) {
  SimTransportOptions options;
  options.egress_bytes_per_sec = 0;
  options.processing_delay = 0;
  options.inter_zone_link_bytes_per_sec = 0;
  options.max_jitter = 5'000;
  SimTransport t = MakeTransport(options);
  Record(t, 3);
  for (int i = 0; i < 50; ++i) t.Send(0, 3, std::make_shared<TestMsg>(10));
  sim_.RunUntilIdle();
  ASSERT_EQ(deliveries_.size(), 50u);
  bool saw_jitter = false;
  for (const Delivery& d : deliveries_) {
    EXPECT_GE(d.at, 50'000u);
    EXPECT_LE(d.at, 55'000u);
    if (d.at != 50'000u) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);
}

// --- TcpTransport: the Transport::Send contract over real sockets ------
//
// Two transports share one EventLoop (separate processes are covered by
// real_cluster_test); a trivial 16-byte codec stands in for the protocol
// wire format, since the net layer is codec-agnostic.

class TcpTransportTest : public ::testing::Test {
 protected:
  static constexpr Duration kWait = 5 * kSecond;

  void SetUp() override {
    // Loopback sockets can be unavailable in exotic sandboxes; skip
    // instead of failing the tier-1 lane.
    Result<int> probe = OpenListener(HostPort{"127.0.0.1", 0}, 1);
    if (!probe.ok()) {
      GTEST_SKIP() << "loopback unavailable: " << probe.status().ToString();
    }
    close(probe.value());
  }

  static void InstallCodec(TcpTransport& t) {
    t.set_wire_codec(
        [](const Message& m, std::string* out) {
          const TestMsg& msg = static_cast<const TestMsg&>(m);
          const uint64_t fields[2] = {msg.size_bytes,
                                      static_cast<uint64_t>(msg.tag)};
          out->append(reinterpret_cast<const char*>(fields), sizeof(fields));
        },
        [](std::string_view bytes) -> MessagePtr {
          if (bytes.size() != 16) return nullptr;
          uint64_t fields[2];
          memcpy(fields, bytes.data(), sizeof(fields));
          return std::make_shared<TestMsg>(fields[0],
                                           static_cast<int>(fields[1]));
        });
  }

  // Builds a connected pair of transports on `loop` and records node 1's
  // deliveries into `received`.
  struct Pair {
    std::unique_ptr<TcpTransport> a;  // node 0
    std::unique_ptr<TcpTransport> b;  // node 1
  };

  Pair MakePair(EventLoop& loop, std::vector<std::pair<NodeId, int>>* received,
                TcpTransportOptions options = {}) {
    const std::vector<HostPort> any = {HostPort{"127.0.0.1", 0},
                                       HostPort{"127.0.0.1", 0}};
    Pair pair;
    pair.a = std::make_unique<TcpTransport>(&loop, 0, any, options);
    pair.b = std::make_unique<TcpTransport>(&loop, 1, any, options);
    InstallCodec(*pair.a);
    InstallCodec(*pair.b);
    EXPECT_TRUE(pair.a->Listen().ok());
    EXPECT_TRUE(pair.b->Listen().ok());
    pair.a->UpdatePeerAddress(1, HostPort{"127.0.0.1", pair.b->listen_port()});
    pair.b->UpdatePeerAddress(0, HostPort{"127.0.0.1", pair.a->listen_port()});
    pair.b->RegisterHandler(1, [received](NodeId from, const MessagePtr& m) {
      received->emplace_back(from,
                             static_cast<const TestMsg*>(m.get())->tag);
    });
    return pair;
  }
};

TEST_F(TcpTransportTest, DeliversTaggedMessagesWithSenderIdentity) {
  EventLoop loop(11);
  std::vector<std::pair<NodeId, int>> received;
  Pair pair = MakePair(loop, &received);
  for (int tag = 0; tag < 100; ++tag) {
    pair.a->Send(0, 1, std::make_shared<TestMsg>(64, tag));
  }
  ASSERT_TRUE(loop.RunUntil([&] { return received.size() >= 100; }, kWait));
  // A healthy single connection delivers everything, in order, from the
  // right sender.
  ASSERT_EQ(received.size(), 100u);
  for (int tag = 0; tag < 100; ++tag) {
    EXPECT_EQ(received[tag].first, 0u);
    EXPECT_EQ(received[tag].second, tag);
  }
  EXPECT_GT(pair.a->stats().bytes_out, 0u);
  EXPECT_GT(pair.b->stats().bytes_in, 0u);
}

TEST_F(TcpTransportTest, SelfSendDeliversAsynchronously) {
  EventLoop loop(12);
  std::vector<std::pair<NodeId, int>> received_b;
  Pair pair = MakePair(loop, &received_b);
  std::vector<int> self_tags;
  pair.a->RegisterHandler(0, [&](NodeId from, const MessagePtr& m) {
    EXPECT_EQ(from, 0u);
    self_tags.push_back(static_cast<const TestMsg*>(m.get())->tag);
  });
  pair.a->Send(0, 0, std::make_shared<TestMsg>(8, 7));
  EXPECT_TRUE(self_tags.empty());  // never reentrant into the handler
  ASSERT_TRUE(loop.RunUntil([&] { return !self_tags.empty(); }, kWait));
  EXPECT_EQ(self_tags, std::vector<int>({7}));
}

// The heart of the contract test: under repeated forced disconnects the
// transport may drop and may reorder across the breaks, but every
// delivered message was sent (no invention, sender intact) and traffic
// eventually resumes (reconnects work).
TEST_F(TcpTransportTest, ForcedDisconnectsStayWithinSendContract) {
  EventLoop loop(13);
  std::vector<std::pair<NodeId, int>> received;
  TcpTransportOptions options;
  options.reconnect_backoff_base = 5 * kMillisecond;
  Pair pair = MakePair(loop, &received, options);

  std::set<int> sent;
  int next_tag = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 20; ++i) {
      pair.a->Send(0, 1, std::make_shared<TestMsg>(64, next_tag));
      sent.insert(next_tag++);
    }
    // Let some traffic move, then hard-kill every socket on both sides
    // mid-stream (half-written frames die with the connection).
    loop.RunUntil([&] { return false; }, 5 * kMillisecond);
    pair.a->CloseAllConnections();
    pair.b->CloseAllConnections();
  }
  // After the last break, delivery must RESUME: new sends arrive once
  // the redial succeeds.
  const size_t before_final = received.size();
  (void)before_final;
  for (int i = 0; i < 20; ++i) {
    pair.a->Send(0, 1, std::make_shared<TestMsg>(64, next_tag));
    sent.insert(next_tag++);
  }
  const int final_tag = next_tag - 1;
  ASSERT_TRUE(loop.RunUntil(
      [&] {
        for (const auto& [from, tag] : received) {
          if (tag == final_tag) return true;
        }
        return false;
      },
      kWait))
      << "delivery never resumed after forced disconnects";

  // Contract: no invention, no mislabeled sender. (Duplicates and drops
  // are both allowed, so neither count nor order is asserted.)
  for (const auto& [from, tag] : received) {
    EXPECT_EQ(from, 0u);
    EXPECT_TRUE(sent.count(tag)) << "delivered tag " << tag << " never sent";
  }
  EXPECT_GT(pair.a->stats().reconnects, 0u);
}

TEST_F(TcpTransportTest, OverflowEvictsOldestWithoutBlocking) {
  EventLoop loop(14);
  std::vector<std::pair<NodeId, int>> received;
  TcpTransportOptions options;
  options.max_queued_frames = 4;
  // Long backoff so nothing connects during the test: the peer address
  // is a reserved-but-unbound port.
  options.reconnect_backoff_base = 10 * kSecond;
  const std::vector<HostPort> any = {HostPort{"127.0.0.1", 0},
                                     HostPort{"127.0.0.1", 0}};
  TcpTransport a(&loop, 0, any, options);
  InstallCodec(a);
  ASSERT_TRUE(a.Listen().ok());
  Result<std::vector<uint16_t>> dead_port = PickFreeLoopbackPorts(1);
  ASSERT_TRUE(dead_port.ok());
  a.UpdatePeerAddress(1, HostPort{"127.0.0.1", dead_port->at(0)});

  for (int tag = 0; tag < 50; ++tag) {
    a.Send(0, 1, std::make_shared<TestMsg>(64, tag));
  }
  loop.RunUntil([&] { return false; }, 20 * kMillisecond);
  // 50 sends through a 4-deep queue: at least 46 evictions, newest kept.
  EXPECT_GE(a.stats().frames_dropped, 46u);
}

TEST_F(TcpTransportTest, CoalescesFramesWithoutReordering) {
  EventLoop loop(16);
  std::vector<std::pair<NodeId, int>> received;
  Pair pair = MakePair(loop, &received);
  // First message establishes the connection.
  pair.a->Send(0, 1, std::make_shared<TestMsg>(64, 0));
  ASSERT_TRUE(loop.RunUntil([&] { return received.size() >= 1; }, kWait));

  // Burst: everything below is staged before the flush timer fires, so
  // the whole batch moves in a handful of gather writes.
  for (int tag = 1; tag <= 200; ++tag) {
    pair.a->Send(0, 1, std::make_shared<TestMsg>(64, tag));
  }
  ASSERT_TRUE(loop.RunUntil([&] { return received.size() >= 201; }, kWait));

  // Determinism: coalescing must never reorder — the per-connection
  // queue is FIFO and iovecs preserve stage order.
  ASSERT_EQ(received.size(), 201u);
  for (int tag = 0; tag <= 200; ++tag) {
    EXPECT_EQ(received[tag].first, 0u);
    EXPECT_EQ(received[tag].second, tag);
  }
  const TcpTransportStats stats = pair.a->stats();
  EXPECT_GT(stats.frames_coalesced, 0u);
  EXPECT_LT(stats.writev_calls, stats.frames_out);
}

TEST_F(TcpTransportTest, SlowReaderPartialWritevResumes) {
  EventLoop loop(17);
  // Raw peer that reads only in small sips: the sender's socket buffer
  // fills mid-frame, forcing short writev results and EPOLLOUT
  // resumption across frame boundaries.
  Result<int> listener = OpenListener(HostPort{"127.0.0.1", 0}, 1);
  ASSERT_TRUE(listener.ok());
  Result<uint16_t> port = BoundPort(listener.value());
  ASSERT_TRUE(port.ok());

  const std::vector<HostPort> any = {HostPort{"127.0.0.1", 0},
                                     HostPort{"127.0.0.1", 0}};
  TcpTransport a(&loop, 0, any, {});
  // Pad each message to its declared size so single frames dwarf what one
  // writev can move into a full socket buffer.
  constexpr uint64_t kPad = 48 * 1024;
  a.set_wire_codec(
      [](const Message& m, std::string* out) {
        const TestMsg& msg = static_cast<const TestMsg&>(m);
        const uint64_t fields[2] = {msg.size_bytes,
                                    static_cast<uint64_t>(msg.tag)};
        out->append(reinterpret_cast<const char*>(fields), sizeof(fields));
        out->append(msg.size_bytes, 'x');
      },
      [](std::string_view) -> MessagePtr { return nullptr; });
  ASSERT_TRUE(a.Listen().ok());
  a.UpdatePeerAddress(1, HostPort{"127.0.0.1", port.value()});

  constexpr int kFrames = 64;
  for (int tag = 0; tag < kFrames; ++tag) {
    a.Send(0, 1, std::make_shared<TestMsg>(kPad, tag));
  }

  int peer_fd = -1;
  for (int i = 0; i < 200 && peer_fd < 0; ++i) {
    loop.RunUntil([&] { return false; }, 10 * kMillisecond);
    peer_fd = accept(listener.value(), nullptr, nullptr);
  }
  ASSERT_GE(peer_fd, 0);
  ASSERT_TRUE(SetNonBlocking(peer_fd).ok());

  // Drain in 4 KB sips interleaved with loop polls; every byte of every
  // frame must come out intact and in order.
  FrameDecoder decoder;
  std::vector<int> tags;
  bool saw_hello = false;
  for (int spin = 0;
       static_cast<int>(tags.size()) < kFrames && spin < 20000; ++spin) {
    loop.RunUntil([&] { return false; }, 1 * kMillisecond);
    char buf[4096];
    const ssize_t n = recv(peer_fd, buf, sizeof(buf), 0);
    if (n <= 0) continue;
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    std::string_view body;
    while (decoder.Pop(&body) == FrameDecoder::Next::kFrame) {
      ASSERT_FALSE(body.empty());
      if (!saw_hello) {
        EXPECT_EQ(static_cast<FrameType>(body[0]), FrameType::kHello);
        saw_hello = true;
        continue;
      }
      ASSERT_EQ(static_cast<FrameType>(body[0]), FrameType::kNodeMessage);
      ASSERT_EQ(body.size(), 1 + 16 + kPad);
      uint64_t fields[2];
      memcpy(fields, body.data() + 1, sizeof(fields));
      EXPECT_EQ(fields[0], kPad);
      tags.push_back(static_cast<int>(fields[1]));
      for (size_t i = 17; i < body.size(); i += 4097) {
        ASSERT_EQ(body[i], 'x') << "payload corrupted at offset " << i;
      }
    }
    ASSERT_FALSE(decoder.failed()) << decoder.error();
  }
  ASSERT_EQ(tags.size(), static_cast<size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) EXPECT_EQ(tags[i], i);
  // 3 MB through a never-empty queue cannot fit one syscall: the flush
  // path must have resumed after partial writes.
  EXPECT_GT(a.stats().writev_calls, 1u);
  close(peer_fd);
  close(listener.value());
}

TEST_F(TcpTransportTest, HostileLengthPrefixClosesConnectionNotProcess) {
  EventLoop loop(15);
  std::vector<std::pair<NodeId, int>> received;
  Pair pair = MakePair(loop, &received);

  // Raw client: claim a 4 GiB frame. The server must close the
  // connection and count it malformed — and keep serving others.
  Result<int> fd = StartConnect(
      HostPort{"127.0.0.1", pair.b->listen_port()});
  ASSERT_TRUE(fd.ok());
  loop.RunUntil([&] { return false; }, 10 * kMillisecond);
  const char hostile[4] = {'\xff', '\xff', '\xff', '\xff'};
  ASSERT_EQ(send(fd.value(), hostile, sizeof(hostile), MSG_NOSIGNAL), 4);
  ASSERT_TRUE(loop.RunUntil(
      [&] { return pair.b->stats().malformed_frames > 0; }, kWait));
  // The poisoned connection is gone; a legitimate peer still gets through.
  pair.a->Send(0, 1, std::make_shared<TestMsg>(64, 424242));
  ASSERT_TRUE(loop.RunUntil([&] { return !received.empty(); }, kWait));
  EXPECT_EQ(received.back().second, 424242);
  close(fd.value());
}

// --- ReactorPool: reply batching with a tunable flush delay ------------
//
// A nonzero reply_flush_delay holds each home round's replies open so
// later rounds can join the same writev window. The delay must never
// reorder or drop replies on a connection: this cell pushes a burst of
// client requests through a delayed pool and checks every reply comes
// back exactly once, in request order.
TEST_F(TcpTransportTest, ReactorPoolDelayedFlushPreservesReplyOrder) {
  constexpr int kRequests = 200;
  EventLoop home(16);
  ReactorPoolOptions options;
  options.reactors = 1;
  options.reply_flush_delay = 2 * kMillisecond;
  ReactorPool pool(&home, options);
  pool.set_node_message_handler([](NodeId, MessagePtr) {});
  pool.set_client_request_handler(
      [&](uint64_t token, uint64_t, const ClientRequest& req) {
        ClientReply reply;
        reply.request_id = req.request_id;
        reply.value = req.value;
        pool.SendClientReply(token, reply);
      });
  pool.Start();

  Result<int> listener = OpenListener(HostPort{"127.0.0.1", 0}, 4);
  ASSERT_TRUE(listener.ok());
  Result<uint16_t> port = BoundPort(listener.value());
  ASSERT_TRUE(port.ok());
  Result<int> client = StartConnect(HostPort{"127.0.0.1", port.value()});
  ASSERT_TRUE(client.ok());
  int server_fd = -1;
  ASSERT_TRUE(home.RunUntil(
      [&] {
        if (server_fd < 0) server_fd = accept(listener.value(), nullptr,
                                              nullptr);
        return server_fd >= 0;
      },
      kWait));
  ASSERT_TRUE(SetNonBlocking(server_fd).ok());
  SetNoDelay(server_fd);
  pool.Adopt(server_fd);

  // Client side: HELLO + the whole burst in one write.
  std::string outbound = EncodeHelloFrame(Hello{PeerKind::kClient, 7});
  for (int i = 1; i <= kRequests; ++i) {
    ClientRequest req;
    req.request_id = static_cast<uint64_t>(i);
    req.op = ClientOp::kPut;
    req.key = "k";
    req.value = "v" + std::to_string(i);
    outbound += EncodeClientRequestFrame(req);
  }
  size_t sent = 0;
  while (sent < outbound.size()) {
    const ssize_t n = send(client.value(), outbound.data() + sent,
                           outbound.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
    } else {
      home.RunUntil([] { return false; }, kMillisecond);
    }
  }

  // Collect replies on the home loop (the reactor runs on its own
  // thread; the flush timer needs the home loop spinning).
  FrameDecoder decoder;
  std::vector<uint64_t> reply_ids;
  ASSERT_TRUE(SetNonBlocking(client.value()).ok());
  ASSERT_TRUE(home.WatchFd(client.value(), EPOLLIN, [&](uint32_t) {
    char buf[16384];
    for (;;) {
      const ssize_t n = recv(client.value(), buf, sizeof(buf), 0);
      if (n <= 0) break;
      decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      std::string_view body;
      while (decoder.Pop(&body) == FrameDecoder::Next::kFrame) {
        Result<ClientReply> reply = ParseClientReply(body);
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        reply_ids.push_back(reply.value().request_id);
      }
    }
  }).ok());
  ASSERT_TRUE(home.RunUntil(
      [&] { return reply_ids.size() >= kRequests; }, kWait));

  ASSERT_EQ(reply_ids.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(reply_ids[i], static_cast<uint64_t>(i + 1));
  }
  const ReactorPoolStats stats = pool.stats();
  EXPECT_EQ(stats.frames_out, static_cast<uint64_t>(kRequests));
  home.UnwatchFd(client.value());
  pool.Stop();
  close(client.value());
  close(listener.value());
}

}  // namespace
}  // namespace dpaxos
