// Unit and fuzz tests for the transaction model and batch wire codec.
#include <gtest/gtest.h>

#include "common/random.h"
#include "txn/batch.h"
#include "txn/transaction.h"

namespace dpaxos {
namespace {

Transaction SampleTxn(uint64_t id) {
  Transaction txn;
  txn.id = id;
  txn.client_id = 1000 + id;
  txn.seq = id * 3 + 1;
  txn.ops = {Operation::Get("key0000000001"),
             Operation::Put("key0000000002", "forty-two"),
             Operation::Get("key0000000003")};
  return txn;
}

TEST(TransactionTest, ReadOnlyDetection) {
  Transaction ro;
  ro.ops = {Operation::Get("a"), Operation::Get("b")};
  EXPECT_TRUE(ro.read_only());
  Transaction rw = ro;
  rw.ops.push_back(Operation::Put("c", "v"));
  EXPECT_FALSE(rw.read_only());
  EXPECT_TRUE(Transaction{}.read_only());
}

TEST(TransactionTest, RoundTripSingle) {
  const std::vector<Transaction> batch{SampleTxn(7)};
  auto decoded = DecodeBatch(EncodeBatch(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), batch);
}

TEST(TransactionTest, RoundTripManyAndEmpty) {
  std::vector<Transaction> batch;
  for (uint64_t i = 0; i < 100; ++i) batch.push_back(SampleTxn(i));
  auto decoded = DecodeBatch(EncodeBatch(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), batch);

  auto empty = DecodeBatch(EncodeBatch({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(TransactionTest, RoundTripBinaryKeysAndValues) {
  Transaction txn;
  txn.id = ~0ull;
  std::string binary("\x00\x01\xff\x7f", 4);
  txn.ops = {Operation::Put(binary, binary), Operation::Get(std::string())};
  auto decoded = DecodeBatch(EncodeBatch({txn}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->at(0), txn);
}

TEST(TransactionTest, EncodedSizeMatchesWireBytes) {
  const Transaction txn = SampleTxn(1);
  EXPECT_EQ(EncodeBatch({txn}).size(), 4 + EncodedSize(txn));
}

TEST(TransactionTest, DecodeRejectsTruncation) {
  const std::string full = EncodeBatch({SampleTxn(1)});
  for (size_t cut = 0; cut < full.size(); ++cut) {
    auto r = DecodeBatch(full.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "accepted truncation at " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

TEST(TransactionTest, DecodeRejectsTrailingBytes) {
  std::string padded = EncodeBatch({SampleTxn(1)}) + "x";
  EXPECT_FALSE(DecodeBatch(padded).ok());
}

TEST(TransactionTest, DecodeRejectsBadOpKind) {
  std::string payload = EncodeBatch({SampleTxn(1)});
  // The op kind byte of the first op sits right after the batch header
  // (count) and the txn header (id, client_id, seq, opcount).
  payload[4 + 8 + 8 + 8 + 4] = 7;
  EXPECT_FALSE(DecodeBatch(payload).ok());
}

TEST(TransactionTest, DecodeFuzzNeverCrashes) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string garbage(rng.NextBounded(200), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next());
    auto r = DecodeBatch(garbage);  // must not crash or overflow
    if (r.ok()) {
      // Rare but legal: whatever decodes must re-encode identically.
      EXPECT_EQ(EncodeBatch(r.value()), garbage);
    }
  }
}

TEST(TransactionTest, MutationFuzzRoundTripOrReject) {
  Rng rng(7);
  const std::string base = EncodeBatch({SampleTxn(1), SampleTxn(2)});
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    mutated[rng.NextBounded(mutated.size())] ^=
        static_cast<char>(1 + rng.NextBounded(255));
    auto r = DecodeBatch(mutated);
    if (r.ok()) {
      EXPECT_EQ(EncodeBatch(r.value()), mutated);
    }
  }
}

TEST(BatchBuilderTest, EmitsAtByteTarget) {
  BatchBuilder builder(200);
  EXPECT_TRUE(builder.empty());
  int added = 0;
  while (!builder.Add(SampleTxn(static_cast<uint64_t>(added)))) ++added;
  EXPECT_GE(builder.pending_bytes(), 200u);
  const Value v = builder.Take(42);
  EXPECT_EQ(v.id, 42u);
  EXPECT_TRUE(builder.empty());
  EXPECT_EQ(builder.pending_bytes(), 0u);

  auto decoded = DecodeBatch(v.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), static_cast<size_t>(added) + 1);
}

TEST(BatchBuilderTest, ValueSizeMatchesPayload) {
  BatchBuilder builder(1);
  builder.Add(SampleTxn(1));
  const Value v = builder.Take(1);
  EXPECT_EQ(v.size_bytes, v.payload.size());
}

// The incremental encoder must be byte-identical to EncodeBatch over the
// same transactions, and its running byte count must match the sum of
// the per-transaction EncodedSize the budget check uses.
TEST(BatchBuilderTest, IncrementalEncodeMatchesEncodeBatch) {
  BatchBuilder builder(1 << 20);  // large target: nothing auto-emits
  std::vector<Transaction> reference;
  uint64_t expected_bytes = 0;
  for (uint64_t i = 0; i < 17; ++i) {
    Transaction txn = SampleTxn(i);
    if (i % 3 == 0) txn.ops.clear();  // empty-op transactions encode too
    expected_bytes += EncodedSize(txn);
    reference.push_back(txn);
    builder.Add(txn);
    EXPECT_EQ(builder.pending_bytes(), expected_bytes);
    EXPECT_EQ(builder.size(), reference.size());
  }
  const Value v = builder.Take(9);
  EXPECT_EQ(v.payload, EncodeBatch(reference));

  // The builder is reusable after Take and stays byte-compatible.
  EXPECT_TRUE(builder.empty());
  builder.Add(SampleTxn(99));
  EXPECT_EQ(builder.Take(10).payload,
            EncodeBatch({SampleTxn(99)}));
}

TEST(BatchBuilderTest, EmptyBatchMatchesEncodeBatch) {
  BatchBuilder builder(64);
  EXPECT_EQ(builder.Take(1).payload, EncodeBatch({}));
}

}  // namespace
}  // namespace dpaxos
