// Consistency between the bandwidth model's SizeBytes() estimates and
// the real serialized sizes: the estimate must never undercount the
// payload-bearing part (values dominate bandwidth) and must stay within
// the fixed header allowance overall.
#include <gtest/gtest.h>

#include "paxos/messages.h"
#include "paxos/wire.h"

namespace dpaxos {
namespace {

// The estimate includes kMessageHeaderBytes of framing allowance; the
// codec is leaner than that, so serialized <= estimate must always hold,
// and the estimate must not exceed serialized + header allowance + slack.
void CheckSize(const Message& msg) {
  const uint64_t estimated = msg.SizeBytes();
  const uint64_t actual = SerializeMessage(msg).size();
  EXPECT_LE(actual, estimated)
      << msg.TypeName() << ": wire bytes exceed the bandwidth estimate";
  EXPECT_LE(estimated, actual + kMessageHeaderBytes + 64)
      << msg.TypeName() << ": estimate wildly overshoots";
}

Intent BigIntent() {
  return Intent{Ballot{7, 2}, 2, {2, 3, 10, 11, 15, 16}};
}

TEST(WireSizeTest, AllMessageTypes) {
  const LeaderZoneView view{2, 1, 4};
  CheckSize(PrepareMsg(1, Ballot{5, 2}, 9, {BigIntent(), BigIntent()}, true,
                       view));
  {
    PromiseMsg m(1, Ballot{5, 2}, false);
    m.accepted.push_back(
        AcceptedEntry{3, Ballot{4, 1}, Value::Of(9, std::string(500, 'x'))});
    m.intents.push_back(BigIntent());
    m.lz_view = view;
    CheckSize(m);
  }
  {
    PrepareNackMsg m(1, Ballot{5, 2});
    m.promised = Ballot{6, 3};
    m.lease_until = 12345;
    CheckSize(m);
  }
  {
    ProposeMsg m(1, Ballot{5, 2}, 9, Value::Of(4, std::string(2048, 'p')));
    m.lease_request = true;
    m.lease_until = 999;
    CheckSize(m);
  }
  CheckSize(AcceptMsg(1, Ballot{5, 2}, 9));
  CheckSize(AcceptNackMsg(1, Ballot{5, 2}, 9, Ballot{6, 3}));
  CheckSize(DecideMsg(1, 9, Value::Of(4, std::string(128, 'd'))));
  CheckSize(HandoffRequestMsg(1));
  CheckSize(RelinquishMsg(1, Ballot{5, 2}, 9, {BigIntent()}, view));
  CheckSize(GcPollMsg(1));
  CheckSize(GcPollReplyMsg(1, Ballot{5, 2}));
  CheckSize(GcThresholdMsg(1, Ballot{5, 2}));
  CheckSize(HeartbeatMsg(1, Ballot{5, 2}));
  CheckSize(LzPrepareMsg(1, 3, Ballot{5, 2}));
  {
    LzPromiseMsg m(1, 3, Ballot{5, 2});
    m.accepted_ballot = Ballot{4, 1};
    m.accepted_zone = 6;
    CheckSize(m);
  }
  CheckSize(LzProposeMsg(1, 3, Ballot{5, 2}, 6));
  CheckSize(LzAcceptMsg(1, 3, Ballot{5, 2}, 6));
  CheckSize(LzNackMsg(1, 3, Ballot{5, 2}, Ballot{6, 3}, view));
  CheckSize(LzTransitionMsg(1, 3, 6));
  CheckSize(LzTransitionAckMsg(1, 3, {BigIntent()}));
  CheckSize(LzStoreIntentsMsg(1, 3, 6, {BigIntent()}));
  CheckSize(LzStoreAckMsg(1, 3));
  CheckSize(LzAnnounceMsg(1, view));
  CheckSize(ForwardMsg(1, 77, Value::Of(4, std::string(300, 'f'))));
  {
    ForwardReplyMsg m(1, 77);
    m.code = StatusCode::kOk;
    m.slot = 5;
    m.leader_hint = 3;
    CheckSize(m);
  }
  CheckSize(LearnRequestMsg(1, 40, 256));
  {
    LearnReplyMsg m(1);
    m.from_slot = 40;
    for (int i = 0; i < 5; ++i) {
      m.entries.push_back(DecidedEntryWire{
          static_cast<SlotId>(40 + i), Value::Of(1, std::string(64, 'e'))});
    }
    m.peer_watermark = 45;
    CheckSize(m);
  }
  CheckSize(SnapshotRequestMsg(1));
  CheckSize(SnapshotRequestMsg(1, 8192));
  CheckSize(SnapshotChunkMsg(1, 40, 8192, 65536, std::string(4096, 's')));
  CheckSize(FastGrantMsg(1, Ballot{5, 2}, 40, {0, 1, 2, 7, 8, 9}));
  CheckSize(FastAcceptMsg(1, Ballot{5, 2}, 77,
                          Value::Of(4, std::string(2048, 'f'))));
  CheckSize(FastAcceptedMsg(1, Ballot{5, 2}, 41, 3, 77,
                            Value::Of(4, std::string(2048, 'f'))));
  {
    FastNackMsg m(1, Ballot{5, 2}, Ballot{6, 3}, 77);
    m.leader_hint = 3;
    CheckSize(m);
  }
  CheckSize(StealRequestMsg(1, Ballot{5, 2}, 4, false));
  CheckSize(StealRequestMsg(1, Ballot{5, 2}, 4, true));
  CheckSize(OwnershipGrantMsg(1, true, StealRefusal::kNone, Ballot{5, 2}, 40,
                              39, true, 2));
  CheckSize(OwnershipGrantMsg(1, false, StealRefusal::kFastGrant,
                              Ballot{5, 2}, 0, 0, false, 7));
}

TEST(WireSizeTest, SyntheticValuesKeepTheirModelledSize) {
  // Benchmarks use Value::Synthetic (size without payload): the
  // bandwidth model must charge the synthetic size even though the
  // codec ships no payload bytes.
  ProposeMsg m(1, Ballot{5, 2}, 9, Value::Synthetic(4, 50 * 1024));
  EXPECT_GE(m.SizeBytes(), 50u * 1024u);
  // The codec round-trips the declared size faithfully.
  auto decoded = DeserializeMessage(SerializeMessage(m));
  ASSERT_TRUE(decoded.ok());
  auto typed = std::dynamic_pointer_cast<const ProposeMsg>(decoded.value());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->value.size_bytes, 50u * 1024u);
  EXPECT_EQ(typed->SizeBytes(), m.SizeBytes());
}

}  // namespace
}  // namespace dpaxos
