// Durability coverage for the acceptor WAL (src/storage/wal.h) and the
// fault-injecting filesystem beneath it (src/storage/env.h):
//
//   * Env unit cells: short writes, EIO, lying fsync, power loss keeping
//     exactly the durable prefix (plus an armed torn fragment).
//   * Round-trip of every journal record type across close/reopen.
//   * Exhaustive torn-tail sweep: truncating the active segment at EVERY
//     byte recovers exactly the longest whole-frame prefix.
//   * Exhaustive bit-flip sweeps: in the active segment recovery yields
//     a committed prefix or fails with Corruption (never a diverged
//     state); in a sealed segment every flip is Corruption.
//   * WAL-vs-model property test: after any injected power-loss point,
//     the recovered record equals the in-memory model at some mutation
//     prefix no older than the last acknowledged sync.
//   * fsyncgate: a failed fdatasync is sticky, withholds the queued
//     replies forever, and is never retried; the production configuration
//     aborts the process instead.
#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "paxos/acceptor.h"
#include "sim/simulator.h"
#include "storage/env.h"
#include "storage/storage.h"

namespace dpaxos {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "dpaxos_wal_" + name;
  Env* env = PosixEnv();
  if (env->FileExists(dir)) {
    auto children = env->GetChildren(dir);
    if (children.ok()) {
      for (const std::string& child : children.value()) {
        env->DeleteFile(dir + "/" + child).ok();
      }
    }
  }
  EXPECT_TRUE(env->CreateDir(dir).ok());
  return dir;
}

void CopyDir(const std::string& src, const std::string& dst) {
  Env* env = PosixEnv();
  ASSERT_TRUE(env->CreateDir(dst).ok());
  auto children = env->GetChildren(src);
  ASSERT_TRUE(children.ok());
  for (const std::string& child : children.value()) {
    auto bytes = env->ReadFileToString(src + "/" + child);
    ASSERT_TRUE(bytes.ok());
    auto file = env->NewWritableFile(dst + "/" + child, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append(bytes.value()).ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
}

std::vector<AcceptedEntry> Entries(const AcceptorRecord& rec) {
  std::vector<AcceptedEntry> out;
  rec.accepted.ForEachFrom(0, [&](const AcceptedEntry& e) { out.push_back(e); });
  return out;
}

// Equality over everything durability must preserve. sync_writes is a
// metric with different semantics per mode (see AcceptorRecord) and the
// journal pointer is process state; both are excluded.
bool RecordsEqual(const AcceptorRecord& a, const AcceptorRecord& b) {
  if (a.promised != b.promised || a.max_propose_ballot != b.max_propose_ballot ||
      a.max_recovered_ballot != b.max_recovered_ballot ||
      a.relinquish_consumed != b.relinquish_consumed ||
      a.lease_ballot != b.lease_ballot || a.lease_until != b.lease_until ||
      a.snapshot_through != b.snapshot_through ||
      a.compacted_through != b.compacted_through ||
      a.snapshot_bytes != b.snapshot_bytes || a.intents != b.intents) {
    return false;
  }
  const std::vector<AcceptedEntry> ea = Entries(a), eb = Entries(b);
  if (ea.size() != eb.size()) return false;
  for (size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].slot != eb[i].slot || ea[i].ballot != eb[i].ballot ||
        ea[i].fast != eb[i].fast || !(ea[i].value == eb[i].value)) {
      return false;
    }
  }
  return true;
}

// Copy of a record with the process-local fields cleared, so snapshots
// in the sweep tests can be compared with RecordsEqual directly.
AcceptorRecord Clone(const AcceptorRecord& rec) {
  AcceptorRecord copy = rec;
  copy.journal = nullptr;
  copy.sync_writes = 0;
  return copy;
}

// One scripted mutation applied BOTH to the in-memory record and to the
// journal — exactly the discipline the acceptor follows (mutate, then
// journal the new state). Cycles through every record type.
void ApplyMutation(uint32_t i, AcceptorRecord* rec, AcceptorJournal* j) {
  switch (i % 9) {
    case 0:
      rec->promised = Ballot{i + 1, i % 4};
      j->Promised(rec->promised);
      break;
    case 1: {
      AcceptedEntry e;
      e.slot = i;
      e.ballot = Ballot{i + 1, 1};
      e.fast = (i % 2) == 0;
      e.value = Value::Of(1000 + i, "payload-" + std::to_string(i));
      rec->accepted.Put(e.slot, e);
      j->Accepted(e);
      break;
    }
    case 2: {
      Intent in;
      in.ballot = Ballot{i + 1, 2};
      in.leader = i % 4;
      in.quorum = {0, 1, i % 3};
      rec->intents.push_back(in);
      j->IntentsChanged(rec->intents);
      break;
    }
    case 3:
      rec->lease_ballot = Ballot{i + 1, 3};
      rec->lease_until = 1000 * (i + 1);
      j->LeaseGranted(rec->lease_ballot, rec->lease_until);
      break;
    case 4:
      rec->relinquish_consumed = Ballot{i + 1, 0};
      j->RelinquishConsumed(rec->relinquish_consumed);
      break;
    case 5:
      rec->max_propose_ballot = Ballot{i + 2, 1};
      rec->max_recovered_ballot = Ballot{i + 1, 1};
      j->GcBallots(rec->max_propose_ballot, rec->max_recovered_ballot);
      break;
    case 6:
      rec->snapshot_bytes = "snapshot-image-" + std::to_string(i);
      rec->snapshot_through = i;
      j->SnapshotStored(i, rec->snapshot_bytes);
      break;
    case 7: {
      const SlotId through = i / 2;
      rec->accepted.ReleaseBelow(through);
      if (through > rec->compacted_through) rec->compacted_through = through;
      j->PrefixReleased(through);
      break;
    }
    case 8:
      rec->snapshot_bytes.clear();
      rec->snapshot_through = 0;
      j->SnapshotDropped();
      break;
  }
}

std::unique_ptr<Wal> OpenOrDie(Env* env, const std::string& dir,
                               const WalOptions& options,
                               EventScheduler* scheduler = nullptr) {
  auto wal = Wal::Open(env, dir, options, scheduler);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  return std::move(wal.value());
}

// Recovered record for partition 0 (a default record when the log held
// no frames at all — an empty log IS the empty record).
AcceptorRecord RecoveredRecord(Wal* wal) {
  auto records = wal->TakeRecovered();
  auto it = records.find(0);
  if (it == records.end()) return AcceptorRecord{};
  return Clone(*it->second);
}

// Frame boundaries of a segment: offsets[k] = byte offset after k whole
// frames. Parses the same [u32 len][u32 crc][body] framing the WAL uses.
std::vector<size_t> FrameBoundaries(const std::string& bytes) {
  std::vector<size_t> bounds{0};
  size_t off = 0;
  while (off + 8 <= bytes.size()) {
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + off, 4);
    if (off + 8 + len > bytes.size()) break;
    off += 8 + len;
    bounds.push_back(off);
  }
  return bounds;
}

// ---------------------------------------------------------------------
// Env

TEST(EnvTest, PosixRoundTrip) {
  Env* env = PosixEnv();
  const std::string dir = FreshDir("posix");
  const std::string path = dir + "/file";
  auto file = env->NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("hello ").ok());
  ASSERT_TRUE(file.value()->Append("world").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  ASSERT_TRUE(file.value()->Close().ok());
  EXPECT_EQ(env->FileSize(path), 11u);
  auto bytes = env->ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "hello world");
  ASSERT_TRUE(env->Truncate(path, 5).ok());
  EXPECT_EQ(env->ReadFileToString(path).value(), "hello");
  ASSERT_TRUE(env->RenameFile(path, dir + "/renamed").ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_TRUE(env->FileExists(dir + "/renamed"));
  auto children = env->GetChildren(dir);
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children.value(), std::vector<std::string>{"renamed"});
  ASSERT_TRUE(env->DeleteFile(dir + "/renamed").ok());
  ASSERT_TRUE(env->SyncDir(dir).ok());
}

TEST(EnvTest, InjectedEioAndShortWrite) {
  FaultInjectingEnv env(PosixEnv());
  const std::string dir = FreshDir("faults");
  const std::string path = dir + "/file";
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());

  env.faults().eio_appends = 1;
  EXPECT_FALSE(file.value()->Append("lost entirely").ok());
  EXPECT_EQ(env.FileSize(path), 0u);
  ASSERT_TRUE(file.value()->Append("whole").ok());

  env.faults().short_write_bytes = 3;
  EXPECT_FALSE(file.value()->Append("truncated").ok());
  EXPECT_EQ(env.FileSize(path), 8u);  // "whole" + "tru"

  env.faults().eio_syncs = 1;
  EXPECT_FALSE(file.value()->Sync().ok());
  EXPECT_EQ(env.sync_calls(), 0u);
  EXPECT_TRUE(file.value()->Sync().ok());
  EXPECT_EQ(env.sync_calls(), 1u);

  env.faults().eio_reads = 1;
  EXPECT_FALSE(env.ReadFileToString(path).ok());
  EXPECT_TRUE(env.ReadFileToString(path).ok());
}

TEST(EnvTest, CrashKeepsDurablePrefixPlusTornFragment) {
  FaultInjectingEnv env(PosixEnv());
  const std::string dir = FreshDir("crash");
  const std::string path = dir + "/file";
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("durable!").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  ASSERT_TRUE(file.value()->Append("in flight").ok());
  env.faults().torn_tail_bytes = 4;
  ASSERT_TRUE(env.CrashAndLose().ok());
  EXPECT_EQ(PosixEnv()->ReadFileToString(path).value(), "durable!in f");
}

TEST(EnvTest, LyingFsyncBetraysAtPowerLoss) {
  FaultInjectingEnv env(PosixEnv());
  const std::string dir = FreshDir("liar");
  const std::string path = dir + "/file";
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("vanishes").ok());
  env.faults().lying_syncs = 1;
  EXPECT_TRUE(file.value()->Sync().ok());  // reported durable — a lie
  EXPECT_EQ(env.sync_calls(), 0u);
  ASSERT_TRUE(env.CrashAndLose().ok());
  EXPECT_EQ(PosixEnv()->ReadFileToString(path).value(), "");
}

// ---------------------------------------------------------------------
// Wal basics

TEST(WalTest, FreshOpenCreatesManifestAndFirstSegment) {
  Env* env = PosixEnv();
  const std::string dir = FreshDir("fresh");
  auto wal = OpenOrDie(env, dir, WalOptions{});
  EXPECT_EQ(wal->active_seq(), 1u);
  EXPECT_TRUE(env->FileExists(dir + "/MANIFEST"));
  EXPECT_TRUE(env->FileExists(dir + "/" + Wal::SegmentName(1)));
  auto manifest = env->ReadFileToString(dir + "/MANIFEST");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value(), "dpaxos-wal v1 start=1\n");
}

TEST(WalTest, EveryRecordTypeSurvivesReopen) {
  Env* env = PosixEnv();
  const std::string dir = FreshDir("roundtrip");
  AcceptorRecord model;
  {
    auto wal = OpenOrDie(env, dir, WalOptions{});
    AcceptorJournal* j = wal->Attach(0, &model);
    for (uint32_t i = 0; i < 18; ++i) ApplyMutation(i, &model, j);
    ASSERT_TRUE(wal->SyncNow().ok());
    EXPECT_EQ(wal->stats().appends, 18u);
  }
  auto wal = OpenOrDie(env, dir, WalOptions{});
  EXPECT_TRUE(RecordsEqual(RecoveredRecord(wal.get()), model));
}

TEST(WalTest, AcceptorMutationsAreJournaledAndRecovered) {
  Env* env = PosixEnv();
  const std::string dir = FreshDir("acceptor");
  AcceptorRecord final_state;
  {
    NodeStorage storage;
    storage.AdoptWal(OpenOrDie(env, dir, WalOptions{}));
    Acceptor acc(/*leaderless=*/false, storage.RecordFor(0));
    EXPECT_TRUE(acc
                    .OnPrepare(PrepareMsg(0, Ballot{3, 1}, 0, {},
                                          /*exp=*/false, LeaderZoneView{}),
                               0)
                    .promised);
    EXPECT_TRUE(
        acc.OnPropose(ProposeMsg(0, Ballot{3, 1}, 7, Value::Of(11, "cmd")), 0)
            .accepted);
    EXPECT_TRUE(
        acc.OnPropose(ProposeMsg(0, Ballot{4, 2}, 8, Value::Of(12, "cmd2")), 0)
            .accepted);
    ASSERT_TRUE(storage.wal()->SyncNow().ok());
    // One real fdatasync covered all three mutations: group-commit
    // credit, not per-mutation counting.
    EXPECT_EQ(storage.RecordFor(0)->sync_writes, 1u);
    final_state = Clone(*storage.RecordFor(0));
  }
  NodeStorage reopened;
  reopened.AdoptWal(OpenOrDie(env, dir, WalOptions{}));
  EXPECT_TRUE(RecordsEqual(*reopened.RecordFor(0), final_state));
  EXPECT_EQ(reopened.RecordFor(0)->promised, (Ballot{4, 2}));
}

TEST(WalTest, GroupCommitReleasesBatchWithOneFsync) {
  Simulator sim(7);
  FaultInjectingEnv env(PosixEnv());
  const std::string dir = FreshDir("groupcommit");
  WalOptions options;
  options.group_commit_delay = 1000;  // 1ms virtual
  auto wal = OpenOrDie(&env, dir, options, &sim);
  AcceptorRecord rec;
  AcceptorJournal* j = wal->Attach(0, &rec);
  const uint64_t syncs_before = env.sync_calls();
  int released = 0;
  for (uint32_t i = 0; i < 3; ++i) {
    ApplyMutation(i, &rec, j);
    wal->SyncThen([&released] { ++released; });
  }
  EXPECT_EQ(released, 0);  // nothing durable yet, nothing acknowledged
  sim.RunUntilIdle();
  EXPECT_EQ(released, 3);
  EXPECT_EQ(env.sync_calls() - syncs_before, 1u);
  EXPECT_EQ(wal->stats().fsyncs, 1u);
}

TEST(WalTest, RotationSealsSegmentsAndRecoveryReplaysAll) {
  Env* env = PosixEnv();
  const std::string dir = FreshDir("rotate");
  WalOptions options;
  options.segment_bytes = 96;  // a frame or two per segment
  AcceptorRecord model;
  {
    auto wal = OpenOrDie(env, dir, options);
    AcceptorJournal* j = wal->Attach(0, &model);
    for (uint32_t i = 0; i < 18; ++i) {
      ApplyMutation(i, &model, j);
      ASSERT_TRUE(wal->SyncNow().ok());
    }
    EXPECT_GT(wal->active_seq(), 2u);
  }
  auto wal = OpenOrDie(env, dir, options);
  EXPECT_TRUE(RecordsEqual(RecoveredRecord(wal.get()), model));
}

TEST(WalTest, CheckpointFoldsLogAndDeletesOldSegments) {
  Env* env = PosixEnv();
  const std::string dir = FreshDir("checkpoint");
  WalOptions options;
  options.segment_bytes = 128;
  AcceptorRecord model;
  uint64_t checkpoint_seq = 0;
  {
    auto wal = OpenOrDie(env, dir, options);
    AcceptorJournal* j = wal->Attach(0, &model);
    for (uint32_t i = 0; i < 12; ++i) {
      ApplyMutation(i, &model, j);
      ASSERT_TRUE(wal->SyncNow().ok());
    }
    ASSERT_TRUE(wal->Checkpoint().ok());
    EXPECT_EQ(wal->stats().checkpoints, 1u);
    checkpoint_seq = wal->active_seq();
    // Everything before the checkpoint segment is gone.
    auto children = env->GetChildren(dir);
    ASSERT_TRUE(children.ok());
    for (const std::string& name : children.value()) {
      if (name == "MANIFEST") continue;
      EXPECT_EQ(name, Wal::SegmentName(checkpoint_seq));
    }
  }
  auto wal = OpenOrDie(env, dir, options);
  EXPECT_EQ(wal->active_seq(), checkpoint_seq);
  EXPECT_TRUE(RecordsEqual(RecoveredRecord(wal.get()), model));
}

TEST(WalTest, RecoveryAfterCheckpointCrashWindows) {
  // Crash window 1: checkpoint segment written but the manifest still
  // names the old start. Replaying old deltas THEN the checkpoint images
  // must land on the same state (images overwrite).
  Env* env = PosixEnv();
  const std::string dir = FreshDir("ckpt_crash");
  AcceptorRecord model;
  {
    auto wal = OpenOrDie(env, dir, WalOptions{});
    AcceptorJournal* j = wal->Attach(0, &model);
    for (uint32_t i = 0; i < 9; ++i) ApplyMutation(i, &model, j);
    ASSERT_TRUE(wal->SyncNow().ok());
    ASSERT_TRUE(wal->Checkpoint().ok());
  }
  // Reconstruct window 1 by pointing the manifest back at segment 1;
  // segment 1 was deleted, so resurrect an empty one (a no-frame prefix
  // replays as nothing — the checkpoint images carry the state).
  {
    auto file = env->NewWritableFile(dir + "/" + Wal::SegmentName(1), true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Close().ok());
    auto manifest = env->NewWritableFile(dir + "/MANIFEST", true);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(manifest.value()->Append("dpaxos-wal v1 start=1\n").ok());
    ASSERT_TRUE(manifest.value()->Close().ok());
  }
  {
    auto wal = OpenOrDie(env, dir, WalOptions{});
    EXPECT_TRUE(RecordsEqual(RecoveredRecord(wal.get()), model));
  }
  // Crash window 2: manifest swapped but old segments not yet deleted.
  // The stale pre-checkpoint segment must be swept at open.
  {
    auto manifest = env->NewWritableFile(dir + "/MANIFEST", true);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(manifest.value()->Append("dpaxos-wal v1 start=2\n").ok());
    ASSERT_TRUE(manifest.value()->Close().ok());
    auto file = env->NewWritableFile(dir + "/" + Wal::SegmentName(1), true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("stale garbage, never read").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  auto wal = OpenOrDie(env, dir, WalOptions{});
  EXPECT_TRUE(RecordsEqual(RecoveredRecord(wal.get()), model));
  EXPECT_FALSE(env->FileExists(dir + "/" + Wal::SegmentName(1)));
}

// ---------------------------------------------------------------------
// Exhaustive damage sweeps

TEST(WalTest, TruncationSweepRecoversExactWholeFramePrefix) {
  Env* env = PosixEnv();
  const std::string dir = FreshDir("trunc_build");
  std::vector<AcceptorRecord> snaps;
  {
    auto wal = OpenOrDie(env, dir, WalOptions{});
    AcceptorRecord rec;
    AcceptorJournal* j = wal->Attach(0, &rec);
    snaps.push_back(Clone(rec));
    for (uint32_t i = 0; i < 18; ++i) {
      ApplyMutation(i, &rec, j);
      ASSERT_TRUE(wal->SyncNow().ok());
      snaps.push_back(Clone(rec));
    }
  }
  const std::string seg_name = Wal::SegmentName(1);
  auto bytes = env->ReadFileToString(dir + "/" + seg_name);
  ASSERT_TRUE(bytes.ok());
  const std::vector<size_t> bounds = FrameBoundaries(bytes.value());
  ASSERT_EQ(bounds.size(), snaps.size());  // one frame per mutation

  const std::string sweep_dir = FreshDir("trunc_sweep");
  for (size_t cut = 0; cut <= bytes.value().size(); ++cut) {
    CopyDir(dir, sweep_dir);
    ASSERT_TRUE(env->Truncate(sweep_dir + "/" + seg_name, cut).ok());
    auto wal = Wal::Open(env, sweep_dir, WalOptions{}, nullptr);
    ASSERT_TRUE(wal.ok()) << "cut at " << cut << ": "
                          << wal.status().ToString();
    size_t k = 0;
    while (k + 1 < bounds.size() && bounds[k + 1] <= cut) ++k;
    EXPECT_TRUE(RecordsEqual(RecoveredRecord(wal.value().get()), snaps[k]))
        << "cut at " << cut << " diverged from mutation prefix " << k;
    const bool torn = cut != bounds[k];
    EXPECT_EQ(wal.value()->stats().torn_tail_truncations, torn ? 1u : 0u)
        << "cut at " << cut;
    // The repair is physical: the file now ends at the frame boundary.
    EXPECT_EQ(env->FileSize(sweep_dir + "/" + seg_name), bounds[k]);
  }
}

TEST(WalTest, BitFlipSweepActiveSegmentPrefixOrCorruption) {
  Env* env = PosixEnv();
  const std::string dir = FreshDir("flip_build");
  std::vector<AcceptorRecord> snaps;
  {
    auto wal = OpenOrDie(env, dir, WalOptions{});
    AcceptorRecord rec;
    AcceptorJournal* j = wal->Attach(0, &rec);
    snaps.push_back(Clone(rec));
    for (uint32_t i = 0; i < 12; ++i) {
      ApplyMutation(i, &rec, j);
      ASSERT_TRUE(wal->SyncNow().ok());
      snaps.push_back(Clone(rec));
    }
  }
  const std::string seg_name = Wal::SegmentName(1);
  const uint64_t seg_size = env->FileSize(dir + "/" + seg_name);
  ASSERT_GT(seg_size, 0u);

  const std::string sweep_dir = FreshDir("flip_sweep");
  for (uint64_t offset = 0; offset < seg_size; ++offset) {
    CopyDir(dir, sweep_dir);
    ASSERT_TRUE(
        FlipByteAt(env, sweep_dir + "/" + seg_name, offset, 0x10).ok());
    auto wal = Wal::Open(env, sweep_dir, WalOptions{}, nullptr);
    if (!wal.ok()) {
      EXPECT_TRUE(wal.status().code() == StatusCode::kCorruption)
          << "flip at " << offset << ": " << wal.status().ToString();
      continue;
    }
    // Survivable damage (e.g. a flipped length field mimicking a torn
    // tail) must still land on SOME mutation prefix — never a state no
    // sequence of acknowledged mutations ever produced.
    const AcceptorRecord recovered = RecoveredRecord(wal.value().get());
    bool matches_prefix = false;
    for (const AcceptorRecord& snap : snaps) {
      if (RecordsEqual(recovered, snap)) {
        matches_prefix = true;
        break;
      }
    }
    EXPECT_TRUE(matches_prefix) << "flip at " << offset << " diverged";
  }
}

TEST(WalTest, BitFlipInSealedSegmentAlwaysCorruption) {
  Env* env = PosixEnv();
  const std::string dir = FreshDir("sealed_build");
  WalOptions options;
  options.segment_bytes = 64;  // force rotation quickly
  uint64_t sealed_seq = 0;
  {
    auto wal = OpenOrDie(env, dir, options);
    AcceptorRecord rec;
    AcceptorJournal* j = wal->Attach(0, &rec);
    for (uint32_t i = 0; i < 10; ++i) {
      ApplyMutation(i, &rec, j);
      ASSERT_TRUE(wal->SyncNow().ok());
    }
    ASSERT_GT(wal->active_seq(), 1u);
    sealed_seq = 1;  // the first segment is sealed by now
  }
  const std::string seg_name = Wal::SegmentName(sealed_seq);
  const uint64_t seg_size = env->FileSize(dir + "/" + seg_name);
  ASSERT_GT(seg_size, 0u);

  const std::string sweep_dir = FreshDir("sealed_sweep");
  for (uint64_t offset = 0; offset < seg_size; ++offset) {
    CopyDir(dir, sweep_dir);
    ASSERT_TRUE(
        FlipByteAt(env, sweep_dir + "/" + seg_name, offset, 0x10).ok());
    auto wal = Wal::Open(env, sweep_dir, options, nullptr);
    ASSERT_FALSE(wal.ok())
        << "flip at " << offset << " in a SEALED segment was accepted";
    EXPECT_TRUE(wal.status().code() == StatusCode::kCorruption)
        << "flip at " << offset << ": " << wal.status().ToString();
  }
}

// ---------------------------------------------------------------------
// WAL vs in-memory crash-fault model

TEST(WalTest, PowerLossRecoversToAcknowledgedPrefix) {
  // Property: for ANY power-loss point (with or without a torn tail),
  // recovery lands on snaps[k] for some k between the last acknowledged
  // sync and the total mutation count. k < last_synced would lose an
  // acknowledged write; a state matching no prefix would be divergence.
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Simulator sim(seed);  // used only as a deterministic random source
    FaultInjectingEnv env(PosixEnv());
    const std::string dir = FreshDir("power_" + std::to_string(seed));
    std::vector<AcceptorRecord> snaps;
    size_t last_synced = 0, total = 0;
    {
      auto wal = OpenOrDie(&env, dir, WalOptions{});
      AcceptorRecord rec;
      AcceptorJournal* j = wal->Attach(0, &rec);
      snaps.push_back(Clone(rec));
      const uint32_t steps = 8 + static_cast<uint32_t>(sim.rng().NextBounded(24));
      for (uint32_t i = 0; i < steps; ++i) {
        ApplyMutation(static_cast<uint32_t>(sim.rng().NextBounded(64)), &rec, j);
        snaps.push_back(Clone(rec));
        ++total;
        if (sim.rng().NextBounded(3) == 0) {
          ASSERT_TRUE(wal->SyncNow().ok());
          last_synced = total;
        }
      }
      if (sim.rng().NextBounded(2) == 0) {
        env.faults().torn_tail_bytes =
            static_cast<int64_t>(sim.rng().NextBounded(64));
      }
    }  // the Wal object dies with the "process"
    ASSERT_TRUE(env.CrashAndLose().ok());

    auto wal = Wal::Open(&env, dir, WalOptions{}, nullptr);
    ASSERT_TRUE(wal.ok()) << "seed " << seed << ": "
                          << wal.status().ToString();
    const AcceptorRecord recovered = RecoveredRecord(wal.value().get());
    // Scan from the NEWEST prefix down: adjacent mutations can produce
    // identical states, and matching the oldest duplicate would falsely
    // report an acknowledged write as lost.
    size_t matched = snaps.size();
    for (size_t k = snaps.size(); k-- > 0;) {
      if (RecordsEqual(recovered, snaps[k])) {
        matched = k;
        break;
      }
    }
    ASSERT_LT(matched, snaps.size()) << "seed " << seed << " diverged";
    EXPECT_GE(matched, last_synced)
        << "seed " << seed << " lost an acknowledged write";
  }
}

// ---------------------------------------------------------------------
// fsyncgate

TEST(WalTest, FailedFsyncIsStickyWithholdsRepliesAndNeverRetries) {
  FaultInjectingEnv env(PosixEnv());
  const std::string dir = FreshDir("fsyncgate");
  WalOptions options;
  options.panic_on_sync_failure = false;  // observe instead of aborting
  auto wal = OpenOrDie(&env, dir, options);
  AcceptorRecord rec;
  AcceptorJournal* j = wal->Attach(0, &rec);

  ApplyMutation(0, &rec, j);
  env.faults().eio_syncs = 1;
  bool released = false;
  wal->SyncThen([&released] { released = true; });  // flushes inline
  EXPECT_FALSE(released);  // the reply this gated must NEVER be sent
  EXPECT_FALSE(wal->health().ok());
  EXPECT_EQ(wal->stats().sync_failures, 1u);
  const uint64_t syncs_after_failure = env.sync_calls();

  // Sticky: later appends are ignored, later syncs return the original
  // failure, and — fsyncgate — the WAL never issues another fdatasync
  // that could falsely report the lost pages as durable.
  const uint64_t appends_before = wal->stats().appends;
  ApplyMutation(1, &rec, j);
  wal->SyncThen([&released] { released = true; });
  Status again = wal->SyncNow();
  EXPECT_FALSE(again.ok());
  EXPECT_FALSE(released);
  EXPECT_EQ(wal->stats().appends, appends_before);
  EXPECT_EQ(env.sync_calls(), syncs_after_failure);
  EXPECT_EQ(wal->stats().sync_failures, 1u);  // one failure, counted once
}

TEST(WalPanicDeathTest, ProductionConfigAbortsOnFsyncFailure) {
  ASSERT_DEATH(
      {
        FaultInjectingEnv env(PosixEnv());
        const std::string dir = FreshDir("panic");
        WalOptions options;  // panic_on_sync_failure = true (default)
        auto wal = OpenOrDie(&env, dir, options);
        AcceptorRecord rec;
        AcceptorJournal* j = wal->Attach(0, &rec);
        ApplyMutation(0, &rec, j);
        env.faults().eio_syncs = 1;
        wal->SyncNow().ok();
      },
      "unrecoverable storage failure");
}

}  // namespace
}  // namespace dpaxos
