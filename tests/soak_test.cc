// Kitchen-sink soak: minutes of virtual time with everything happening
// at once — submissions from everywhere, handoffs, Leader Zone
// migrations, crashes, restarts, message loss/duplication, a running
// garbage collector — then assert the core invariants still hold and
// the system still serves. All fault choreography goes through the
// Nemesis engine (src/harness/nemesis.h), the test only drives load.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "harness/chaos.h"
#include "harness/cluster.h"
#include "harness/nemesis.h"
#include "net/topology.h"

namespace dpaxos {
namespace {

class SoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoakTest, EverythingAtOnce) {
  const uint64_t seed = GetParam();
  ClusterOptions options;
  options.seed = seed;
  options.transport.drop_probability = 0.05;
  options.transport.duplicate_probability = 0.05;
  options.transport.max_jitter = 10 * kMillisecond;
  options.replica.le_timeout = 800 * kMillisecond;
  options.replica.propose_timeout = 400 * kMillisecond;
  options.replica.num_intents = 2;
  options.replica.storage_sync_delay = 100 * kMicrosecond;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  Rng rng(seed * 6361 + 3);

  GarbageCollector* gc = cluster.AddGarbageCollector(2, 0,
                                                     200 * kMillisecond);
  gc->Start();
  Nemesis nemesis(&cluster, seed);

  std::set<uint64_t> submitted;
  uint64_t next_id = 0;
  uint64_t commits_acked = 0;

  for (int wave = 0; wave < 40; ++wave) {
    switch (rng.NextBounded(6)) {
      case 0:  // crash (the nemesis respects fd=1 per zone)
        nemesis.CrashRandomNode();
        break;
      case 1:  // recover + restart (durable state, fresh process)
        nemesis.RestartRandomCrashedNode(/*lose_unsynced=*/false);
        break;
      case 2:  // leader zone migration attempt
        nemesis.MigrateLeaderZoneRandom();
        break;
      case 3:  // handoff attempt from whoever currently leads
        nemesis.HandoffRandom();
        break;
      default: {  // submissions from random healthy nodes
        for (int i = 0; i < 3; ++i) {
          NodeId node;
          do {
            node = static_cast<NodeId>(rng.NextBounded(21));
          } while (nemesis.crashed().count(node) > 0);
          const uint64_t id = ++next_id;
          submitted.insert(id);
          cluster.replica(node)->Submit(
              Value::Synthetic(id, 256),
              [&commits_acked](const Status& st, SlotId, Duration) {
                if (st.ok()) ++commits_acked;
              });
        }
        break;
      }
    }
    cluster.sim().RunFor(rng.NextBounded(3 * kSecond));
  }

  // Quiesce: heal everything and let the dust settle.
  nemesis.Quiesce();
  cluster.sim().RunFor(60 * kSecond);
  gc->Stop();

  // Invariant 1: agreement + non-triviality across all replicas.
  std::map<SlotId, uint64_t> canonical;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const auto& [slot, value] : cluster.replica(n)->decided()) {
      auto [it, inserted] = canonical.emplace(slot, value.id);
      ASSERT_EQ(it->second, value.id)
          << "seed " << seed << ": conflicting decisions at slot " << slot;
      if (!value.is_noop()) {
        ASSERT_TRUE(submitted.count(value.id) > 0) << "seed " << seed;
      }
    }
  }
  // Invariant 2: believing one is leader may linger (dethronement is
  // discovered lazily), but at most one claimed leader can still COMMIT.
  // Make every claimant propose; the stale ones get accept-nacked and
  // step down.
  std::vector<NodeId> claimants;
  for (NodeId n : cluster.topology().AllNodes()) {
    if (cluster.replica(n)->is_leader()) claimants.push_back(n);
  }
  int commit_ok = 0;
  for (NodeId n : claimants) {
    const uint64_t id = ++next_id;
    submitted.insert(id);
    Result<Duration> probe =
        cluster.Commit(n, Value::Synthetic(id, 64));
    if (probe.ok()) ++commit_ok;
  }
  cluster.sim().RunFor(10 * kSecond);
  int leaders = 0;
  for (NodeId n : cluster.topology().AllNodes()) {
    if (cluster.replica(n)->is_leader()) ++leaders;
  }
  EXPECT_LE(leaders, 1) << "seed " << seed;
  // Invariant 3: some work actually happened during the chaos.
  EXPECT_GT(commits_acked, 0u) << "seed " << seed;
  // Liveness: after quiescing, the system still serves.
  Replica* closer = cluster.ReplicaInZone(1, 1);
  closer->PrimeBallot(Ballot{100000, 0});
  Result<Duration> r =
      cluster.Commit(closer->id(), Value::Synthetic(++next_id, 128));
  submitted.insert(next_id);
  EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Bounded memory under sustained load: with periodic compaction on, the
// resident decided log must stay near the retained suffix instead of
// growing with the run length. Without compaction every committed write
// stays resident forever, so the bound below would be impossible.
TEST(SoakCompactionTest, ResidentDecidedLogStaysBounded) {
  ChaosOptions options;
  options.mode = ProtocolMode::kLeaderZone;
  options.schedule = "none";
  options.seed = 77;
  options.duration = 40 * kSecond;
  // Long run: spread ops over more keys so no per-key history exceeds
  // the linearizability checker's 63-op bitmask limit.
  options.num_keys = 64;
  options.enable_compaction = true;
  options.compaction_retained_suffix = 64;
  options.compaction_interval = 1 * kSecond;
  const ChaosReport report = RunChaos(options);
  ASSERT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.log_compactions, 0u) << report.Summary();
  // Enough commits that an unbounded log would dwarf the bound below.
  EXPECT_GT(report.ops_committed, 600u) << report.Summary();
  // Retained suffix + churn slack (slots decided since the last sweep
  // plus applier lag). The run commits well over 600 slots; resident
  // state must stay an order of magnitude below that.
  EXPECT_LE(report.max_resident_decided,
            options.compaction_retained_suffix + 256u)
      << report.Summary();
}

TEST(PlanetTopologyTest, DeterministicAndPlausible) {
  const Topology a = Topology::Planet(16, 3, 99);
  const Topology b = Topology::Planet(16, 3, 99);
  const Topology c = Topology::Planet(16, 3, 100);
  EXPECT_EQ(a.num_nodes(), 48u);
  bool differs = false;
  for (ZoneId i = 0; i < 16; ++i) {
    for (ZoneId j = 0; j < 16; ++j) {
      EXPECT_EQ(a.ZoneRtt(i, j), b.ZoneRtt(i, j));
      if (a.ZoneRtt(i, j) != c.ZoneRtt(i, j)) differs = true;
      if (i != j) {
        // >= routing overhead, <= half circumference at fiber speed + it.
        EXPECT_GE(a.ZoneRtt(i, j), FromMillis(6.0));
        EXPECT_LE(a.ZoneRtt(i, j), FromMillis(6.0 + 2 * 20015.0 / 200.0));
      }
    }
  }
  EXPECT_TRUE(differs);  // different seeds, different planet
}

TEST(PlanetTopologyTest, SupportsFullProtocolRun) {
  Cluster cluster(Topology::Planet(12, 3, 7), ProtocolMode::kDelegate);
  const NodeId leader = cluster.NodeInZone(4);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(i, 128)).ok());
  }
}

}  // namespace
}  // namespace dpaxos
