// Tests for the per-replica protocol counters.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

TEST(CountersTest, ElectionAndCommitIncrementTheRightCounters) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  const ProtocolCounters& lc = cluster.replica(leader)->counters();
  EXPECT_EQ(lc.elections_started, 1u);
  // The leader voted for itself (loopback prepare).
  EXPECT_GE(lc.prepares_received, 1u);
  EXPECT_GE(lc.promises_sent, 1u);

  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "x")).ok());
  EXPECT_EQ(lc.proposes_sent, 1u);
  EXPECT_GE(lc.proposes_received, 1u);  // self-accept
  EXPECT_GE(lc.accepts_sent, 1u);

  // The quorum companion accepted once and never nacked.
  const ProtocolCounters& pc = cluster.replica(1)->counters();
  EXPECT_EQ(pc.proposes_received, 1u);
  EXPECT_EQ(pc.accepts_sent, 1u);
  EXPECT_EQ(pc.accept_nacks_sent, 0u);
  EXPECT_EQ(pc.elections_started, 0u);
}

TEST(CountersTest, PreemptionCountsNacksAndStepDowns) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kMultiPaxos);
  const NodeId first = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(first).ok());
  ASSERT_TRUE(cluster.Commit(first, Value::Of(1, "a")).ok());

  const NodeId second = cluster.NodeInZone(3);
  ASSERT_TRUE(cluster.ElectLeader(second).ok());
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_GE(cluster.replica(first)->counters().step_downs, 1u);
}

TEST(CountersTest, ExpansionCountsDetectedIntents) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kDelegate);
  const NodeId mumbai = cluster.NodeInZone(6);
  ASSERT_TRUE(cluster.ElectLeader(mumbai).ok());
  ASSERT_TRUE(cluster.Commit(mumbai, Value::Of(1, "m")).ok());

  Replica* cal = cluster.ReplicaInZone(0);
  cal->PrimeBallot(cluster.replica(mumbai)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(cal->id()).ok());
  EXPECT_GE(cal->counters().intents_detected, 1u);
}

TEST(CountersTest, HandoffAndForwardingCounters) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId old_leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(old_leader).ok());
  ASSERT_TRUE(cluster.replica(old_leader)->HandoffTo(3).ok());
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return cluster.replica(3)->is_leader(); }, 10 * kSecond));
  EXPECT_EQ(cluster.replica(old_leader)->counters().handoffs_sent, 1u);
  EXPECT_EQ(cluster.replica(3)->counters().handoffs_received, 1u);

  Replica* origin = cluster.ReplicaInZone(5);
  origin->set_leader_hint(3);
  bool done = false;
  origin->SubmitOrForward(Value::Of(2, "fwd"),
                          [&](const Status&, SlotId, Duration) {
                            done = true;
                          });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 10 * kSecond));
  EXPECT_EQ(cluster.replica(3)->counters().forwards_handled, 1u);
}

TEST(CountersTest, RetransmitsCountedUnderLoss) {
  ClusterOptions options;
  options.transport.drop_probability = 0.5;
  options.replica.propose_timeout = 200 * kMillisecond;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  (void)cluster.ElectLeader(leader);
  for (uint64_t i = 1; i <= 10; ++i) {
    (void)cluster.Commit(leader, Value::Synthetic(i, 64));
  }
  EXPECT_GT(cluster.replica(leader)->counters().retransmits, 0u);
}

}  // namespace
}  // namespace dpaxos
