// Tests for Leader Handoff (paper Section 4.4): single-round leadership
// transfer, loss semantics, and the interaction with Expanding Quorums.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

TEST(HandoffTest, PushTransfersLeadershipInOneMessage) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId old_leader = cluster.NodeInZone(0);
  const NodeId new_leader = cluster.NodeInZone(3);
  ASSERT_TRUE(cluster.ElectLeader(old_leader).ok());
  ASSERT_TRUE(cluster.Commit(old_leader, Value::Of(1, "a")).ok());
  const Ballot ballot = cluster.replica(old_leader)->ballot();

  ASSERT_TRUE(cluster.replica(old_leader)->HandoffTo(new_leader).ok());
  // The old leader refrains immediately, before delivery.
  EXPECT_FALSE(cluster.replica(old_leader)->is_leader());
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return cluster.replica(new_leader)->is_leader(); }, 10 * kSecond));

  // The logical role moved: same ballot, continued slot sequence, and the
  // new leader is restricted to the relinquished intents.
  EXPECT_EQ(cluster.replica(new_leader)->ballot(), ballot);
  EXPECT_EQ(cluster.replica(new_leader)->next_slot(), 1u);
  ASSERT_EQ(cluster.replica(new_leader)->declared_intents().size(), 1u);
  EXPECT_EQ(cluster.replica(new_leader)->declared_intents()[0].quorum,
            (std::vector<NodeId>{0, 1}));

  // The new leader commits without any election.
  const uint64_t elections = cluster.replica(new_leader)->elections_won();
  ASSERT_TRUE(cluster.Commit(new_leader, Value::Of(2, "b")).ok());
  EXPECT_EQ(cluster.replica(new_leader)->elections_won(), elections);
}

TEST(HandoffTest, PullRequestLatencyIsOneRoundTrip) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId old_leader = cluster.NodeInZone(6);  // Mumbai
  ASSERT_TRUE(cluster.ElectLeader(old_leader).ok());

  Replica* requester = cluster.ReplicaInZone(0);  // California
  Status result;
  bool done = false;
  const Timestamp start = cluster.sim().Now();
  requester->RequestHandoffFrom(old_leader, [&](const Status& st) {
    result = st;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 10 * kSecond));
  ASSERT_TRUE(result.ok());
  const Duration latency = cluster.sim().Now() - start;
  // One round trip California <-> Mumbai (249 ms) plus small overheads.
  EXPECT_GE(latency, FromMillis(249));
  EXPECT_LE(latency, FromMillis(260));
  EXPECT_TRUE(requester->is_leader());
}

TEST(HandoffTest, RefusedWhileProposalsInFlight) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  // Start a proposal but do not drive the simulation to completion.
  cluster.replica(leader)->Submit(Value::Of(1, "x"),
                                  [](const Status&, SlotId, Duration) {});
  const Status st = cluster.replica(leader)->HandoffTo(3);
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_TRUE(cluster.replica(leader)->is_leader());
}

TEST(HandoffTest, OnlyLeadersMayRelinquish) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  EXPECT_TRUE(cluster.replica(5)->HandoffTo(6).IsFailedPrecondition());
}

TEST(HandoffTest, HandoffToSelfRejected) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  EXPECT_TRUE(cluster.replica(leader)->HandoffTo(leader).IsInvalidArgument());
}

TEST(HandoffTest, LostRelinquishLeavesNobodyLeader) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId old_leader = cluster.NodeInZone(0);
  const NodeId new_leader = cluster.NodeInZone(3);
  ASSERT_TRUE(cluster.ElectLeader(old_leader).ok());

  // Cut the link so the relinquish message is lost.
  cluster.transport().PartitionOneWay(old_leader, new_leader);
  ASSERT_TRUE(cluster.replica(old_leader)->HandoffTo(new_leader).ok());
  cluster.sim().RunFor(5 * kSecond);

  // Neither node can act as leader (paper: "If the message ... is lost,
  // then neither of them can act as the leader").
  EXPECT_FALSE(cluster.replica(old_leader)->is_leader());
  EXPECT_FALSE(cluster.replica(new_leader)->is_leader());

  // Recovery: a Leader Election round must take place.
  cluster.transport().HealAll();
  Replica* recovery = cluster.ReplicaInZone(2);
  recovery->PrimeBallot(Ballot{100, 0});
  ASSERT_TRUE(cluster.ElectLeader(recovery->id()).ok());
  ASSERT_TRUE(cluster.Commit(recovery->id(), Value::Of(9, "r")).ok());
}

TEST(HandoffTest, PullTimesOutWhenRequestLost) {
  ClusterOptions options;
  options.replica.propose_timeout = 500 * kMillisecond;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId old_leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(old_leader).ok());

  Replica* requester = cluster.ReplicaInZone(3);
  cluster.transport().Partition(requester->id(), old_leader);
  Status result;
  bool done = false;
  requester->RequestHandoffFrom(old_leader, [&](const Status& st) {
    result = st;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 30 * kSecond));
  EXPECT_TRUE(result.IsTimedOut());
  EXPECT_FALSE(requester->is_leader());
  EXPECT_TRUE(cluster.replica(old_leader)->is_leader());  // never asked
}

TEST(HandoffTest, ChainedHandoffsFollowMobility) {
  // A moving user: leadership hops across four zones without a single
  // Leader Election after the first.
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  NodeId current = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(current).ok());
  uint64_t value_id = 0;
  for (ZoneId z : {ZoneId{1}, ZoneId{2}, ZoneId{4}, ZoneId{6}}) {
    ASSERT_TRUE(
        cluster.Commit(current, Value::Synthetic(++value_id, 512)).ok());
    const NodeId next = cluster.NodeInZone(z);
    ASSERT_TRUE(cluster.replica(current)->HandoffTo(next).ok());
    ASSERT_TRUE(cluster.RunUntil(
        [&] { return cluster.replica(next)->is_leader(); }, 10 * kSecond));
    current = next;
  }
  ASSERT_TRUE(cluster.Commit(current, Value::Synthetic(99, 512)).ok());
  // One election total; log contiguous across all hops.
  uint64_t total_elections = 0;
  for (NodeId n : cluster.topology().AllNodes()) {
    total_elections += cluster.replica(n)->elections_won();
  }
  EXPECT_EQ(total_elections, 1u);
  EXPECT_EQ(cluster.replica(current)->next_slot(), 5u);
}

}  // namespace
}  // namespace dpaxos
