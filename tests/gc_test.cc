// Tests for the intents garbage collector (paper Section 4.3.4,
// Algorithm 3) including the Theorem 3 safety property.
#include <gtest/gtest.h>

#include <set>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

size_t TotalStoredIntents(Cluster& cluster) {
  size_t total = 0;
  for (NodeId n : cluster.topology().AllNodes()) {
    total += cluster.replica(n)->acceptor().intents().size();
  }
  return total;
}

// Number of distinct intents (by declaring ballot) stored anywhere.
size_t DistinctStoredIntents(Cluster& cluster) {
  std::set<std::pair<uint64_t, NodeId>> ballots;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const Intent& in : cluster.replica(n)->acceptor().intents()) {
      ballots.insert({in.ballot.round, in.ballot.node});
    }
  }
  return ballots.size();
}

// Churn leadership across zones, leaving intents behind.
void ChurnLeaders(Cluster& cluster, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const ZoneId zone = static_cast<ZoneId>(i) % cluster.topology().num_zones();
    const NodeId node = cluster.NodeInZone(zone, i % 2);
    ASSERT_TRUE(cluster.ElectLeader(node).ok());
    ASSERT_TRUE(cluster
                    .Commit(node, Value::Synthetic(
                                      1000 + static_cast<uint64_t>(i), 256))
                    .ok());
  }
}

TEST(GcTest, SweepCollectsObsoleteIntents) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ChurnLeaders(cluster, 8);
  const size_t before = TotalStoredIntents(cluster);
  ASSERT_GT(before, 8u);  // stale intents accumulated

  GarbageCollector* gc = cluster.AddGarbageCollector(0);
  gc->SweepOnce();
  cluster.sim().RunFor(3 * kSecond);

  const size_t after = TotalStoredIntents(cluster);
  EXPECT_LT(after, before);
  // The threshold is the highest ballot observed in a propose message.
  EXPECT_FALSE(gc->threshold().is_null());
  // Only the current leader's intent (ballot == threshold) may survive at
  // its voters; everything below the threshold is gone.
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const Intent& in : cluster.replica(n)->acceptor().intents()) {
      EXPECT_GE(in.ballot, gc->threshold());
    }
  }
}

TEST(GcTest, PeriodicPollingConverges) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ChurnLeaders(cluster, 6);
  GarbageCollector* gc =
      cluster.AddGarbageCollector(5, 0, 100 * kMillisecond);
  gc->Start();
  // One full round-robin pass over 21 nodes at 100 ms.
  cluster.sim().RunFor(4 * kSecond);
  gc->Stop();
  EXPECT_GE(gc->polls_sent(), 21u);
  // Only the current leader's intent survives collection (copies of it
  // remain at each of its voters).
  EXPECT_LE(DistinctStoredIntents(cluster), 1u);
}

TEST(GcTest, StopAndResumeRetainsThreshold) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ChurnLeaders(cluster, 3);
  GarbageCollector* gc = cluster.AddGarbageCollector(0);
  gc->Start();
  cluster.sim().RunFor(2 * kSecond);
  gc->Stop();
  const Ballot threshold = gc->threshold();
  EXPECT_FALSE(gc->running());
  gc->Start();
  EXPECT_TRUE(gc->running());
  EXPECT_GE(gc->threshold(), threshold);
  gc->Stop();
}

TEST(GcTest, MultipleCollectorsCoexist) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ChurnLeaders(cluster, 5);
  GarbageCollector* gc1 = cluster.AddGarbageCollector(0);
  GarbageCollector* gc2 = cluster.AddGarbageCollector(12);
  gc1->SweepOnce();
  gc2->SweepOnce();
  cluster.sim().RunFor(3 * kSecond);
  EXPECT_EQ(gc1->threshold(), gc2->threshold());
  EXPECT_LE(DistinctStoredIntents(cluster), 1u);
}

TEST(GcTest, Theorem3CollectedIntentQuorumRejectsItsBallot) {
  // Theorem 3: once an intent is garbage collected, its replication
  // quorum cannot accept proposals with the intent's ballot — replay the
  // paper's delayed-propose scenario.
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId old_leader = cluster.NodeInZone(1);
  ASSERT_TRUE(cluster.ElectLeader(old_leader).ok());
  ASSERT_TRUE(cluster.Commit(old_leader, Value::Of(1, "a")).ok());
  const Ballot old_ballot = cluster.replica(old_leader)->ballot();
  const std::vector<NodeId> old_quorum =
      cluster.replica(old_leader)->declared_intents()[0].quorum;

  // A new leader takes over (intersecting the old quorum), then GC runs.
  const NodeId new_leader = cluster.NodeInZone(4);
  cluster.replica(new_leader)->PrimeBallot(old_ballot);
  ASSERT_TRUE(cluster.ElectLeader(new_leader).ok());
  ASSERT_TRUE(cluster.Commit(new_leader, Value::Of(2, "b")).ok());
  GarbageCollector* gc = cluster.AddGarbageCollector(0);
  gc->SweepOnce();
  cluster.sim().RunFor(3 * kSecond);
  ASSERT_GE(gc->threshold(), old_ballot);

  // A delayed propose from the old leader's ballot arrives at its old
  // replication quorum: at least one member must reject it.
  auto delayed = std::make_shared<ProposeMsg>(
      0, old_ballot, /*slot=*/7, Value::Of(99, "delayed"));
  for (NodeId n : old_quorum) {
    cluster.transport().Send(old_leader, n, delayed);
  }
  cluster.sim().RunFor(2 * kSecond);
  bool some_rejected = false;
  for (NodeId n : old_quorum) {
    const AcceptedEntry* e = cluster.replica(n)->acceptor().AcceptedFor(7);
    if (e == nullptr || e->ballot != old_ballot) some_rejected = true;
  }
  EXPECT_TRUE(some_rejected)
      << "the full collected-intent quorum accepted a stale proposal";
}

TEST(GcTest, LeaderBroadcastVariantCollectsOnElection) {
  ClusterOptions options;
  options.replica.leader_broadcasts_gc_threshold = true;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  ChurnLeaders(cluster, 6);
  cluster.sim().RunFor(2 * kSecond);
  // Every election broadcast its ballot as threshold: at most the current
  // leader's own intent remains per acceptor.
  for (NodeId n : cluster.topology().AllNodes()) {
    EXPECT_LE(cluster.replica(n)->acceptor().intents().size(), 1u);
  }
}

TEST(GcTest, PollsAreRoundRobin) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  GarbageCollector* gc =
      cluster.AddGarbageCollector(0, 0, 10 * kMillisecond);
  gc->Start();
  cluster.sim().RunFor(500 * kMillisecond);
  gc->Stop();
  // 21 nodes at one poll per 10 ms: at least two full passes in 500 ms.
  EXPECT_GE(gc->polls_sent(), 42u);
}

}  // namespace
}  // namespace dpaxos
