// Tests for leader-based read leases (paper Section 4.5): acquisition via
// piggybacked votes, local reads, election blocking, expiry, and the
// lease/garbage-collection interaction.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

ClusterOptions LeaseOptions(Duration lease = 10 * kSecond) {
  ClusterOptions options;
  options.replica.enable_leases = true;
  options.replica.lease_duration = lease;
  return options;
}

TEST(LeaseTest, AcquiredWithReplicationQuorumOnly) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  LeaseOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  EXPECT_FALSE(cluster.replica(leader)->CanServeLocalRead());

  // One committed value acquires the lease: lease requests/votes ride on
  // propose/accept within the replication quorum — no extra round.
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  EXPECT_TRUE(cluster.replica(leader)->CanServeLocalRead());
}

TEST(LeaseTest, DisabledByDefault) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  EXPECT_FALSE(cluster.replica(leader)->CanServeLocalRead());
}

TEST(LeaseTest, ExpiresWithoutRenewal) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  LeaseOptions(2 * kSecond));
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  ASSERT_TRUE(cluster.replica(leader)->CanServeLocalRead());

  cluster.sim().RunFor(3 * kSecond);
  EXPECT_FALSE(cluster.replica(leader)->CanServeLocalRead());
}

TEST(LeaseTest, RenewedImplicitlyByCommits) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  LeaseOptions(2 * kSecond));
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, Value::Of(i, "v")).ok());
    cluster.sim().RunFor(1 * kSecond);
    EXPECT_TRUE(cluster.replica(leader)->CanServeLocalRead())
        << "after commit " << i;
  }
}

TEST(LeaseTest, BlocksRivalElectionsUntilExpiry) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  LeaseOptions(3 * kSecond));
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  const Timestamp lease_acquired = cluster.sim().Now();

  // A rival cannot be elected while the lease holds: its prepares are
  // refused by the lease-bound acceptors (the leader's own zone, which
  // is also the Leader Zone).
  Replica* rival = cluster.ReplicaInZone(3);
  rival->PrimeBallot(cluster.replica(leader)->ballot());
  Status result;
  bool done = false;
  rival->TryBecomeLeader([&](const Status& st) {
    result = st;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 60 * kSecond));
  ASSERT_TRUE(result.ok());  // eventually wins — but only after expiry
  EXPECT_GE(cluster.sim().Now(), lease_acquired + 3 * kSecond);
}

TEST(LeaseTest, SafetyNoTwoConcurrentLeaseHolders) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  LeaseOptions(5 * kSecond));
  const NodeId a = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(a).ok());
  ASSERT_TRUE(cluster.Commit(a, Value::Of(1, "a")).ok());
  ASSERT_TRUE(cluster.replica(a)->CanServeLocalRead());

  // Force a leadership change (waits out the lease), then acquire at b.
  Replica* b = cluster.ReplicaInZone(2);
  b->PrimeBallot(cluster.replica(a)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(b->id()).ok());
  ASSERT_TRUE(cluster.Commit(b->id(), Value::Of(2, "b")).ok());

  // At no instant do both hold a valid lease: a lost leadership before b
  // could acquire (b's election required a's lease to expire).
  EXPECT_TRUE(b->CanServeLocalRead());
  EXPECT_FALSE(cluster.replica(a)->CanServeLocalRead());
}

TEST(LeaseTest, GcNeverCollectsLeaseHolderIntent) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  LeaseOptions(30 * kSecond));
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  const Ballot leader_ballot = cluster.replica(leader)->ballot();

  // Run the garbage collector with a threshold above everything.
  GarbageCollector* gc = cluster.AddGarbageCollector(1);
  gc->SweepOnce();
  cluster.sim().RunFor(3 * kSecond);

  // The lease-voting acceptors (the replication quorum: nodes 0 and 1)
  // keep the current lease holder's intent.
  int still_holding = 0;
  for (NodeId n : {NodeId{0}, NodeId{1}}) {
    for (const Intent& in : cluster.replica(n)->acceptor().intents()) {
      if (in.ballot == leader_ballot) ++still_holding;
    }
  }
  EXPECT_EQ(still_holding, 2);
}

TEST(LeaseTest, MajorityModeLeasesAlsoWork) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kMultiPaxos,
                  LeaseOptions());
  const NodeId leader = cluster.NodeInZone(2);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  EXPECT_TRUE(cluster.replica(leader)->CanServeLocalRead());
}

}  // namespace
}  // namespace dpaxos
