// Tests for request forwarding (SubmitOrForward) and the Client session
// layer — the paper's remote-request model (Section 5.3).
#include <gtest/gtest.h>

#include <optional>

#include "client/client.h"
#include "harness/cluster.h"
#include "workload/oltp.h"

namespace dpaxos {
namespace {

Result<Duration> ForwardCommit(Cluster& cluster, Replica* origin,
                               Value value) {
  std::optional<Status> done;
  Duration latency = 0;
  origin->SubmitOrForward(std::move(value),
                          [&](const Status& st, SlotId, Duration lat) {
                            done = st;
                            latency = lat;
                          });
  while (!done.has_value() && cluster.sim().Step()) {
  }
  if (!done.has_value()) return Status::Internal("no progress");
  if (!done->ok()) return *done;
  return latency;
}

TEST(ForwardingTest, RemoteRequestPaysForwardRoundTrip) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);  // California
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  Replica* origin = cluster.ReplicaInZone(6);  // Mumbai
  origin->set_leader_hint(leader);
  Result<Duration> latency =
      ForwardCommit(cluster, origin, Value::Synthetic(1, 1024));
  ASSERT_TRUE(latency.ok()) << latency.status().ToString();
  // Forward + reply = one Mumbai-California round trip (249 ms) on top of
  // the ~11 ms local commit.
  EXPECT_GE(latency.value(), FromMillis(249 + 11));
  EXPECT_LE(latency.value(), FromMillis(249 + 25));
}

TEST(ForwardingTest, LeaderHandlesOwnSubmitLocally) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  Result<Duration> latency = ForwardCommit(
      cluster, cluster.replica(leader), Value::Synthetic(1, 1024));
  ASSERT_TRUE(latency.ok());
  EXPECT_LE(latency.value(), FromMillis(15));
}

TEST(ForwardingTest, QuorumMembersLearnHintFromTraffic) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(1, 64)).ok());
  // Node 1 accepted the propose and learned who leads.
  EXPECT_EQ(cluster.replica(1)->leader_hint(), leader);
}

TEST(ForwardingTest, StaleHintIsRedirected) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId first = cluster.NodeInZone(0, 0);
  ASSERT_TRUE(cluster.ElectLeader(first).ok());
  ASSERT_TRUE(cluster.Commit(first, Value::Synthetic(1, 64)).ok());

  // Leadership moves to node 1 via handoff; node 0 knows the new leader.
  const NodeId second = cluster.NodeInZone(0, 1);
  std::optional<Status> handed;
  cluster.replica(second)->RequestHandoffFrom(
      first, [&](const Status& st) { handed = st; });
  ASSERT_TRUE(cluster.RunUntil([&] { return handed.has_value(); },
                               10 * kSecond));
  ASSERT_TRUE(handed->ok());
  cluster.replica(first)->set_leader_hint(second);

  // A remote origin still pointing at the OLD leader gets redirected and
  // its request commits at the new one.
  Replica* origin = cluster.ReplicaInZone(3);
  origin->set_leader_hint(first);
  Result<Duration> latency =
      ForwardCommit(cluster, origin, Value::Synthetic(2, 64));
  ASSERT_TRUE(latency.ok()) << latency.status().ToString();
  EXPECT_EQ(origin->leader_hint(), second);
}

TEST(ForwardingTest, FailsCleanlyWhenLeaderUnreachable) {
  ClusterOptions options;
  options.replica.propose_timeout = 200 * kMillisecond;
  options.replica.max_propose_retries = 2;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  Replica* origin = cluster.ReplicaInZone(5);
  origin->set_leader_hint(leader);
  cluster.transport().Crash(leader);

  Result<Duration> latency =
      ForwardCommit(cluster, origin, Value::Synthetic(1, 64));
  EXPECT_FALSE(latency.ok());
  EXPECT_TRUE(latency.status().IsTimedOut());
}

TEST(ClientTest, ExecutesTransactionsThroughAccessReplica) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  Client client(&cluster.sim(), cluster.replica(leader));
  OltpGenerator gen(OltpConfig{.num_keys = 100}, 5);
  bool done = false;
  client.Execute(gen.Next(), [&](const Status& st, Duration) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 10 * kSecond));
  EXPECT_EQ(client.committed(), 1u);
  EXPECT_EQ(client.failed(), 0u);
  EXPECT_NEAR(client.latency().MeanMillis(), 11.0, 3.0);
}

TEST(ClientTest, RemoteClientForwardsThroughItsAccessReplica) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  Replica* access = cluster.ReplicaInZone(3);  // Tokyo user
  access->set_leader_hint(leader);
  Client client(&cluster.sim(), access);
  OltpGenerator gen(OltpConfig{.num_keys = 100}, 6);
  bool done = false;
  client.Execute(gen.Next(), [&](const Status&, Duration) { done = true; });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 10 * kSecond));
  // Tokyo-California RTT (113 ms) + local commit.
  EXPECT_NEAR(client.latency().MeanMillis(), 113 + 12, 5.0);
}

TEST(ClientTest, ReadOnlyServedLocallyUnderLease) {
  ClusterOptions options;
  options.replica.enable_leases = true;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(1, 64)).ok());

  Client client(&cluster.sim(), cluster.replica(leader));
  Transaction ro;
  ro.id = 1;
  ro.ops = {Operation::Get("a"), Operation::Get("b")};
  bool done = false;
  Duration lat = 0;
  client.ExecuteReadOnly(ro, [&](const Status& st, Duration l) {
    EXPECT_TRUE(st.ok());
    lat = l;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 5 * kSecond));
  EXPECT_EQ(client.local_reads(), 1u);
  EXPECT_LT(lat, kMillisecond);  // paper: read-only < 1 ms
}

TEST(ClientTest, ReadOnlyWithoutLeaseGoesThroughConsensus) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  Client client(&cluster.sim(), cluster.replica(leader));
  Transaction ro;
  ro.id = 1;
  ro.ops = {Operation::Get("a")};
  bool done = false;
  Duration lat = 0;
  client.ExecuteReadOnly(ro, [&](const Status&, Duration l) {
    lat = l;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 5 * kSecond));
  EXPECT_EQ(client.local_reads(), 0u);
  EXPECT_GE(lat, FromMillis(10));  // replicated
}

}  // namespace
}  // namespace dpaxos
