// Unit tests for QuorumRule: satisfaction, impossibility, intersection
// checking and merging.
#include <gtest/gtest.h>

#include "quorum/quorum_rule.h"

namespace dpaxos {
namespace {

std::set<NodeId> S(std::initializer_list<NodeId> nodes) { return nodes; }

TEST(MajorityOfTest, Values) {
  EXPECT_EQ(MajorityOf(1), 1u);
  EXPECT_EQ(MajorityOf(2), 2u);
  EXPECT_EQ(MajorityOf(3), 2u);
  EXPECT_EQ(MajorityOf(4), 3u);
  EXPECT_EQ(MajorityOf(5), 3u);
  EXPECT_EQ(MajorityOf(21), 11u);
}

TEST(QuorumRuleTest, SimpleMajority) {
  const QuorumRule rule = QuorumRule::Simple({0, 1, 2, 3, 4}, 3);
  EXPECT_FALSE(rule.IsSatisfied(S({0, 1})));
  EXPECT_TRUE(rule.IsSatisfied(S({0, 1, 2})));
  EXPECT_TRUE(rule.IsSatisfied(S({0, 1, 2, 3, 4})));
  // Non-candidates never count.
  EXPECT_FALSE(rule.IsSatisfied(S({0, 1, 7})));
}

TEST(QuorumRuleTest, EmptyRuleIsTriviallySatisfied) {
  const QuorumRule rule;
  EXPECT_TRUE(rule.IsSatisfied({}));
  EXPECT_FALSE(rule.IsImpossible({}));
  EXPECT_FALSE(rule.AlwaysIntersects(S({0})));
}

TEST(QuorumRuleTest, KOfNGroups) {
  // 2 of 3 zone requirements, each needing 2 acks.
  const QuorumRule rule = QuorumRule::OfGroup(
      {{{0, 1, 2}, 2}, {{3, 4, 5}, 2}, {{6, 7, 8}, 2}}, 2);
  EXPECT_FALSE(rule.IsSatisfied(S({0, 1, 3})));      // only one zone done
  EXPECT_TRUE(rule.IsSatisfied(S({0, 1, 3, 4})));    // two zones
  EXPECT_TRUE(rule.IsSatisfied(S({1, 2, 7, 8})));    // any two zones
  EXPECT_FALSE(rule.IsSatisfied(S({0, 3, 6})));      // one ack each
}

TEST(QuorumRuleTest, ConjunctionOfGroups) {
  QuorumGroup a{{QuorumRequirement{{0, 1, 2}, 2}}, 1};
  QuorumGroup b{{QuorumRequirement{{5, 6}, 1}}, 1};
  const QuorumRule rule({a, b});
  EXPECT_FALSE(rule.IsSatisfied(S({0, 1})));
  EXPECT_FALSE(rule.IsSatisfied(S({5})));
  EXPECT_TRUE(rule.IsSatisfied(S({0, 1, 6})));
}

TEST(QuorumRuleTest, ImpossibleWhenRejectionsBlock) {
  const QuorumRule rule = QuorumRule::Simple({0, 1, 2}, 2);
  EXPECT_FALSE(rule.IsImpossible(S({0})));
  EXPECT_TRUE(rule.IsImpossible(S({0, 1})));
}

TEST(QuorumRuleTest, ImpossibleKOfN) {
  const QuorumRule rule =
      QuorumRule::OfGroup({{{0, 1}, 2}, {{2, 3}, 2}, {{4, 5}, 2}}, 2);
  EXPECT_FALSE(rule.IsImpossible(S({0})));       // zones {2,3},{4,5} remain
  EXPECT_TRUE(rule.IsImpossible(S({0, 2})));     // only one zone remains
}

TEST(QuorumRuleTest, AlwaysIntersectsSingleRequirement) {
  // Any 2-of-3 quorum intersects {0,1} (can't pick 2 from {2} alone).
  const QuorumRule rule = QuorumRule::Simple({0, 1, 2}, 2);
  EXPECT_TRUE(rule.AlwaysIntersects(S({0, 1})));
  // ...but not {0}: the quorum {1,2} avoids it.
  EXPECT_FALSE(rule.AlwaysIntersects(S({0})));
}

TEST(QuorumRuleTest, AlwaysIntersectsKOfN) {
  // Majority of 3 zone-majorities vs a full zone: avoidable (pick the
  // other two zones).
  const QuorumRule rule =
      QuorumRule::OfGroup({{{0, 1, 2}, 2}, {{3, 4, 5}, 2}, {{6, 7, 8}, 2}}, 2);
  EXPECT_FALSE(rule.AlwaysIntersects(S({0, 1, 2})));
  // Two full zones cannot be avoided by a 2-of-3 zone rule.
  EXPECT_TRUE(rule.AlwaysIntersects(S({0, 1, 2, 3, 4, 5})));
}

TEST(QuorumRuleTest, PickSatisfyingSetAvoiding) {
  const QuorumRule rule = QuorumRule::Simple({0, 1, 2, 3}, 2);
  const std::vector<NodeId> picked = rule.PickSatisfyingSetAvoiding(S({0}));
  ASSERT_EQ(picked.size(), 2u);
  std::set<NodeId> set(picked.begin(), picked.end());
  EXPECT_EQ(set.count(0), 0u);
  EXPECT_TRUE(rule.IsSatisfied(set));
}

TEST(QuorumRuleTest, PickSatisfyingSetAvoidingImpossible) {
  const QuorumRule rule = QuorumRule::Simple({0, 1, 2}, 2);
  EXPECT_TRUE(rule.PickSatisfyingSetAvoiding(S({0, 1})).empty());
}

TEST(QuorumRuleTest, PickSatisfyingSetReusesNodesAcrossGroups) {
  QuorumGroup a{{QuorumRequirement{{0, 1, 2}, 2}}, 1};
  QuorumGroup b{{QuorumRequirement{{1, 2, 3}, 1}}, 1};
  const QuorumRule rule({a, b});
  const std::vector<NodeId> picked = rule.PickSatisfyingSetAvoiding({});
  EXPECT_LE(picked.size(), 2u);  // {0,1} satisfies both groups
  EXPECT_TRUE(
      rule.IsSatisfied(std::set<NodeId>(picked.begin(), picked.end())));
}

TEST(QuorumRuleTest, MergedWithIsConjunction) {
  const QuorumRule base = QuorumRule::Simple({0, 1, 2}, 2);
  const QuorumRule expansion = QuorumRule::Simple({5, 6}, 1);
  const QuorumRule merged = base.MergedWith(expansion);
  EXPECT_FALSE(merged.IsSatisfied(S({0, 1})));
  EXPECT_FALSE(merged.IsSatisfied(S({5})));
  EXPECT_TRUE(merged.IsSatisfied(S({0, 1, 5})));
  EXPECT_EQ(merged.groups().size(), 2u);
}

TEST(QuorumRuleTest, TargetsAreSortedUniqueUnion) {
  QuorumGroup a{{QuorumRequirement{{3, 1, 1}, 1}}, 1};
  QuorumGroup b{{QuorumRequirement{{2, 3}, 1}}, 1};
  const QuorumRule rule({a, b});
  EXPECT_EQ(rule.Targets(), (std::vector<NodeId>{1, 2, 3}));
}

TEST(QuorumRuleTest, ToStringIsReadable) {
  const QuorumRule rule = QuorumRule::Simple({0, 1}, 2);
  EXPECT_EQ(rule.ToString(), "rule{1of[2/{0 1}]}");
}

}  // namespace
}  // namespace dpaxos
