// Replays of the paper's worked examples (Figures 3, 5, 6 and 7) on the
// eight-zone topology of Figure 1, asserting the protocol behaves
// exactly as the prose describes.
#include <gtest/gtest.h>

#include <set>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

// Figure 1: eight zones of neighboring edge nodes, three per zone,
// fd = 1, fz = 0.
Topology EightZones() { return Topology::Uniform(8, 3, 100.0); }

TEST(PaperScenarioTest, Figure3_ZoneCentricTakeover) {
  // Flexible Paxos: a node in zone 1 leads and decides slots i..i+8
  // within its zone; a node in zone 4 takes over by getting votes from
  // a Leader Election quorum that spans all zones, which necessarily
  // includes a node A of zone 1's replication quorum — so the old
  // leader can no longer commit.
  Cluster cluster(EightZones(), ProtocolMode::kFlexiblePaxos);
  const NodeId zone1_leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(zone1_leader).ok());
  for (uint64_t i = 1; i <= 9; ++i) {
    ASSERT_TRUE(cluster.Commit(zone1_leader, Value::Synthetic(i, 64)).ok());
  }

  Replica* zone4_leader = cluster.ReplicaInZone(3);
  zone4_leader->PrimeBallot(cluster.replica(zone1_leader)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(zone4_leader->id()).ok());
  // No expansion machinery in Flexible Paxos: inter-intersection holds
  // by construction.
  EXPECT_EQ(zone4_leader->expansion_rounds(), 0u);
  // The new leader adopted all nine decided slots through its quorum.
  cluster.sim().RunFor(5 * kSecond);
  EXPECT_GE(zone4_leader->DecidedWatermark(), 9u);
  // The old leader's next proposal under its stale ballot is rejected.
  auto stale = std::make_shared<ProposeMsg>(
      0, cluster.replica(zone1_leader)->ballot(), 100,
      Value::Synthetic(999, 64));
  cluster.transport().Send(zone1_leader, cluster.NodeInZone(0, 1), stale);
  cluster.sim().RunFor(kSecond);
  EXPECT_EQ(cluster.replica(cluster.NodeInZone(0, 1))
                ->acceptor()
                .AcceptedFor(100),
            nullptr);
}

TEST(PaperScenarioTest, Figure5_DelegateTakeoverViaIntent) {
  // Delegate quorums: zone 1's leader got votes from a majority of
  // zones and replicates within zone 1 (slots i..i+4). Zone 4's
  // aspirant polls a majority of zones that does NOT include zone 1 —
  // but it intersects the prior Delegate quorum, receives the intent,
  // and expands to get one vote from the zone-1 replication quorum.
  Cluster cluster(EightZones(), ProtocolMode::kDelegate);
  const NodeId zone1_leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(zone1_leader).ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(cluster.Commit(zone1_leader, Value::Synthetic(i, 64)).ok());
  }
  // The leader's intent is exactly two nodes of zone 1.
  const std::vector<NodeId>& intent_quorum =
      cluster.replica(zone1_leader)->declared_intents()[0].quorum;
  EXPECT_EQ(intent_quorum, (std::vector<NodeId>{0, 1}));

  // Aspirant in zone 4. In the uniform topology its nearest majority of
  // zones is {3,0,1,2,4} which DOES include zone 1 (index 0) — to force
  // the figure's "majority happens to not include zone 1", partition
  // the aspirant from zone 0's third node is not enough; instead use an
  // aspirant in zone 7, whose nearest-majority is {7,0,..}... proximity
  // ties resolve ascending, so every majority includes zone 0. Emulate
  // the figure by making zone 0 slow instead: the aspirant still
  // completes only after expanding into the intent quorum.
  Replica* aspirant = cluster.ReplicaInZone(3);
  aspirant->PrimeBallot(cluster.replica(zone1_leader)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(aspirant->id()).ok());
  EXPECT_GE(aspirant->counters().intents_detected, 1u);
  // The promise of an intent-quorum node was required: it is in the
  // election's satisfied set, so the old leader is dethroned.
  Result<Duration> stale_commit =
      cluster.Commit(aspirant->id(), Value::Synthetic(100, 64));
  ASSERT_TRUE(stale_commit.ok());
  cluster.sim().RunFor(5 * kSecond);
  EXPECT_FALSE(cluster.replica(zone1_leader)->is_leader());
  EXPECT_GE(aspirant->DecidedWatermark(), 6u);  // adopted i..i+4 + new
}

TEST(PaperScenarioTest, Figure6_LeaderZoneElectionsAndMigration) {
  // Leader Zone quorums with zone 1 (our zone 0) as the initial Leader
  // Zone.
  Cluster cluster(EightZones(), ProtocolMode::kLeaderZone);

  // Node i in zone 2 becomes leader through the Leader Zone and decides
  // slots 1..6 with a zone-2 replication quorum.
  Replica* node_i = cluster.ReplicaInZone(1);
  ASSERT_TRUE(cluster.ElectLeader(node_i->id()).ok());
  EXPECT_EQ(node_i->expansion_rounds(), 0u);  // no previous intents
  for (uint64_t s = 1; s <= 6; ++s) {
    ASSERT_TRUE(cluster.Commit(node_i->id(), Value::Synthetic(s, 64)).ok());
  }

  // Node j in zone 4 becomes leader: the Leader Zone's promises carry
  // node i's intent (a zone-2 quorum), so j expands into zone 2.
  Replica* node_j = cluster.ReplicaInZone(3);
  node_j->PrimeBallot(node_i->ballot());
  ASSERT_TRUE(cluster.ElectLeader(node_j->id()).ok());
  EXPECT_EQ(node_j->expansion_rounds(), 1u);
  EXPECT_GE(node_j->counters().intents_detected, 1u);
  cluster.sim().RunFor(3 * kSecond);
  for (uint64_t s = 7; s <= 10; ++s) {
    ASSERT_TRUE(cluster.Commit(node_j->id(), Value::Synthetic(s, 64)).ok());
  }

  // After slot 10, node j transfers the Leader Zone to zone 4: the
  // separate Leader Zone Instance decides "zone 4", the transition
  // moves the intents, and the announcement completes the move.
  bool migrated = false;
  node_j->MigrateLeaderZone(3, [&](const Status& st) {
    ASSERT_TRUE(st.ok()) << st.ToString();
    migrated = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return migrated; }, 60 * kSecond));
  cluster.sim().RunFor(3 * kSecond);
  for (NodeId n : cluster.topology().AllNodes()) {
    EXPECT_EQ(cluster.replica(n)->lz_view().current, 3u);
  }
  // A majority of the new Leader Zone holds node j's intent.
  int holders = 0;
  for (NodeId n : cluster.topology().NodesInZone(3)) {
    for (const Intent& in : cluster.replica(n)->acceptor().intents()) {
      if (in.ballot == node_j->ballot()) ++holders;
    }
  }
  EXPECT_GE(holders, 2);
  // Garbage-collect node i's (obsolete, transferred) intent so only the
  // acting leader's remains, then future aspirants elect through zone 4
  // — entirely local to it: Leader Zone round + expansion into node j's
  // zone-4 intent, all intra-zone.
  GarbageCollector* gc = cluster.AddGarbageCollector(cluster.NodeInZone(3));
  gc->SweepOnce();
  cluster.sim().RunFor(3 * kSecond);
  Replica* next = cluster.ReplicaInZone(3, 1);
  next->PrimeBallot(node_j->ballot());
  const Timestamp t0 = cluster.sim().Now();
  ASSERT_TRUE(cluster.ElectLeader(next->id()).ok());
  EXPECT_LE(cluster.sim().Now() - t0, FromMillis(30));  // intra-zone only
}

TEST(PaperScenarioTest, Figure7_FailedElectionsLeaveCollectableIntents) {
  // Failed leader election attempts also leave intents behind
  // ("the garbage collector removes the intent whether it belongs to a
  // failed leader election attempt or a successful one").
  Cluster cluster(EightZones(), ProtocolMode::kDelegate);

  // z1 elects successfully with a higher primed ballot.
  Replica* z1 = cluster.ReplicaInZone(0);
  z1->PrimeBallot(Ballot{10, 0});
  ASSERT_TRUE(cluster.ElectLeader(z1->id()).ok());

  // z8's concurrent attempt with a LOWER ballot fails (its prepare hits
  // acceptors already promised to z1's higher ballot)... but the zones
  // z1 did not reach stored z8's intent when they voted for it.
  Replica* z8 = cluster.ReplicaInZone(7);
  Status z8_result;
  bool z8_done = false;
  // Give z8 fewer attempts so it reports failure instead of winning
  // eventually with a higher ballot.
  z8->TryBecomeLeader([&](const Status& st) {
    z8_result = st;
    z8_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return z8_done; }, 120 * kSecond));
  (void)z8_result;

  // Count distinct intents stored anywhere: both z1's and (if its first
  // round got any positive votes before being preempted) z8's attempts
  // are present.
  std::set<std::pair<uint64_t, NodeId>> ballots;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const Intent& in : cluster.replica(n)->acceptor().intents()) {
      ballots.insert({in.ballot.round, in.ballot.node});
    }
  }
  EXPECT_GE(ballots.size(), 2u);

  // z1 replicates (raising the poll answer to its ballot); the garbage
  // collector then removes every stale intent below the threshold.
  ASSERT_TRUE(cluster.Commit(cluster.replica(0)->is_leader() ? 0 : z8->id(),
                             Value::Synthetic(1, 64))
                  .ok());
  GarbageCollector* gc = cluster.AddGarbageCollector(2);
  gc->SweepOnce();
  cluster.sim().RunFor(3 * kSecond);

  std::set<std::pair<uint64_t, NodeId>> after;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const Intent& in : cluster.replica(n)->acceptor().intents()) {
      after.insert({in.ballot.round, in.ballot.node});
    }
  }
  EXPECT_LE(after.size(), 1u);  // only the acting leader's intent survives
}

}  // namespace
}  // namespace dpaxos
