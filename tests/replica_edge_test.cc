// Edge-case tests for the Replica: duplicate/stale message tolerance,
// submission paths, multi-programming windows, decide policies, and
// miscellaneous guards.
#include <gtest/gtest.h>

#include <optional>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

TEST(ReplicaEdgeTest, DuplicatedMessagesAreIdempotent) {
  ClusterOptions options;
  options.transport.duplicate_probability = 0.5;  // heavy replay
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 20; ++i) {
    Result<Duration> r = cluster.Commit(leader, Value::Synthetic(i, 256));
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
  }
  cluster.sim().RunFor(5 * kSecond);
  EXPECT_EQ(cluster.replica(leader)->DecidedWatermark(), 20u);
  // No duplicated decisions: exactly 20 slots.
  EXPECT_EQ(cluster.replica(leader)->decided().size(), 20u);
}

TEST(ReplicaEdgeTest, DuplicationPlusLossAcrossModes) {
  for (ProtocolMode mode : {ProtocolMode::kMultiPaxos,
                            ProtocolMode::kDelegate,
                            ProtocolMode::kLeaderless}) {
    ClusterOptions options;
    options.transport.duplicate_probability = 0.3;
    options.transport.drop_probability = 0.05;
    options.replica.propose_timeout = 300 * kMillisecond;
    Cluster cluster(Topology::AwsSevenZones(), mode, options);
    const NodeId proposer = cluster.NodeInZone(1);
    int ok = 0;
    for (uint64_t i = 1; i <= 10; ++i) {
      if (cluster.Commit(proposer, Value::Synthetic(i, 128)).ok()) ++ok;
    }
    EXPECT_GE(ok, 9) << ProtocolModeName(mode);
    EXPECT_EQ(cluster.replica(proposer)->decided().size(),
              static_cast<size_t>(ok))
        << ProtocolModeName(mode);
  }
}

TEST(ReplicaEdgeTest, SubmitFailsFastWithoutAutoElect) {
  ClusterOptions options;
  options.replica.auto_elect_on_submit = false;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  Status st;
  cluster.replica(5)->Submit(Value::Of(1, "x"),
                             [&](const Status& s, SlotId, Duration) {
                               st = s;
                             });
  EXPECT_TRUE(st.IsFailedPrecondition());
}

TEST(ReplicaEdgeTest, SubmitDuringCandidacyQueuesBehindElection) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Replica* r = cluster.ReplicaInZone(3);
  r->TryBecomeLeader([](const Status&) {});
  ASSERT_TRUE(r->is_candidate());

  std::optional<Status> commit;
  r->Submit(Value::Of(1, "queued"),
            [&](const Status& st, SlotId, Duration) { commit = st; });
  ASSERT_TRUE(
      cluster.RunUntil([&] { return commit.has_value(); }, 30 * kSecond));
  EXPECT_TRUE(commit->ok());
  EXPECT_TRUE(r->is_leader());
}

TEST(ReplicaEdgeTest, WindowOverflowQueuesAndDrains) {
  ClusterOptions options;
  options.replica.max_inflight = 2;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  int committed = 0;
  for (uint64_t i = 1; i <= 6; ++i) {
    cluster.replica(leader)->Submit(
        Value::Synthetic(i, 128),
        [&](const Status& st, SlotId, Duration) {
          if (st.ok()) ++committed;
        });
  }
  ASSERT_TRUE(cluster.RunUntil([&] { return committed == 6; }, 30 * kSecond));
  EXPECT_EQ(cluster.replica(leader)->next_slot(), 6u);
}

TEST(ReplicaEdgeTest, DecidePolicyAllInformsEveryNode) {
  ClusterOptions options;
  options.replica.decide_policy = DecidePolicy::kAll;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "x")).ok());
  cluster.sim().RunFor(2 * kSecond);
  for (NodeId n : cluster.topology().AllNodes()) {
    EXPECT_EQ(cluster.replica(n)->decided().size(), 1u) << "node " << n;
  }
}

TEST(ReplicaEdgeTest, DecidePolicyNoneInformsOnlyTheLeader) {
  ClusterOptions options;
  options.replica.decide_policy = DecidePolicy::kNone;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "x")).ok());
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_EQ(cluster.replica(leader)->decided().size(), 1u);
  EXPECT_EQ(cluster.replica(cluster.NodeInZone(0, 1))->decided().size(), 0u);
}

TEST(ReplicaEdgeTest, DecidePolicyZoneInformsLeaderZoneOnly) {
  ClusterOptions options;
  options.replica.decide_policy = DecidePolicy::kZone;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(2);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "x")).ok());
  cluster.sim().RunFor(2 * kSecond);
  for (NodeId n : cluster.topology().NodesInZone(2)) {
    EXPECT_EQ(cluster.replica(n)->decided().size(), 1u);
  }
  EXPECT_EQ(cluster.replica(cluster.NodeInZone(5))->decided().size(), 0u);
}

TEST(ReplicaEdgeTest, StaleAcceptsForOldBallotsAreIgnored) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "x")).ok());

  // Hand-craft an accept for a bogus old ballot: must be ignored.
  auto stale = std::make_shared<AcceptMsg>(0, Ballot{0, 9}, 99);
  cluster.transport().Send(3, leader, stale);
  cluster.sim().RunFor(kSecond);
  EXPECT_EQ(cluster.replica(leader)->decided().count(99), 0u);
}

TEST(ReplicaEdgeTest, ZeroWindowIsTreatedAsOne) {
  ClusterOptions options;
  options.replica.max_inflight = 0;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  EXPECT_TRUE(cluster.Commit(leader, Value::Of(1, "x")).ok());
}

TEST(ReplicaEdgeTest, RefreshLeadershipDeclinesWithWorkInFlight) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  cluster.replica(leader)->Submit(Value::Of(1, "x"),
                                  [](const Status&, SlotId, Duration) {});
  Status st;
  cluster.replica(leader)->RefreshLeadership(
      [&](const Status& s) { st = s; });
  EXPECT_TRUE(st.IsFailedPrecondition());
}

TEST(ReplicaEdgeTest, LargeValuesSurviveThePipeline) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  std::string big(512 * 1024, 'B');
  Result<Duration> r = cluster.Commit(leader, Value::Of(1, big));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cluster.replica(leader)->decided().at(0).payload.size(),
            big.size());
  // Intra-zone replication keeps even 512 KB values fast (no WAN cap).
  EXPECT_LT(r.value(), FromMillis(100));
}

}  // namespace
}  // namespace dpaxos
