// Multi-process cluster tests (realnet tier): fork/exec a 2-zone,
// 4-node `dpaxos_cli --serve` cluster on 127.0.0.1, drive it with the
// blocking TcpClient, and exercise the paths that only exist with real
// processes — crash via SIGKILL, restart with empty state, snapshot
// catch-up over TCP, graceful SIGTERM shutdown.
//
// Labeled `realnet` and excluded from the tier-1 default: these tests
// spawn processes and depend on wall-clock pacing. The CLI path is
// stamped in by CMake as DPAXOS_CLI_PATH.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/real_cluster.h"
#include "net/tcp/tcp_client.h"

namespace dpaxos {
namespace {

#ifndef DPAXOS_CLI_PATH
#define DPAXOS_CLI_PATH ""
#endif

constexpr Duration kCallTimeout = 5 * kSecond;

RealClusterOptions BaseOptions(ProtocolMode mode, uint64_t seed) {
  RealClusterOptions options;
  options.server_binary = DPAXOS_CLI_PATH;
  options.mode = mode;
  options.seed = seed;
  const char* log_dir = std::getenv("DPAXOS_TEST_LOG_DIR");
  if (log_dir != nullptr) options.log_dir = log_dir;
  return options;
}

// Empty per-test scratch tree for durable-mode WAL directories.
std::string FreshDataDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "dpaxos_real_" + name;
  const std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

// Commits `n` puts through `node` and returns how many succeeded; each
// put retries briefly because leadership may still be settling.
int CommitPuts(TcpClient& client, int n, const std::string& key_prefix) {
  int committed = 0;
  for (int i = 0; i < n; ++i) {
    const std::string key = key_prefix + std::to_string(i % 64);
    const std::string value = "v" + std::to_string(i);
    for (int attempt = 0; attempt < 40; ++attempt) {
      if (client.Put(key, value, kCallTimeout).ok()) {
        ++committed;
        break;
      }
      usleep(25 * 1000);
    }
  }
  return committed;
}

TEST(RealClusterTest, CommitsThroughEveryProtocolMode) {
  const ProtocolMode modes[] = {ProtocolMode::kLeaderZone,
                                ProtocolMode::kDelegate,
                                ProtocolMode::kMultiPaxos};
  uint64_t seed = 100;
  for (ProtocolMode mode : modes) {
    SCOPED_TRACE(ProtocolModeName(mode));
    RealCluster cluster(BaseOptions(mode, seed++));
    ASSERT_TRUE(cluster.Start().ok());

    TcpClient client(0xC0FFEE);
    ASSERT_TRUE(client.Connect(cluster.endpoint(0), kCallTimeout).ok());
    EXPECT_EQ(CommitPuts(client, 50, "m"), 50);
    Result<std::string> got = client.Get("m0", kCallTimeout);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Keys cycle mod 64, so with 50 puts key m0 holds its first write.
    EXPECT_EQ(got.value(), "v0");

    // Every node converges to the same state machine contents.
    std::string checksum;
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      std::string node_sum;
      for (int attempt = 0; attempt < 100; ++attempt) {
        Result<std::string> stats = cluster.Stats(n);
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        node_sum = StatsField(stats.value(), "checksum");
        if (n == 0 || node_sum == checksum) break;
        usleep(50 * 1000);
      }
      if (n == 0) {
        checksum = node_sum;
      } else {
        EXPECT_EQ(node_sum, checksum) << "node " << n << " diverged";
      }
    }
    Status down = cluster.ShutdownAll();
    EXPECT_TRUE(down.ok()) << down.ToString();
  }
}

TEST(RealClusterTest, KillRestartCatchesUpViaSnapshotOverTcp) {
  RealClusterOptions options = BaseOptions(ProtocolMode::kLeaderZone, 7);
  RealCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());

  TcpClient client(0xBADCAB);
  ASSERT_TRUE(client.Connect(cluster.endpoint(0), kCallTimeout).ok());
  ASSERT_EQ(CommitPuts(client, 100, "a"), 100);

  // Crash the last node (never quorum-critical for ft={0,0}), keep
  // committing so the survivors compact past the victim's log position,
  // then bring it back with empty state.
  const NodeId victim = cluster.num_nodes() - 1;
  ASSERT_TRUE(cluster.Kill(victim).ok());
  EXPECT_FALSE(cluster.alive(victim));
  ASSERT_EQ(CommitPuts(client, 150, "b"), 150);
  ASSERT_TRUE(cluster.Restart(victim).ok());

  // The restarted node must reach the leader's watermark via snapshot
  // transfer (compaction made plain log replay impossible).
  std::string leader_sum, victim_sum, snapshots;
  bool converged = false;
  for (int attempt = 0; attempt < 300 && !converged; ++attempt) {
    Result<std::string> leader_stats = cluster.Stats(0);
    Result<std::string> victim_stats = cluster.Stats(victim);
    if (leader_stats.ok() && victim_stats.ok()) {
      leader_sum = StatsField(leader_stats.value(), "checksum");
      victim_sum = StatsField(victim_stats.value(), "checksum");
      snapshots = StatsField(victim_stats.value(), "snapshots_installed");
      converged = !leader_sum.empty() && leader_sum == victim_sum &&
                  snapshots != "0" && !snapshots.empty();
    }
    if (!converged) usleep(100 * 1000);
  }
  EXPECT_TRUE(converged) << "victim checksum=" << victim_sum
                         << " leader checksum=" << leader_sum
                         << " snapshots_installed=" << snapshots;

  Status down = cluster.ShutdownAll();
  EXPECT_TRUE(down.ok()) << down.ToString();
}

// Whole-cluster power loss: every node SIGKILLed at once, so no
// survivor holds the state in memory — the restart recovers from the
// per-node WAL directories alone. Every acknowledged write must still
// be readable afterwards and all nodes must reconverge to the exact
// pre-crash state-machine checksum.
TEST(RealClusterTest, WholeClusterPowerLossRecoversFromDiskAlone) {
  RealClusterOptions options = BaseOptions(ProtocolMode::kLeaderZone, 33);
  options.data_dir_base = FreshDataDir("powerloss");
  RealCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());

  TcpClient client(0xD15C);
  ASSERT_TRUE(client.Connect(cluster.endpoint(0), kCallTimeout).ok());
  ASSERT_EQ(CommitPuts(client, 80, "p"), 80);

  // Durable mode is actually on: real fdatasyncs happened before acks.
  Result<std::string> stats = cluster.Stats(0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(StatsField(stats.value(), "wal"), "1");
  EXPECT_NE(StatsField(stats.value(), "wal_fsyncs"), "0");
  EXPECT_NE(StatsField(stats.value(), "wal_fsyncs"), "");

  std::string before;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    std::string sum;
    for (int attempt = 0; attempt < 100; ++attempt) {
      Result<std::string> s = cluster.Stats(n);
      ASSERT_TRUE(s.ok()) << s.status().ToString();
      sum = StatsField(s.value(), "checksum");
      if (n == 0 || sum == before) break;
      usleep(50 * 1000);
    }
    if (n == 0) {
      before = sum;
    } else {
      ASSERT_EQ(sum, before) << "node " << n << " diverged pre-crash";
    }
  }
  ASSERT_FALSE(before.empty());

  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    ASSERT_TRUE(cluster.Kill(n).ok());
  }
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    ASSERT_TRUE(cluster.Restart(n).ok());
  }

  // 80 puts over keys p(i%64): keys p0..p15 were overwritten by the
  // second lap (value v(k+64)), the rest hold their first write.
  TcpClient after(0xD15D);
  ASSERT_TRUE(after.Connect(cluster.endpoint(0), kCallTimeout).ok());
  for (int k = 0; k < 64; ++k) {
    const std::string key = "p" + std::to_string(k);
    const std::string want = "v" + std::to_string(k < 16 ? k + 64 : k);
    Result<std::string> got = after.Get(key, kCallTimeout);
    for (int attempt = 0; attempt < 200 && !got.ok(); ++attempt) {
      usleep(100 * 1000);
      got = after.Get(key, kCallTimeout);
    }
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(got.value(), want) << "acknowledged write lost for " << key;
  }

  // And the recovered cluster converges to the pre-crash checksum.
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    std::string sum;
    for (int attempt = 0; attempt < 200; ++attempt) {
      Result<std::string> s = cluster.Stats(n);
      if (s.ok()) sum = StatsField(s.value(), "checksum");
      if (sum == before) break;
      usleep(100 * 1000);
    }
    EXPECT_EQ(sum, before) << "node " << n << " lost state at power loss";
  }

  Status down = cluster.ShutdownAll();
  EXPECT_TRUE(down.ok()) << down.ToString();
}

// Bit rot on a node's WAL must fail recovery loudly (the server refuses
// to start), never silently serve a diverged prefix. The operator
// remedy — wipe the bad disk — lets the node rejoin empty and catch up
// from the survivors.
TEST(RealClusterTest, CorruptWalFailsStartupThenWipedNodeRejoins) {
  RealClusterOptions options = BaseOptions(ProtocolMode::kLeaderZone, 44);
  options.data_dir_base = FreshDataDir("bitrot");
  // No checkpoints: segment 1 stays active and accumulates many delta
  // frames, so a flip early in the file damages a non-final record
  // (mid-file damage is Corruption; only a torn final record may be
  // truncated).
  options.enable_compaction = false;
  RealCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());

  TcpClient client(0xB17F);
  ASSERT_TRUE(client.Connect(cluster.endpoint(0), kCallTimeout).ok());
  ASSERT_EQ(CommitPuts(client, 60, "c"), 60);

  // The leader is the node that journals accepted values in leader-zone
  // mode — its WAL is the one with enough frames for a mid-file flip.
  const NodeId victim = 0;
  ASSERT_TRUE(cluster.Kill(victim).ok());

  // Flip one byte inside the first record's body (frame layout:
  // [len u32][crc u32][body...], so offset 12 is body byte 4).
  const std::string seg = cluster.node_data_dir(victim) + "/wal-000001.log";
  {
    FILE* f = std::fopen(seg.c_str(), "r+b");
    ASSERT_NE(f, nullptr) << seg;
    ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);
    int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);
    ASSERT_NE(std::fputc(byte ^ 0x10, f), EOF);
    ASSERT_EQ(std::fclose(f), 0);
  }

  Status restarted = cluster.Restart(victim, 15 * kSecond);
  EXPECT_FALSE(restarted.ok()) << "corrupt WAL must refuse to start";
  ASSERT_FALSE(cluster.alive(victim));

  const std::string wipe =
      "rm -rf '" + cluster.node_data_dir(victim) + "'";
  ASSERT_EQ(std::system(wipe.c_str()), 0);
  ASSERT_TRUE(cluster.Restart(victim).ok());

  // The rejoined node must lead a functioning cluster again: fresh
  // writes commit and replicate, and the wiped node converges with a
  // peer on a non-empty state.
  TcpClient client2(0xB180);
  ASSERT_TRUE(client2.Connect(cluster.endpoint(victim), kCallTimeout).ok());
  int committed = 0;
  for (int attempt = 0; attempt < 100 && committed < 20; ++attempt) {
    if (client2
            .Put("c2-" + std::to_string(committed),
                 "v" + std::to_string(committed), kCallTimeout)
            .ok()) {
      ++committed;
    } else {
      usleep(100 * 1000);
    }
  }
  ASSERT_EQ(committed, 20);

  const NodeId witness = 1;
  std::string witness_sum, victim_sum;
  bool converged = false;
  for (int attempt = 0; attempt < 300 && !converged; ++attempt) {
    Result<std::string> witness_stats = cluster.Stats(witness);
    Result<std::string> victim_stats = cluster.Stats(victim);
    if (witness_stats.ok() && victim_stats.ok()) {
      witness_sum = StatsField(witness_stats.value(), "checksum");
      victim_sum = StatsField(victim_stats.value(), "checksum");
      converged = !witness_sum.empty() && witness_sum != "0" &&
                  witness_sum == victim_sum;
    }
    if (!converged) usleep(100 * 1000);
  }
  EXPECT_TRUE(converged) << "victim checksum=" << victim_sum
                         << " witness checksum=" << witness_sum;

  Status down = cluster.ShutdownAll();
  EXPECT_TRUE(down.ok()) << down.ToString();
}

TEST(RealClusterTest, SigtermShutdownIsClean) {
  RealCluster cluster(BaseOptions(ProtocolMode::kMultiPaxos, 21));
  ASSERT_TRUE(cluster.Start().ok());
  TcpClient client(0xD00D);
  ASSERT_TRUE(client.Connect(cluster.endpoint(0), kCallTimeout).ok());
  ASSERT_GT(CommitPuts(client, 10, "s"), 0);
  // ShutdownAll asserts every child exits 0 on SIGTERM within the grace
  // period — a hung loop or crash-on-exit fails here.
  Status down = cluster.ShutdownAll();
  EXPECT_TRUE(down.ok()) << down.ToString();
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_FALSE(cluster.alive(n));
  }
}

}  // namespace
}  // namespace dpaxos
