// Multi-process cluster tests (realnet tier): fork/exec a 2-zone,
// 4-node `dpaxos_cli --serve` cluster on 127.0.0.1, drive it with the
// blocking TcpClient, and exercise the paths that only exist with real
// processes — crash via SIGKILL, restart with empty state, snapshot
// catch-up over TCP, graceful SIGTERM shutdown.
//
// Labeled `realnet` and excluded from the tier-1 default: these tests
// spawn processes and depend on wall-clock pacing. The CLI path is
// stamped in by CMake as DPAXOS_CLI_PATH.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "harness/real_cluster.h"
#include "net/tcp/tcp_client.h"

namespace dpaxos {
namespace {

#ifndef DPAXOS_CLI_PATH
#define DPAXOS_CLI_PATH ""
#endif

constexpr Duration kCallTimeout = 5 * kSecond;

RealClusterOptions BaseOptions(ProtocolMode mode, uint64_t seed) {
  RealClusterOptions options;
  options.server_binary = DPAXOS_CLI_PATH;
  options.mode = mode;
  options.seed = seed;
  const char* log_dir = std::getenv("DPAXOS_TEST_LOG_DIR");
  if (log_dir != nullptr) options.log_dir = log_dir;
  return options;
}

// Commits `n` puts through `node` and returns how many succeeded; each
// put retries briefly because leadership may still be settling.
int CommitPuts(TcpClient& client, int n, const std::string& key_prefix) {
  int committed = 0;
  for (int i = 0; i < n; ++i) {
    const std::string key = key_prefix + std::to_string(i % 64);
    const std::string value = "v" + std::to_string(i);
    for (int attempt = 0; attempt < 40; ++attempt) {
      if (client.Put(key, value, kCallTimeout).ok()) {
        ++committed;
        break;
      }
      usleep(25 * 1000);
    }
  }
  return committed;
}

TEST(RealClusterTest, CommitsThroughEveryProtocolMode) {
  const ProtocolMode modes[] = {ProtocolMode::kLeaderZone,
                                ProtocolMode::kDelegate,
                                ProtocolMode::kMultiPaxos};
  uint64_t seed = 100;
  for (ProtocolMode mode : modes) {
    SCOPED_TRACE(ProtocolModeName(mode));
    RealCluster cluster(BaseOptions(mode, seed++));
    ASSERT_TRUE(cluster.Start().ok());

    TcpClient client(0xC0FFEE);
    ASSERT_TRUE(client.Connect(cluster.endpoint(0), kCallTimeout).ok());
    EXPECT_EQ(CommitPuts(client, 50, "m"), 50);
    Result<std::string> got = client.Get("m0", kCallTimeout);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Keys cycle mod 64, so with 50 puts key m0 holds its first write.
    EXPECT_EQ(got.value(), "v0");

    // Every node converges to the same state machine contents.
    std::string checksum;
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      std::string node_sum;
      for (int attempt = 0; attempt < 100; ++attempt) {
        Result<std::string> stats = cluster.Stats(n);
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        node_sum = StatsField(stats.value(), "checksum");
        if (n == 0 || node_sum == checksum) break;
        usleep(50 * 1000);
      }
      if (n == 0) {
        checksum = node_sum;
      } else {
        EXPECT_EQ(node_sum, checksum) << "node " << n << " diverged";
      }
    }
    Status down = cluster.ShutdownAll();
    EXPECT_TRUE(down.ok()) << down.ToString();
  }
}

TEST(RealClusterTest, KillRestartCatchesUpViaSnapshotOverTcp) {
  RealClusterOptions options = BaseOptions(ProtocolMode::kLeaderZone, 7);
  RealCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());

  TcpClient client(0xBADCAB);
  ASSERT_TRUE(client.Connect(cluster.endpoint(0), kCallTimeout).ok());
  ASSERT_EQ(CommitPuts(client, 100, "a"), 100);

  // Crash the last node (never quorum-critical for ft={0,0}), keep
  // committing so the survivors compact past the victim's log position,
  // then bring it back with empty state.
  const NodeId victim = cluster.num_nodes() - 1;
  ASSERT_TRUE(cluster.Kill(victim).ok());
  EXPECT_FALSE(cluster.alive(victim));
  ASSERT_EQ(CommitPuts(client, 150, "b"), 150);
  ASSERT_TRUE(cluster.Restart(victim).ok());

  // The restarted node must reach the leader's watermark via snapshot
  // transfer (compaction made plain log replay impossible).
  std::string leader_sum, victim_sum, snapshots;
  bool converged = false;
  for (int attempt = 0; attempt < 300 && !converged; ++attempt) {
    Result<std::string> leader_stats = cluster.Stats(0);
    Result<std::string> victim_stats = cluster.Stats(victim);
    if (leader_stats.ok() && victim_stats.ok()) {
      leader_sum = StatsField(leader_stats.value(), "checksum");
      victim_sum = StatsField(victim_stats.value(), "checksum");
      snapshots = StatsField(victim_stats.value(), "snapshots_installed");
      converged = !leader_sum.empty() && leader_sum == victim_sum &&
                  snapshots != "0" && !snapshots.empty();
    }
    if (!converged) usleep(100 * 1000);
  }
  EXPECT_TRUE(converged) << "victim checksum=" << victim_sum
                         << " leader checksum=" << leader_sum
                         << " snapshots_installed=" << snapshots;

  Status down = cluster.ShutdownAll();
  EXPECT_TRUE(down.ok()) << down.ToString();
}

TEST(RealClusterTest, SigtermShutdownIsClean) {
  RealCluster cluster(BaseOptions(ProtocolMode::kMultiPaxos, 21));
  ASSERT_TRUE(cluster.Start().ok());
  TcpClient client(0xD00D);
  ASSERT_TRUE(client.Connect(cluster.endpoint(0), kCallTimeout).ok());
  ASSERT_GT(CommitPuts(client, 10, "s"), 0);
  // ShutdownAll asserts every child exits 0 on SIGTERM within the grace
  // period — a hung loop or crash-on-exit fails here.
  Status down = cluster.ShutdownAll();
  EXPECT_TRUE(down.ok()) << down.ToString();
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_FALSE(cluster.alive(n));
  }
}

}  // namespace
}  // namespace dpaxos
