// Zone-fault-tolerant Leader Zones (paper Section 4.3.2): with fz > 0 the
// Leader Zone extends across fz+1 zones and elections need a majority of
// those zones, so a whole-zone outage no longer blocks Leader Election.
#include <gtest/gtest.h>

#include <set>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

ClusterOptions Fz1Options() {
  ClusterOptions options;
  options.ft = FaultTolerance{1, 1};
  return options;
}

TEST(LeaderZoneFzTest, RuleSpansFzPlusOneZones) {
  const Topology topo = Topology::Uniform(5, 3, 80.0);
  LeaderZoneQuorumSystem qs(&topo, FaultTolerance{1, 1});
  LeaderZoneView view;
  view.current = 2;
  const QuorumRule rule = qs.LeaderElectionRule(0, view);
  std::set<ZoneId> zones;
  for (NodeId n : rule.Targets()) zones.insert(topo.ZoneOf(n));
  EXPECT_EQ(zones.size(), 2u);  // fz+1 Leader Zones
  EXPECT_TRUE(zones.count(2) > 0);
  // Majority of the two zones = both required... majority of 2 is 2.
  EXPECT_EQ(rule.groups().size(), 1u);
  EXPECT_EQ(rule.groups()[0].min_satisfied, 2u);
}

TEST(LeaderZoneFzTest, IntraIntersectionAcrossAspirants) {
  const Topology topo = Topology::Uniform(7, 3, 80.0);
  LeaderZoneQuorumSystem qs(&topo, FaultTolerance{1, 2});  // 3 LZ zones
  LeaderZoneView view;
  view.current = 0;
  const QuorumRule a = qs.LeaderElectionRule(3, view);
  const QuorumRule b = qs.LeaderElectionRule(15, view);
  // Any satisfying set of one rule intersects the other (Definition 2).
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    std::set<NodeId> avoid;
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      if (rng.NextBool(0.3)) avoid.insert(n);
    }
    const std::vector<NodeId> set = a.PickSatisfyingSetAvoiding(avoid);
    if (set.empty()) continue;
    EXPECT_TRUE(b.AlwaysIntersects({set.begin(), set.end()}));
  }
}

TEST(LeaderZoneFzTest, ElectionSurvivesWholeLeaderZoneOutage) {
  Cluster cluster(Topology::Uniform(5, 3, 80.0), ProtocolMode::kLeaderZone,
                  Fz1Options());
  // The Leader Zone set is zones {0, 1} (anchored at zone 0). Kill all of
  // zone 0: elections must still succeed through zone 1's majority...
  // majority of 2 zones is 2, so a FULL zone-0 outage blocks a strict
  // double majority — instead kill a minority of each LZ zone.
  cluster.transport().Crash(cluster.NodeInZone(0, 2));
  cluster.transport().Crash(cluster.NodeInZone(1, 2));
  const NodeId aspirant = cluster.NodeInZone(3);
  ASSERT_TRUE(cluster.ElectLeader(aspirant).ok());
  ASSERT_TRUE(cluster.Commit(aspirant, Value::Of(1, "x")).ok());
}

TEST(LeaderZoneFzTest, ThreeLeaderZonesToleratesOneZoneOutage) {
  // fz=2 -> 3 Leader Zones, majority = 2 of 3: a whole LZ zone can die.
  ClusterOptions options;
  options.ft = FaultTolerance{1, 2};
  Cluster cluster(Topology::Uniform(7, 3, 80.0), ProtocolMode::kLeaderZone,
                  options);
  // The Leader Zones are {0,1,2}; the aspirant's replication intent
  // (anchored at its own zone 5) uses zones {5,0,1}. Kill zone 2: an
  // entire Leader Zone is down, yet elections (2-of-3 zone majorities)
  // and commits (quorum avoids zone 2) both keep working.
  for (NodeId n : cluster.topology().NodesInZone(2)) {
    cluster.transport().Crash(n);
  }
  const NodeId aspirant = cluster.NodeInZone(5);
  ASSERT_TRUE(cluster.ElectLeader(aspirant).ok());
  Result<Duration> r = cluster.Commit(aspirant, Value::Of(1, "x"));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(LeaderZoneFzTest, IntentsDetectedAcrossLeaderZoneMajorities) {
  Cluster cluster(Topology::Uniform(5, 3, 80.0), ProtocolMode::kLeaderZone,
                  Fz1Options());
  const NodeId first = cluster.NodeInZone(3);
  ASSERT_TRUE(cluster.ElectLeader(first).ok());
  ASSERT_TRUE(cluster.Commit(first, Value::Of(1, "a")).ok());

  // A second aspirant must detect the first's intent through the shared
  // Leader Zones and dethrone it safely.
  Replica* second = cluster.ReplicaInZone(4);
  second->PrimeBallot(cluster.replica(first)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(second->id()).ok());
  cluster.sim().RunFor(5 * kSecond);
  ASSERT_TRUE(cluster.Commit(second->id(), Value::Of(2, "b")).ok());
  // Agreement on slot 0 across both leaders' logs.
  EXPECT_EQ(second->decided().at(0).id, 1u);
}

}  // namespace
}  // namespace dpaxos
