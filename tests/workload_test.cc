// Tests for the workload generators: the paper's OLTP mix and the
// mobility schedules.
#include <gtest/gtest.h>

#include "workload/mobility.h"
#include "workload/oltp.h"

namespace dpaxos {
namespace {

TEST(OltpTest, PaperDefaults) {
  OltpGenerator gen(OltpConfig{}, 1);
  const Transaction txn = gen.Next();
  EXPECT_EQ(txn.ops.size(), 5u);  // five operations per transaction
  for (const Operation& op : txn.ops) {
    EXPECT_EQ(op.key.size(), 13u);  // "key" + 10 digits
    if (op.kind == Operation::Kind::kPut) {
      EXPECT_EQ(op.value.size(), 50u);  // 50-byte values
    }
  }
}

TEST(OltpTest, WriteFractionApproximatelyHalf) {
  OltpGenerator gen(OltpConfig{}, 2);
  int writes = 0, total = 0;
  for (int i = 0; i < 400; ++i) {
    for (const Operation& op : gen.Next().ops) {
      ++total;
      if (op.kind == Operation::Kind::kPut) ++writes;
    }
  }
  const double fraction = static_cast<double>(writes) / total;
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(OltpTest, ReadOnlyFraction) {
  OltpConfig config;
  config.read_only_fraction = 0.95;
  OltpGenerator gen(config, 3);
  int read_only = 0;
  for (int i = 0; i < 400; ++i) {
    if (gen.Next().read_only()) ++read_only;
  }
  EXPECT_NEAR(read_only / 400.0, 0.95, 0.05);
}

TEST(OltpTest, SequentialUniqueIds) {
  OltpGenerator gen(OltpConfig{}, 4);
  EXPECT_EQ(gen.Next().id, 1u);
  EXPECT_EQ(gen.Next().id, 2u);
  EXPECT_EQ(gen.generated(), 2u);
}

TEST(OltpTest, DeterministicFromSeed) {
  OltpGenerator a(OltpConfig{}, 7), b(OltpConfig{}, 7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(OltpTest, KeysStayInRange) {
  OltpConfig config;
  config.num_keys = 10;
  OltpGenerator gen(config, 5);
  for (int i = 0; i < 100; ++i) {
    for (const Operation& op : gen.Next().ops) {
      EXPECT_LE(op.key, "key0000000009");
      EXPECT_GE(op.key, "key0000000000");
    }
  }
}

TEST(OltpTest, NextBatchMeetsByteTarget) {
  OltpGenerator gen(OltpConfig{}, 6);
  const std::vector<Transaction> batch = gen.NextBatch(4096);
  uint64_t bytes = 0;
  for (const Transaction& txn : batch) bytes += EncodedSize(txn);
  EXPECT_GE(bytes, 4096u);
  // Not wildly over target: at most one extra transaction's worth.
  EXPECT_LT(bytes, 4096u + 400u);
}

TEST(MobilityTest, StationaryNeverMoves) {
  const MobilitySchedule m = MobilitySchedule::Stationary(3);
  EXPECT_EQ(m.ZoneAt(0), 3u);
  EXPECT_EQ(m.ZoneAt(1'000'000'000), 3u);
}

TEST(MobilityTest, TourVisitsInOrder) {
  const MobilitySchedule m =
      MobilitySchedule::Tour({0, 2, 5}, 10 * kSecond);
  EXPECT_EQ(m.ZoneAt(0), 0u);
  EXPECT_EQ(m.ZoneAt(9 * kSecond), 0u);
  EXPECT_EQ(m.ZoneAt(10 * kSecond), 2u);
  EXPECT_EQ(m.ZoneAt(25 * kSecond), 5u);
  EXPECT_EQ(m.ZoneAt(100 * kSecond), 5u);  // stays at the end
}

TEST(MobilityTest, RandomWalkChangesZoneEveryHop) {
  const MobilitySchedule m =
      MobilitySchedule::RandomWalk(7, 20, kSecond, 11);
  ASSERT_EQ(m.segments().size(), 21u);
  for (size_t i = 1; i < m.segments().size(); ++i) {
    EXPECT_NE(m.segments()[i].zone, m.segments()[i - 1].zone);
    EXPECT_LT(m.segments()[i].zone, 7u);
  }
}

TEST(MobilityTest, RandomWalkDeterministic) {
  const MobilitySchedule a = MobilitySchedule::RandomWalk(5, 10, kSecond, 3);
  const MobilitySchedule b = MobilitySchedule::RandomWalk(5, 10, kSecond, 3);
  for (size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_EQ(a.segments()[i].zone, b.segments()[i].zone);
  }
}

}  // namespace
}  // namespace dpaxos
