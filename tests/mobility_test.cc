// Mobility: the placement layer must chase a moving client (the simperf
// mobility cell's gate) without ping-ponging ownership when traffic is
// genuinely split between zones.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "common/perf_counters.h"
#include "directory/sharded_store.h"
#include "harness/cluster.h"
#include "harness/simperf.h"

namespace dpaxos {
namespace {

std::unique_ptr<Cluster> MakeCluster() {
  ClusterOptions options;
  options.replica.le_timeout = 30 * kSecond;
  return std::make_unique<Cluster>(Topology::AwsSevenZones(),
                                   ProtocolMode::kLeaderZone, options);
}

ShardedStore MakeStore(Cluster& cluster, ShardedStore::Options options) {
  options.num_partitions = 1;
  options.ownership = true;
  return ShardedStore(
      &cluster.sim(), &cluster.topology(),
      [&cluster](NodeId n, PartitionId p) { return cluster.replica(n, p); },
      options);
}

Result<Duration> RunPut(Cluster& cluster, ShardedStore& store, uint64_t id,
                        ZoneId zone) {
  Transaction txn;
  txn.id = id;
  txn.ops = {Operation::Put("k", "v")};
  std::optional<Status> done;
  Duration latency = 0;
  store.Execute(txn, zone, [&](const Status& st, Duration lat) {
    done = st;
    latency = lat;
  });
  while (!done.has_value() && cluster.sim().Step()) {
  }
  if (!done.has_value()) return Status::Internal("no progress");
  if (!done->ok()) return *done;
  return latency;
}

// A steady 50/50 split between two distant zones must be held by
// hysteresis alone: moving the leader between California and Mumbai
// changes nothing for a balanced workload, so the advisor never
// recommends it and ownership never oscillates.
TEST(MobilityPlacementTest, Oscillating5050TrafficDoesNotPingPong) {
  auto cluster = MakeCluster();
  ShardedStore::Options sopts;
  sopts.stats_half_life = 3600 * kSecond;  // no decay-driven drift
  ShardedStore store = MakeStore(*cluster, sopts);

  const PerfCounters before = SnapshotPerfCounters();
  // Claim, then alternate strictly between zone 0 and zone 6.
  uint64_t id = 1;
  ASSERT_TRUE(RunPut(*cluster, store, id++, 0).ok());
  for (int i = 0; i < 40; ++i) {
    cluster->sim().RunFor(kSecond);
    Result<Duration> r = RunPut(*cluster, store, id++, i % 2 == 0 ? 6 : 0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Exactly the first claim; no move ever cleared hysteresis, so the
  // cooldown never even had to fire.
  EXPECT_EQ(store.steals(), 1u);
  EXPECT_EQ(store.directory().epoch(0), 1u);
  const PerfCounters after = SnapshotPerfCounters();
  EXPECT_EQ(after.placement_pingpongs_suppressed -
                before.placement_pingpongs_suppressed,
            0u);
  EXPECT_EQ(
      after.placement_steals_completed - before.placement_steals_completed,
      1u);
}

// Alternating BURSTS (not a steady split) do clear hysteresis each time
// the trailing window flips; the post-steal cooldown is what stops the
// partition from ping-ponging, and every suppressed move is counted.
TEST(MobilityPlacementTest, AlternatingBurstsSuppressedByCooldown) {
  auto cluster = MakeCluster();
  ShardedStore::Options sopts;
  sopts.stats_half_life = 5 * kSecond;  // forget the old zone quickly
  sopts.steal_cooldown = 600 * kSecond;
  ShardedStore store = MakeStore(*cluster, sopts);

  const PerfCounters before = SnapshotPerfCounters();
  uint64_t id = 1;
  ASSERT_TRUE(RunPut(*cluster, store, id++, 0).ok());
  // Four alternating 10-op bursts, 2s apart: each burst shifts the
  // access center entirely, so the advisor recommends a move every
  // burst — but inside the cooldown only the counter moves.
  for (int burst = 0; burst < 4; ++burst) {
    const ZoneId zone = burst % 2 == 0 ? 6 : 0;
    for (int i = 0; i < 10; ++i) {
      cluster->sim().RunFor(2 * kSecond);
      ASSERT_TRUE(RunPut(*cluster, store, id++, zone).ok());
    }
  }
  EXPECT_EQ(store.steals(), 1u);  // the claim; every move was suppressed
  const PerfCounters after = SnapshotPerfCounters();
  EXPECT_GE(after.placement_pingpongs_suppressed -
                before.placement_pingpongs_suppressed,
            1u);
}

// The BENCH_simperf mobility cell end-to-end in smoke mode: the adaptive
// track must steal ownership along the client's tour and return commit
// latency to near-local in every post-move segment, while the static
// track stays pinned to the origin zone.
TEST(MobilityPlacementTest, SimperfMobilitySmokeTracksClient) {
  SimperfOptions options;
  options.smoke = true;
  const SimperfMobilityReport report = RunSimperfMobility(options);
  EXPECT_EQ(report.zones, 3u);
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_FALSE(report.cells[0].adaptive);
  EXPECT_TRUE(report.cells[1].adaptive);
  ASSERT_EQ(report.cells[0].segments.size(), report.cells[1].segments.size());
  EXPECT_GE(report.cells[0].segments.size(), 3u);

  // The adaptive cell stole the partition toward at least the two later
  // zones and learned the transfers from decided records.
  EXPECT_GE(report.cells[1].steals, 2u);
  EXPECT_GE(report.cells[1].ownership_records, 2u);
  // The static cell never moved.
  EXPECT_EQ(report.cells[0].steals, 1u);

  // The headline gate: post-move tail p50 near-local for the adaptive
  // cell, at least 2x better than the static leader's WAN latency.
  EXPECT_TRUE(report.adaptive_tracks_client);
  for (size_t s = 1; s < report.cells[1].segments.size(); ++s) {
    const SimperfMobilitySegment& adaptive = report.cells[1].segments[s];
    const SimperfMobilitySegment& pinned = report.cells[0].segments[s];
    ASSERT_GT(adaptive.tail_ops, 0u);
    ASSERT_GT(pinned.tail_ops, 0u);
    EXPECT_LT(adaptive.tail_p50_ms * 2, pinned.tail_p50_ms)
        << "segment " << s << " did not return to near-local latency";
  }
}

}  // namespace
}  // namespace dpaxos
