// Wire codec tests: round-trip every message type, fuzz the decoder, and
// run full protocol scenarios with every message forced through the
// codec (SimTransportOptions::validate_wire_codec).
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "harness/cluster.h"
#include "paxos/wire.h"

namespace dpaxos {
namespace {

// Round-trip helper: serialize, deserialize, return the typed copy.
template <typename T>
std::shared_ptr<const T> RoundTrip(const T& msg) {
  const std::string bytes = SerializeMessage(msg);
  Result<MessagePtr> decoded = DeserializeMessage(bytes);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  if (!decoded.ok()) return nullptr;
  auto typed = std::dynamic_pointer_cast<const T>(decoded.value());
  EXPECT_NE(typed, nullptr) << "decoded to wrong type";
  if (typed != nullptr) {
    EXPECT_EQ(typed->partition, msg.partition);
    EXPECT_STREQ(typed->TypeName(), msg.TypeName());
  }
  return typed;
}

Intent SampleIntent(uint64_t round, NodeId leader) {
  return Intent{Ballot{round, leader}, leader, {leader, leader + 1}};
}

LeaderZoneView SampleView() {
  LeaderZoneView view;
  view.epoch = 3;
  view.current = 2;
  view.next = 5;
  return view;
}

TEST(WireTest, PrepareRoundTrip) {
  PrepareMsg msg(7, Ballot{42, 3}, 17,
                 {SampleIntent(42, 3), SampleIntent(41, 9)}, true,
                 SampleView());
  auto rt = RoundTrip(msg);
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->ballot, msg.ballot);
  EXPECT_EQ(rt->first_slot, 17u);
  ASSERT_EQ(rt->intents.size(), 2u);
  EXPECT_EQ(rt->intents[1], msg.intents[1]);
  EXPECT_TRUE(rt->expansion);
  EXPECT_EQ(rt->lz_view, msg.lz_view);
}

TEST(WireTest, PromiseRoundTrip) {
  PromiseMsg msg(1, Ballot{9, 2}, false);
  msg.accepted.push_back(
      AcceptedEntry{5, Ballot{8, 1}, Value::Of(77, "payload\x00bytes")});
  // The fast flag must survive the codec: recovery ranks a classic
  // entry above a fast entry at the same ballot, so dropping the bit
  // on the wire would change election outcomes.
  msg.accepted.push_back(
      AcceptedEntry{6, Ballot{8, 1}, Value::Of(78, "fastvote"), true});
  msg.intents.push_back(SampleIntent(7, 4));
  msg.lz_view = SampleView();
  auto rt = RoundTrip(msg);
  ASSERT_NE(rt, nullptr);
  ASSERT_EQ(rt->accepted.size(), 2u);
  EXPECT_EQ(rt->accepted[0].slot, 5u);
  EXPECT_EQ(rt->accepted[0].ballot, (Ballot{8, 1}));
  EXPECT_EQ(rt->accepted[0].value, msg.accepted[0].value);
  EXPECT_FALSE(rt->accepted[0].fast);
  EXPECT_EQ(rt->accepted[1].slot, 6u);
  EXPECT_TRUE(rt->accepted[1].fast);
  EXPECT_EQ(rt->intents[0], msg.intents[0]);
}

TEST(WireTest, FastPathMessagesRoundTrip) {
  {
    auto rt = RoundTrip(FastGrantMsg(2, Ballot{7, 1}, 40, {1, 4, 9}));
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->ballot, (Ballot{7, 1}));
    EXPECT_EQ(rt->first_slot, 40u);
    EXPECT_EQ(rt->quorum, (std::vector<NodeId>{1, 4, 9}));
  }
  {
    auto rt =
        RoundTrip(FastAcceptMsg(2, Ballot{7, 1}, 55, Value::Of(9, "fastv")));
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->request_id, 55u);
    EXPECT_EQ(rt->value.payload, "fastv");
  }
  {
    auto rt = RoundTrip(
        FastAcceptedMsg(2, Ballot{7, 1}, 41, 4, 55, Value::Of(9, "fastv")));
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->slot, 41u);
    EXPECT_EQ(rt->proposer, 4u);
    EXPECT_EQ(rt->request_id, 55u);
    EXPECT_EQ(rt->value.id, 9u);
  }
  {
    FastNackMsg m(2, Ballot{7, 1}, Ballot{8, 2}, 55);
    m.leader_hint = 3;
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->promised, (Ballot{8, 2}));
    EXPECT_EQ(rt->request_id, 55u);
    EXPECT_EQ(rt->leader_hint, 3u);
  }
}

TEST(WireTest, ProposeAndAcceptRoundTrip) {
  ProposeMsg propose(2, Ballot{5, 0}, 9, Value::Synthetic(123, 4096));
  propose.lease_request = true;
  propose.lease_until = 999'999;
  auto p = RoundTrip(propose);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->value.size_bytes, 4096u);
  EXPECT_TRUE(p->lease_request);
  EXPECT_EQ(p->lease_until, 999'999u);

  AcceptMsg accept(2, Ballot{5, 0}, 9);
  accept.lease_vote = true;
  accept.lease_until = 1'000'000;
  auto a = RoundTrip(accept);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->lease_vote);
}

TEST(WireTest, ControlMessagesRoundTrip) {
  {
    PrepareNackMsg m(0, Ballot{3, 1});
    m.promised = Ballot{9, 9};
    m.lease_until = 55;
    m.lz_view = SampleView();
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->promised, m.promised);
    EXPECT_EQ(rt->lease_until, 55u);
  }
  {
    AcceptNackMsg m(0, Ballot{1, 1}, 4, Ballot{2, 2});
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->promised, (Ballot{2, 2}));
  }
  {
    DecideMsg m(3, 11, Value::Of(5, "decided"));
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->value.payload, "decided");
  }
  RoundTrip(HandoffRequestMsg(4));
  {
    RelinquishMsg m(4, Ballot{6, 6}, 100, {SampleIntent(6, 6)}, SampleView());
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->next_slot, 100u);
    EXPECT_EQ(rt->intents[0], m.intents[0]);
  }
}

TEST(WireTest, GcMessagesRoundTrip) {
  RoundTrip(GcPollMsg(1));
  auto reply = RoundTrip(GcPollReplyMsg(1, Ballot{12, 3}));
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->max_propose_ballot, (Ballot{12, 3}));
  auto thr = RoundTrip(GcThresholdMsg(1, Ballot{13, 4}));
  ASSERT_NE(thr, nullptr);
  EXPECT_EQ(thr->threshold, (Ballot{13, 4}));
}

TEST(WireTest, LeaderZoneMessagesRoundTrip) {
  RoundTrip(LzPrepareMsg(0, 2, Ballot{1, 1}));
  {
    LzPromiseMsg m(0, 2, Ballot{1, 1});
    m.accepted_ballot = Ballot{1, 0};
    m.accepted_zone = 4;
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->accepted_zone, 4u);
  }
  RoundTrip(LzProposeMsg(0, 2, Ballot{1, 1}, 5));
  RoundTrip(LzAcceptMsg(0, 2, Ballot{1, 1}, 5));
  {
    auto rt = RoundTrip(
        LzNackMsg(0, 2, Ballot{1, 1}, Ballot{2, 2}, SampleView()));
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->lz_view, SampleView());
  }
  RoundTrip(LzTransitionMsg(0, 2, 6));
  {
    auto rt = RoundTrip(LzTransitionAckMsg(0, 2, {SampleIntent(1, 1)}));
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->intents.size(), 1u);
  }
  RoundTrip(LzStoreIntentsMsg(0, 2, 6, {SampleIntent(1, 1)}));
  RoundTrip(LzStoreAckMsg(0, 2));
  RoundTrip(LzAnnounceMsg(0, SampleView()));
}

TEST(WireTest, OwnershipMessagesRoundTrip) {
  {
    StealRequestMsg m(3, Ballot{12, 4}, /*zone=*/6, /*inv=*/false);
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->ballot, (Ballot{12, 4}));
    EXPECT_EQ(rt->thief_zone, 6u);
    EXPECT_FALSE(rt->invite);
  }
  {
    StealRequestMsg m(0, Ballot{1, 0}, 2, /*inv=*/true);
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_TRUE(rt->invite);
  }
  {
    OwnershipGrantMsg m(3, /*g=*/true, StealRefusal::kNone, Ballot{12, 4},
                        /*next=*/88, /*decided=*/87, /*snap=*/true,
                        /*hint=*/4);
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_TRUE(rt->granted);
    EXPECT_EQ(rt->reason, StealRefusal::kNone);
    EXPECT_EQ(rt->ballot, (Ballot{12, 4}));
    EXPECT_EQ(rt->next_slot, 88u);
    EXPECT_EQ(rt->decided_size, 87u);
    EXPECT_TRUE(rt->snapshot_ready);
    EXPECT_EQ(rt->leader_hint, 4u);
  }
  {
    // Every refusal reason survives the codec; an out-of-range reason
    // byte must be rejected, not silently clamped.
    for (StealRefusal r : {StealRefusal::kNotLeader, StealRefusal::kBusy,
                           StealRefusal::kFastGrant}) {
      OwnershipGrantMsg m(1, false, r, Ballot{5, 5}, 0, 0, false, 9);
      auto rt = RoundTrip(m);
      ASSERT_NE(rt, nullptr);
      EXPECT_FALSE(rt->granted);
      EXPECT_EQ(rt->reason, r);
    }
    OwnershipGrantMsg bad(1, false, StealRefusal::kBusy, Ballot{5, 5}, 0, 0,
                          false, 9);
    std::string bytes = SerializeMessage(bad);
    // The reason byte sits right after tag+partition+granted flag.
    bytes[6] = '\x17';
    EXPECT_FALSE(DeserializeMessage(bytes).ok());
  }
}

TEST(WireTest, ForwardingAndCatchUpRoundTrip) {
  {
    auto rt = RoundTrip(ForwardMsg(2, 55, Value::Of(9, "fwd")));
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->request_id, 55u);
  }
  {
    ForwardReplyMsg m(2, 55);
    m.code = StatusCode::kFailedPrecondition;
    m.slot = 3;
    m.leader_hint = 17;
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->code, StatusCode::kFailedPrecondition);
    EXPECT_EQ(rt->leader_hint, 17u);
  }
  RoundTrip(LearnRequestMsg(0, 42, 256));
  {
    LearnReplyMsg m(0);
    m.from_slot = 42;
    m.entries.push_back(DecidedEntryWire{42, Value::Of(1, "a")});
    m.entries.push_back(DecidedEntryWire{43, Value::Of(2, "b")});
    m.peer_watermark = 44;
    m.first_available = 40;
    auto rt = RoundTrip(m);
    ASSERT_NE(rt, nullptr);
    ASSERT_EQ(rt->entries.size(), 2u);
    EXPECT_EQ(rt->entries[1].value.payload, "b");
    EXPECT_EQ(rt->first_available, 40u);
  }
  {
    auto rt = RoundTrip(SnapshotRequestMsg(0, 4096));
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->offset, 4096u);
  }
  {
    auto rt = RoundTrip(SnapshotChunkMsg(0, 9, 128, 512, "snapshot-bytes"));
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->through_slot, 9u);
    EXPECT_EQ(rt->offset, 128u);
    EXPECT_EQ(rt->total_bytes, 512u);
    EXPECT_EQ(rt->data, "snapshot-bytes");
  }
}

TEST(WireTest, DecodeRejectsTruncationEverywhere) {
  PromiseMsg msg(1, Ballot{9, 2}, false);
  msg.accepted.push_back(AcceptedEntry{5, Ballot{8, 1}, Value::Of(7, "x")});
  msg.intents.push_back(SampleIntent(7, 4));
  const std::string full = SerializeMessage(msg);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DeserializeMessage(full.substr(0, cut)).ok())
        << "accepted truncation at " << cut;
  }
  EXPECT_FALSE(DeserializeMessage(full + "x").ok());
}

TEST(WireTest, DecodeRejectsUnknownTag) {
  std::string bytes = SerializeMessage(GcPollMsg(0));
  bytes[0] = '\x7f';
  EXPECT_FALSE(DeserializeMessage(bytes).ok());
}

TEST(WireTest, DecodeFuzzNeverCrashes) {
  Rng rng(4242);
  for (int i = 0; i < 5000; ++i) {
    std::string garbage(rng.NextBounded(300), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next());
    auto r = DeserializeMessage(garbage);
    if (r.ok()) {
      // Anything that decodes must re-encode identically.
      EXPECT_EQ(SerializeMessage(*r.value()), garbage);
    }
  }
}

// --- end-to-end conformance: whole protocol through the codec -----------

class WireConformanceTest : public ::testing::TestWithParam<ProtocolMode> {};

TEST_P(WireConformanceTest, FullProtocolThroughCodec) {
  ClusterOptions options;
  options.transport.validate_wire_codec = true;
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), options);
  const NodeId proposer = cluster.NodeInZone(1);
  for (uint64_t i = 1; i <= 5; ++i) {
    Result<Duration> r = cluster.Commit(
        proposer, Value::Of(i, "payload" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(cluster.replica(proposer)->decided().size(), 5u);
}

TEST_P(WireConformanceTest, LeaderChangeThroughCodec) {
  if (GetParam() == ProtocolMode::kLeaderless) GTEST_SKIP();
  ClusterOptions options;
  options.transport.validate_wire_codec = true;
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), options);
  const NodeId first = cluster.NodeInZone(6);
  ASSERT_TRUE(cluster.ElectLeader(first).ok());
  ASSERT_TRUE(cluster.Commit(first, Value::Of(1, "a")).ok());
  const NodeId second = cluster.NodeInZone(0);
  cluster.replica(second)->PrimeBallot(cluster.replica(first)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(second).ok());
  cluster.sim().RunFor(5 * kSecond);
  ASSERT_TRUE(cluster.Commit(second, Value::Of(2, "b")).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, WireConformanceTest,
    ::testing::Values(ProtocolMode::kMultiPaxos, ProtocolMode::kFlexiblePaxos,
                      ProtocolMode::kDelegate, ProtocolMode::kLeaderZone,
                      ProtocolMode::kLeaderless),
    [](const ::testing::TestParamInfo<ProtocolMode>& info) {
      std::string name = ProtocolModeName(info.param);
      std::erase(name, '-');
      return name;
    });

TEST(WireConformanceTest, LzMigrationAndHandoffThroughCodec) {
  ClusterOptions options;
  options.transport.validate_wire_codec = true;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());

  bool migrated = false;
  cluster.replica(cluster.NodeInZone(4))
      ->MigrateLeaderZone(4, [&](const Status& st) {
        ASSERT_TRUE(st.ok()) << st.ToString();
        migrated = true;
      });
  ASSERT_TRUE(cluster.RunUntil([&] { return migrated; }, 60 * kSecond));

  ASSERT_TRUE(cluster.replica(leader)->HandoffTo(5).ok());
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return cluster.replica(5)->is_leader(); }, 10 * kSecond));
  ASSERT_TRUE(cluster.Commit(5, Value::Of(2, "b")).ok());
}

}  // namespace
}  // namespace dpaxos
