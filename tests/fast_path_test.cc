// Fast-path commits (enable_fast_path; docs/PROTOCOL.md §fast-path):
// uncontended writes reach the fast quorum's acceptors directly and
// commit in one client round trip; conflicts, nacks, crashes and stale
// grants fall back to the classic forward path without losing values.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "harness/cluster.h"
#include "paxos/value.h"

namespace dpaxos {
namespace {

ClusterOptions FastOptions() {
  ClusterOptions options;
  options.replica.enable_fast_path = true;
  return options;
}

Result<Duration> DriveSubmitOrForward(Cluster& cluster, Replica* origin,
                                      Value value) {
  std::optional<Status> done;
  Duration latency = 0;
  origin->SubmitOrForward(std::move(value),
                          [&](const Status& st, SlotId, Duration lat) {
                            done = st;
                            latency = lat;
                          });
  if (!cluster.RunUntil([&] { return done.has_value(); }, 60 * kSecond)) {
    return Status::Internal("no progress");
  }
  if (!done->ok()) return *done;
  return latency;
}

// The payload decided in `slot` at `replica`, or "" when undecided.
std::string DecidedPayload(const Replica* replica, SlotId slot) {
  for (const auto& [s, v] : replica->decided()) {
    if (s == slot) return v.payload;
  }
  return "";
}

bool LogContainsPayload(const Replica* replica, const std::string& payload) {
  for (const auto& [s, v] : replica->decided()) {
    if (v.payload == payload) return true;
  }
  return false;
}

class FastPathTest : public ::testing::TestWithParam<ProtocolMode> {};

// An election under enable_fast_path arms every node with the leader's
// pinned fast quorum (the grant), fenced above the recovered prefix.
TEST_P(FastPathTest, ElectionBroadcastsGrant) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), FastOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  cluster.sim().RunFor(2 * kSecond);  // let the grant broadcast land

  const Replica::FastGrant& own = cluster.replica(leader)->fast_grant();
  ASSERT_TRUE(own.valid());
  EXPECT_EQ(own.ballot, cluster.replica(leader)->ballot());
  EXPECT_TRUE(std::binary_search(own.quorum.begin(), own.quorum.end(),
                                 leader));
  // A remote node holds the same grant.
  const Replica::FastGrant& remote =
      cluster.ReplicaInZone(6)->fast_grant();
  ASSERT_TRUE(remote.valid());
  EXPECT_EQ(remote.ballot, own.ballot);
  EXPECT_EQ(remote.quorum, own.quorum);
}

// The headline property: an uncontended remote write commits in one
// origin->acceptors->origin round trip, strictly faster than the classic
// origin->leader->quorum->leader->origin relay.
TEST_P(FastPathTest, UncontendedCommitBeatsClassicForward) {
  Duration classic = 0;
  {
    Cluster cluster(Topology::AwsSevenZones(), GetParam());
    const NodeId leader = cluster.NodeInZone(0);
    ASSERT_TRUE(cluster.ElectLeader(leader).ok());
    Replica* origin = cluster.ReplicaInZone(6);  // Mumbai
    origin->set_leader_hint(leader);
    Result<Duration> r =
        DriveSubmitOrForward(cluster, origin, Value::Of(1, "classic"));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    classic = r.value();
  }

  Cluster cluster(Topology::AwsSevenZones(), GetParam(), FastOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  cluster.sim().RunFor(2 * kSecond);  // grant broadcast
  Replica* origin = cluster.ReplicaInZone(6);
  ASSERT_TRUE(origin->fast_grant().valid());

  Result<Duration> fast =
      DriveSubmitOrForward(cluster, origin, Value::Of(1, "fast"));
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_LT(fast.value(), classic);
  EXPECT_EQ(origin->counters().fast_commits, 1u);
  EXPECT_EQ(origin->counters().fast_fallbacks, 0u);

  // The leader's tracker reached unanimity and decided the slot.
  cluster.sim().RunFor(5 * kSecond);
  EXPECT_TRUE(LogContainsPayload(cluster.replica(leader), "fast"));
}

// A crashed fast-quorum member makes unanimity impossible; the proposer
// times out, falls back, and the classic majority still commits.
TEST_P(FastPathTest, CrashedMemberFallsBackToClassic) {
  ClusterOptions options = FastOptions();
  options.replica.fast_timeout = 500 * kMillisecond;
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  cluster.sim().RunFor(2 * kSecond);

  Replica* origin = cluster.ReplicaInZone(6);
  const Replica::FastGrant& grant = origin->fast_grant();
  ASSERT_TRUE(grant.valid());
  // Crash one non-leader member of the pinned quorum.
  NodeId victim = kInvalidNode;
  for (NodeId n : grant.quorum) {
    if (n != leader && n != origin->id()) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  cluster.transport().Crash(victim);

  Result<Duration> r =
      DriveSubmitOrForward(cluster, origin, Value::Of(1, "survivor"));
  EXPECT_EQ(origin->counters().fast_commits, 0u);
  EXPECT_GE(origin->counters().fast_fallbacks, 1u);
  if (GetParam() == ProtocolMode::kDelegate ||
      GetParam() == ProtocolMode::kLeaderZone) {
    // The pinned fast quorum IS the declared intent quorum, so the member
    // crash stalls the classic path too: the fallback times out exactly
    // like a fast-off forward would (no regression, just no progress
    // until failover).
    EXPECT_TRUE(r.status().IsTimedOut()) << r.status().ToString();
    return;
  }
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The origin is outside the decide fan-out; the leader learned it.
  EXPECT_TRUE(LogContainsPayload(cluster.replica(leader), "survivor"));
}

// Contention: two origins race the same fast quorum. Whatever mix of
// fast commits, slot splits and conflict resolutions results, both
// requests succeed and both values appear in the decided log.
TEST_P(FastPathTest, ContendingWritersBothCommit) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), FastOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  cluster.sim().RunFor(2 * kSecond);

  Replica* east = cluster.ReplicaInZone(2);  // Virginia
  Replica* far = cluster.ReplicaInZone(5);   // distant zone
  ASSERT_TRUE(east->fast_grant().valid());
  ASSERT_TRUE(far->fast_grant().valid());

  std::optional<Status> done_a, done_b;
  east->SubmitOrForward(Value::Of(1, "east-value"),
                        [&](const Status& st, SlotId, Duration) {
                          done_a = st;
                        });
  far->SubmitOrForward(Value::Of(2, "far-value"),
                       [&](const Status& st, SlotId, Duration) {
                         done_b = st;
                       });
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return done_a.has_value() && done_b.has_value(); },
      60 * kSecond));
  EXPECT_TRUE(done_a->ok()) << done_a->ToString();
  EXPECT_TRUE(done_b->ok()) << done_b->ToString();

  cluster.sim().RunFor(10 * kSecond);
  EXPECT_TRUE(LogContainsPayload(cluster.replica(leader), "east-value"));
  EXPECT_TRUE(LogContainsPayload(cluster.replica(leader), "far-value"));
  // No replica ever saw two different values decided in one slot.
  for (NodeId n : cluster.topology().AllNodes()) {
    EXPECT_EQ(cluster.replica(n)->counters().suspect_msgs_rejected, 0u)
        << "conflicting decision at node " << n;
  }
}

// A proposer whose grant went stale (it slept through a leader change)
// gets nacked by the acceptors and re-drives the request classically
// against the leader hint the nack carries.
TEST_P(FastPathTest, StaleGrantIsNackedAndFallsBack) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), FastOptions());
  const NodeId first = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(first).ok());
  cluster.sim().RunFor(2 * kSecond);

  Replica* origin = cluster.ReplicaInZone(6);
  ASSERT_TRUE(origin->fast_grant().valid());
  const Ballot stale = origin->fast_grant().ballot;

  // The origin sleeps through a leader change: the new grant never
  // reaches it.
  cluster.transport().Crash(origin->id());
  const NodeId second = cluster.NodeInZone(2);
  ASSERT_TRUE(cluster.ElectLeader(second).ok());
  cluster.sim().RunFor(2 * kSecond);
  cluster.transport().Recover(origin->id());
  ASSERT_EQ(origin->fast_grant().ballot, stale);

  Result<Duration> r =
      DriveSubmitOrForward(cluster, origin, Value::Of(1, "after-change"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(origin->counters().fast_commits, 0u);
  EXPECT_GE(origin->counters().fast_fallbacks, 1u);
  EXPECT_TRUE(LogContainsPayload(cluster.replica(second), "after-change"));
}

// A fast-committed value survives a leader change: the next election's
// prepare round observes the fast votes and re-proposes the value.
TEST_P(FastPathTest, ElectionRecoversFastCommittedValue) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), FastOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  cluster.sim().RunFor(2 * kSecond);

  Replica* origin = cluster.ReplicaInZone(6);
  std::optional<Status> done;
  SlotId fast_slot = kInvalidSlot;
  origin->SubmitOrForward(Value::Of(7, "durable"),
                          [&](const Status& st, SlotId s, Duration) {
                            done = st;
                            fast_slot = s;
                          });
  ASSERT_TRUE(cluster.RunUntil([&] { return done.has_value(); },
                               60 * kSecond));
  ASSERT_TRUE(done->ok());
  ASSERT_EQ(origin->counters().fast_commits, 1u);
  ASSERT_NE(fast_slot, kInvalidSlot);

  // Cut the leader off before stepping further, then elect a distant
  // node: its recovery scan must adopt the fast vote.
  cluster.transport().Crash(leader);
  Replica* successor = cluster.ReplicaInZone(4);
  ASSERT_TRUE(cluster.ElectLeader(successor->id()).ok());
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return successor->DecidedWatermark() > fast_slot; },
      60 * kSecond));
  EXPECT_EQ(DecidedPayload(successor, fast_slot), "durable");
}

// With the flag on but no grant armed (no election yet), SubmitOrForward
// behaves exactly like the classic path.
TEST_P(FastPathTest, NoGrantMeansClassicBehaviour) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), FastOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  // Do NOT run the sim further: the grant broadcast is still in flight
  // at the origin, so its grant is empty.
  Replica* origin = cluster.ReplicaInZone(6);
  origin->set_leader_hint(leader);
  ASSERT_FALSE(origin->fast_grant().valid());
  Result<Duration> r =
      DriveSubmitOrForward(cluster, origin, Value::Of(1, "plain"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(origin->counters().fast_commits, 0u);
}

// A leader holding a live grant refuses a same-ballot handoff: the
// promise-free transfer could hide completed fast commits from the new
// leader (docs/PROTOCOL.md §fast-path).
TEST_P(FastPathTest, HandoffRefusedWhileGrantLive) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam(), FastOptions());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  const Status st = cluster.replica(leader)->HandoffTo(1);
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
}

// Flag off: the fast counters stay untouched end to end.
TEST_P(FastPathTest, DisabledPathLeavesCountersZero) {
  Cluster cluster(Topology::AwsSevenZones(), GetParam());
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  Replica* origin = cluster.ReplicaInZone(6);
  origin->set_leader_hint(leader);
  ASSERT_TRUE(
      DriveSubmitOrForward(cluster, origin, Value::Of(1, "off")).ok());
  for (NodeId n : cluster.topology().AllNodes()) {
    const ProtocolCounters& c = cluster.replica(n)->counters();
    EXPECT_EQ(c.fast_commits, 0u);
    EXPECT_EQ(c.fast_votes, 0u);
    EXPECT_EQ(c.fast_fallbacks, 0u);
    EXPECT_EQ(c.fast_conflicts, 0u);
    EXPECT_FALSE(cluster.replica(n)->fast_grant().valid());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FastPathTest,
    ::testing::Values(ProtocolMode::kMultiPaxos, ProtocolMode::kFlexiblePaxos,
                      ProtocolMode::kDelegate, ProtocolMode::kLeaderZone),
    [](const ::testing::TestParamInfo<ProtocolMode>& info) {
      std::string name = ProtocolModeName(info.param);
      std::erase(name, '-');
      return name;
    });

}  // namespace
}  // namespace dpaxos
