// Tests for the shard-parallel runner (src/sim/shard_runner.*): the
// worker pool must never let its thread count leak into any simulated
// result. Every shard body runs exactly once on exactly one worker, the
// per-shard counter deltas fold back into the launching thread in
// shard-id order, and the full sharded simperf workload produces a
// byte-identical DeterminismString whether it runs on 1 thread or 8.
#include "sim/shard_runner.h"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/simperf.h"
#include "sim/simulator.h"

namespace dpaxos {
namespace {

TEST(ShardSeedTest, StableAndDistinct) {
  // Stable: the mix must never change — per-shard schedules are seeded
  // from it, and the golden determinism tests pin those schedules.
  EXPECT_EQ(ShardSeed(42, 0), ShardSeed(42, 0));
  std::set<uint64_t> seeds;
  for (uint32_t shard = 0; shard < 64; ++shard) {
    seeds.insert(ShardSeed(42, shard));
    EXPECT_NE(ShardSeed(42, shard), 42u) << "seed leaked through unmixed";
  }
  EXPECT_EQ(seeds.size(), 64u) << "shard seeds collided";
  EXPECT_NE(ShardSeed(42, 0), ShardSeed(43, 0));
}

TEST(ShardSetTest, RunsEveryShardExactlyOnceInShardIdOrder) {
  ShardSetOptions options;
  options.shards = 16;
  options.threads = 4;
  options.master_seed = 7;
  const ShardSet set(options);
  EXPECT_EQ(set.shards(), 16u);
  EXPECT_LE(set.threads(), 4u);

  std::mutex mu;
  std::vector<uint32_t> seen;
  const std::vector<ShardResult> results = set.Run([&](const ShardContext& ctx) {
    EXPECT_EQ(ctx.shard_count, 16u);
    EXPECT_EQ(ctx.seed, ShardSeed(7, ctx.shard_id));
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(ctx.shard_id);
  });

  EXPECT_EQ(seen.size(), 16u);
  EXPECT_EQ(std::set<uint32_t>(seen.begin(), seen.end()).size(), 16u);
  ASSERT_EQ(results.size(), 16u);
  for (uint32_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].shard_id, i) << "results not in shard-id order";
    EXPECT_EQ(results[i].seed, ShardSeed(7, i));
  }
}

TEST(ShardSetTest, ThreadsClampedToShardCount) {
  ShardSetOptions options;
  options.shards = 3;
  options.threads = 64;
  const ShardSet set(options);
  EXPECT_EQ(set.threads(), 3u);

  options.threads = 0;  // hardware concurrency, still clamped
  EXPECT_LE(ShardSet(options).threads(), 3u);
  EXPECT_GE(ShardSet(options).threads(), 1u);
}

TEST(ShardSetTest, ShardNeverMigratesMidRun) {
  ShardSetOptions options;
  options.shards = 8;
  options.threads = 4;
  const ShardSet set(options);
  std::atomic<bool> migrated{false};
  set.Run([&](const ShardContext&) {
    const std::thread::id start = std::this_thread::get_id();
    Simulator sim(1);
    for (int i = 0; i < 100; ++i) {
      sim.Schedule(i, [&] {
        if (std::this_thread::get_id() != start) migrated = true;
      });
    }
    sim.RunUntilIdle();
  });
  EXPECT_FALSE(migrated) << "a shard body hopped threads mid-run";
}

// The core invariant: per-shard counter deltas and their fold-back into
// the launching thread are identical for every thread count.
TEST(ShardSetTest, CountersIdenticalAcrossThreadCounts) {
  const auto body = [](const ShardContext& ctx) {
    Simulator sim(ctx.seed);
    Rng rng(ctx.seed);
    // Shard-dependent load so the deltas differ per shard.
    const int n = 50 + static_cast<int>(ctx.shard_id) * 13;
    for (int i = 0; i < n; ++i) {
      sim.Schedule(1 + rng.NextBounded(100), [] {});
    }
    sim.RunUntilIdle();
  };

  std::vector<std::vector<ShardResult>> runs;
  std::vector<PerfCounters> folded;
  for (uint32_t threads : {1u, 2u, 8u}) {
    ShardSetOptions options;
    options.shards = 8;
    options.threads = threads;
    options.master_seed = 42;
    const PerfCounters before = SnapshotPerfCounters();
    runs.push_back(ShardSet(options).Run(body));
    folded.push_back(SnapshotPerfCounters().DeltaSince(before));
  }

  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t s = 0; s < runs[0].size(); ++s) {
      const PerfCounters& a = runs[0][s].counters;
      const PerfCounters& b = runs[run][s].counters;
#define DPAXOS_EXPECT_FIELD_EQ(field) \
  EXPECT_EQ(a.field, b.field) << "shard " << s << " diverged on " #field;
      DPAXOS_PERF_COUNTER_FIELDS(DPAXOS_EXPECT_FIELD_EQ)
#undef DPAXOS_EXPECT_FIELD_EQ
    }
    // Fold-back totals seen by the launching thread match too.
#define DPAXOS_EXPECT_FOLD_EQ(field) \
  EXPECT_EQ(folded[0].field, folded[run].field) << "fold-back " #field;
    DPAXOS_PERF_COUNTER_FIELDS(DPAXOS_EXPECT_FOLD_EQ)
#undef DPAXOS_EXPECT_FOLD_EQ
  }
  // And the fold-back equals the shard-id-order aggregate of the results.
  const PerfCounters agg = AggregateShardCounters(runs[0]);
  EXPECT_EQ(folded[0].events_executed, agg.events_executed);
  EXPECT_EQ(folded[0].events_scheduled, agg.events_scheduled);
}

// The golden thread-invariance test (ISSUE acceptance): the full sharded
// simperf workload — clusters, closed loops, ShardedStore stealing — at
// --shards=8 --threads=1 versus --threads=8 renders a byte-identical
// DeterminismString. Everything simulated is a pure function of the seed;
// the thread count touches wall-clock fields only (excluded from the
// string).
TEST(ShardSetTest, ShardedSimperfByteIdenticalAcrossThreadCounts) {
  SimperfOptions options;
  options.smoke = true;
  options.shards = 8;
  options.partitions = 16;
  options.window = 4;

  options.threads = 1;
  const ShardedSimperfReport one = RunSimperfSharded(options);
  options.threads = 8;
  const ShardedSimperfReport eight = RunSimperfSharded(options);

  EXPECT_EQ(one.DeterminismString(), eight.DeterminismString())
      << "thread count leaked into a simulated result";
  EXPECT_EQ(one.Fingerprint(), eight.Fingerprint());
  EXPECT_GT(one.events, 0u);
  EXPECT_GT(one.committed, 0u);
  EXPECT_GT(one.steals, 0u) << "steal phase never fired";
}

}  // namespace
}  // namespace dpaxos
