// Regression tests for two safety hardenings beyond the paper's text,
// both found by the randomized soak:
//
// 1. A duplicated/replayed relinquish() must never re-activate a
//    dethroned leader (the paper's "sent only once per slot" assumes a
//    non-duplicating channel; receivers must deduplicate).
// 2. The GC threshold must only advance on proposes from leaders that
//    finished re-committing their adopted values: a slot-agnostic
//    threshold (paper Algorithm 3 as written) can otherwise collect an
//    intent whose decided values were not yet re-secured, and a crash of
//    the recovering leader then loses them.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

TEST(HardeningTest, DuplicatedRelinquishDoesNotResurrectLeadership) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId a = cluster.NodeInZone(0, 0);
  const NodeId b = cluster.NodeInZone(0, 1);
  ASSERT_TRUE(cluster.ElectLeader(a).ok());
  ASSERT_TRUE(cluster.Commit(a, Value::Of(1, "x")).ok());

  // A hands off to B; capture the relinquish parameters for the replay.
  const Ballot handoff_ballot = cluster.replica(a)->ballot();
  const SlotId handoff_next = cluster.replica(a)->next_slot();
  const std::vector<Intent> intents = cluster.replica(a)->declared_intents();
  ASSERT_TRUE(cluster.replica(a)->HandoffTo(b).ok());
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return cluster.replica(b)->is_leader(); }, 10 * kSecond));
  ASSERT_TRUE(cluster.Commit(b, Value::Of(2, "y")).ok());

  // C dethrones B with a real election.
  Replica* c = cluster.ReplicaInZone(2);
  c->PrimeBallot(handoff_ballot);
  ASSERT_TRUE(cluster.ElectLeader(c->id()).ok());
  cluster.sim().RunFor(3 * kSecond);
  ASSERT_TRUE(cluster.Commit(c->id(), Value::Of(3, "z")).ok());
  const SlotId c_log = c->next_slot();

  // The network replays the old relinquish at B: it must be ignored.
  auto replay = std::make_shared<RelinquishMsg>(
      0, handoff_ballot, handoff_next, intents, LeaderZoneView{});
  cluster.transport().Send(a, b, replay);
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_FALSE(cluster.replica(b)->is_leader());

  // And even a hostile direct Submit at B cannot damage the log: C's
  // decisions stand everywhere.
  cluster.replica(b)->Submit(Value::Of(99, "evil"),
                             [](const Status&, SlotId, Duration) {});
  cluster.sim().RunFor(10 * kSecond);
  std::map<SlotId, uint64_t> canonical;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const auto& [slot, value] : cluster.replica(n)->decided()) {
      auto [it, inserted] = canonical.emplace(slot, value.id);
      ASSERT_EQ(it->second, value.id) << "slot " << slot;
    }
  }
  EXPECT_GE(c_log, 3u);
}

TEST(HardeningTest, GcThresholdWaitsForRecoveryCompletion) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId first = cluster.NodeInZone(1);
  ASSERT_TRUE(cluster.ElectLeader(first).ok());
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(cluster.Commit(first, Value::Of(i, "v")).ok());
  }
  const Ballot first_ballot = cluster.replica(first)->ballot();

  // The new leader must adopt slots 0..2. Cut it off from its own
  // replication quorum companion so the adopted re-proposals CANNOT
  // commit: recovery stays pending.
  Replica* second = cluster.ReplicaInZone(4);
  second->PrimeBallot(first_ballot);
  const NodeId companion = cluster.NodeInZone(4, 1);
  cluster.transport().PartitionOneWay(second->id(), companion);
  ASSERT_TRUE(cluster.ElectLeader(second->id()).ok());
  // Its re-proposals are in flight but cannot complete.
  EXPECT_FALSE(second->RecoveryComplete());

  // The GC polls everyone: nobody may report the new ballot yet, so the
  // first leader's intent — the only copy of the decided values' home —
  // survives collection.
  GarbageCollector* gc = cluster.AddGarbageCollector(0);
  gc->SweepOnce();
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_LT(gc->threshold(), second->ballot());
  bool first_intent_alive = false;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const Intent& in : cluster.replica(n)->acceptor().intents()) {
      if (in.ballot == first_ballot) first_intent_alive = true;
    }
  }
  EXPECT_TRUE(first_intent_alive)
      << "intent collected before its values were re-secured";

  // Heal: recovery completes, the threshold advances, and only then is
  // the old intent collectable.
  cluster.transport().HealAll();
  ASSERT_TRUE(cluster.RunUntil([&] { return second->RecoveryComplete(); },
                               30 * kSecond));
  ASSERT_TRUE(cluster.Commit(second->id(), Value::Of(10, "new")).ok());
  gc->SweepOnce();
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_GE(gc->threshold(), second->ballot());
  // The decided values survived the whole episode.
  for (uint64_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(second->decided().at(i - 1).id, i);
  }
}

TEST(HardeningTest, FreshLeaderWithNothingToAdoptIsImmediatelyRecovered) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  EXPECT_TRUE(cluster.replica(leader)->RecoveryComplete());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "x")).ok());
  // Its very first propose advances the GC poll answer.
  EXPECT_EQ(cluster.replica(leader)->acceptor().gc_poll_ballot(),
            cluster.replica(leader)->ballot());
}

}  // namespace
}  // namespace dpaxos
