// Tests for the reconfiguration-based baseline (paper Section B.1(c)).
#include <gtest/gtest.h>

#include <optional>

#include "harness/cluster.h"
#include "reconfig/reconfigurable_group.h"

namespace dpaxos {
namespace {

Status Await(Cluster& cluster,
             const std::function<void(ReconfigurableGroup::StatusCallback)>&
                 go) {
  std::optional<Status> st;
  go([&](const Status& s) { st = s; });
  while (!st.has_value() && cluster.sim().Step()) {
  }
  return st.value_or(Status::TimedOut("stuck"));
}

Result<Duration> Commit(Cluster& cluster, ReconfigurableGroup& group,
                        Value value) {
  std::optional<Status> st;
  Duration latency = 0;
  group.Submit(std::move(value), [&](const Status& s, SlotId, Duration lat) {
    st = s;
    latency = lat;
  });
  while (!st.has_value() && cluster.sim().Step()) {
  }
  if (!st.has_value()) return Status::Internal("no progress");
  if (!st->ok()) return *st;
  return latency;
}

TEST(ConfigCodecTest, RoundTripAndRejects) {
  const std::vector<NodeId> members{3, 4, 5};
  const std::string bytes = EncodeConfig(7, members);
  auto decoded = DecodeConfig(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first, 7u);
  EXPECT_EQ(decoded->second, members);
  EXPECT_FALSE(DecodeConfig(bytes.substr(0, 5)).ok());
  EXPECT_FALSE(DecodeConfig(bytes + "x").ok());
}

TEST(ReconfigTest, StartServesFromInitialMembers) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ReconfigurableGroup group(&cluster, {});
  // Members: the three Tokyo nodes (2*fd+1 = 3 with fd=1).
  ASSERT_TRUE(Await(cluster, [&](auto cb) {
                group.Start(cluster.topology().NodesInZone(3), std::move(cb));
              }).ok());
  EXPECT_EQ(group.epoch(), 0u);
  EXPECT_EQ(cluster.topology().ZoneOf(group.leader()), 3u);

  // Commits replicate among members only: intra-zone latency.
  Result<Duration> r = Commit(cluster, group, Value::Synthetic(1, 1024));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LT(r.value(), FromMillis(15));
}

TEST(ReconfigTest, NonMembersNeverVote) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ReconfigurableGroup group(&cluster, {});
  ASSERT_TRUE(Await(cluster, [&](auto cb) {
                group.Start(cluster.topology().NodesInZone(3), std::move(cb));
              }).ok());
  ASSERT_TRUE(Commit(cluster, group, Value::Synthetic(1, 512)).ok());
  // A node outside Tokyo holds nothing for the data partition.
  const Replica* outsider =
      cluster.replica(cluster.NodeInZone(0), group.data_partition());
  EXPECT_EQ(outsider->acceptor().accepted_count(), 0u);
}

TEST(ReconfigTest, MoveChangesMembershipAndTransfersState) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ReconfigurableGroup group(&cluster, {});
  ASSERT_TRUE(Await(cluster, [&](auto cb) {
                group.Start(cluster.topology().NodesInZone(0), std::move(cb));
              }).ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(Commit(cluster, group, Value::Synthetic(i, 2048)).ok());
  }
  const uint64_t state = group.state_bytes();
  EXPECT_EQ(state, 5u * 2048u);
  const PartitionId old_partition = group.data_partition();

  // Users moved to Mumbai: reconfigure the group there.
  ASSERT_TRUE(Await(cluster, [&](auto cb) {
                group.Move(cluster.topology().NodesInZone(6), std::move(cb));
              }).ok());
  EXPECT_EQ(group.epoch(), 1u);
  EXPECT_NE(group.data_partition(), old_partition);
  EXPECT_EQ(cluster.topology().ZoneOf(group.leader()), 6u);

  // The snapshot landed in the new group.
  const Replica* new_leader =
      cluster.replica(group.leader(), group.data_partition());
  ASSERT_EQ(new_leader->decided().size(), 1u);
  EXPECT_EQ(new_leader->decided().begin()->second.size_bytes, state);

  // And the group keeps serving, locally in Mumbai.
  Result<Duration> r = Commit(cluster, group, Value::Synthetic(99, 1024));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value(), FromMillis(15));
}

TEST(ReconfigTest, ChainedMovesBumpEpochs) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ReconfigurableGroup group(&cluster, {});
  ASSERT_TRUE(Await(cluster, [&](auto cb) {
                group.Start(cluster.topology().NodesInZone(0), std::move(cb));
              }).ok());
  ASSERT_TRUE(Commit(cluster, group, Value::Synthetic(1, 1000)).ok());
  for (ZoneId z : {ZoneId{2}, ZoneId{4}, ZoneId{6}}) {
    ASSERT_TRUE(Await(cluster, [&](auto cb) {
                  group.Move(cluster.topology().NodesInZone(z),
                             std::move(cb));
                }).ok());
    ASSERT_TRUE(
        Commit(cluster, group, Value::Synthetic(10 + z, 1000)).ok());
  }
  EXPECT_EQ(group.epoch(), 3u);
  // The auxiliary log recorded every configuration (4 decided configs).
  const Replica* aux = cluster.replica(cluster.NodeInZone(0), 900);
  EXPECT_EQ(aux->decided().size(), 4u);
}

TEST(ReconfigTest, MoveCostsMoreThanDPaxosHandoff) {
  // The paper's argument (B.1c): reconfiguration-based movement costs
  // more than a DPaxos Leader Election / Handoff round. Compare the two
  // for the same mobility event (California -> Tokyo, aux in California).
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);

  // Reconfiguration path.
  ReconfigurableGroup group(&cluster, {});
  ASSERT_TRUE(Await(cluster, [&](auto cb) {
                group.Start(cluster.topology().NodesInZone(0), std::move(cb));
              }).ok());
  ASSERT_TRUE(Commit(cluster, group, Value::Synthetic(1, 50 * 1024)).ok());
  const Timestamp move_start = cluster.sim().Now();
  ASSERT_TRUE(Await(cluster, [&](auto cb) {
                group.Move(cluster.topology().NodesInZone(3), std::move(cb));
              }).ok());
  const Duration reconfig_cost = cluster.sim().Now() - move_start;

  // DPaxos handoff path for the same move.
  const NodeId old_leader = cluster.NodeInZone(0, 1);
  ASSERT_TRUE(cluster.ElectLeader(old_leader).ok());
  Replica* requester = cluster.ReplicaInZone(3, 1);
  const Timestamp handoff_start = cluster.sim().Now();
  Status handoff = Status::Internal("pending");
  bool done = false;
  requester->RequestHandoffFrom(old_leader, [&](const Status& st) {
    handoff = st;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 30 * kSecond));
  ASSERT_TRUE(handoff.ok());
  const Duration handoff_cost = cluster.sim().Now() - handoff_start;

  EXPECT_GT(reconfig_cost, 2 * handoff_cost)
      << "reconfig " << DurationToString(reconfig_cost) << " vs handoff "
      << DurationToString(handoff_cost);
}

}  // namespace
}  // namespace dpaxos
