// Tests for the workload-aware placement advisor.
#include <gtest/gtest.h>

#include "placement/placement.h"

namespace dpaxos {
namespace {

TEST(AccessStatsTest, RecordsAndDecays) {
  AccessStats stats(3, /*half_life=*/10 * kSecond);
  stats.Record(0, 0);
  stats.Record(0, 0);
  EXPECT_DOUBLE_EQ(stats.WeightAt(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(stats.WeightAt(1, 0), 0.0);
  // One half-life later the weight halved.
  EXPECT_NEAR(stats.WeightAt(0, 10 * kSecond), 1.0, 1e-9);
  EXPECT_NEAR(stats.WeightAt(0, 20 * kSecond), 0.5, 1e-9);
  EXPECT_NEAR(stats.TotalWeightAt(10 * kSecond), 1.0, 1e-9);
}

TEST(AccessStatsTest, RecordAfterDecayAccumulatesCorrectly) {
  AccessStats stats(2, 10 * kSecond);
  stats.Record(1, 0);
  stats.Record(1, 10 * kSecond);  // 0.5 decayed + 1
  EXPECT_NEAR(stats.WeightAt(1, 10 * kSecond), 1.5, 1e-9);
}

TEST(PlacementAdvisorTest, CostIsWeightedRtt) {
  const Topology topo = Topology::AwsSevenZones();
  PlacementAdvisor advisor(&topo);
  AccessStats stats(7, kSecond * 3600);
  // All accesses from Mumbai.
  for (int i = 0; i < 10; ++i) stats.Record(6, 0);
  // Leader in Mumbai: intra-zone RTT (10 ms).
  EXPECT_NEAR(advisor.CostMs(stats, 6, 0), 10.0, 1e-9);
  // Leader in California: Mumbai-California RTT.
  EXPECT_NEAR(advisor.CostMs(stats, 0, 0), 249.0, 1e-9);
}

TEST(PlacementAdvisorTest, RecommendsAccessCenter) {
  const Topology topo = Topology::AwsSevenZones();
  PlacementAdvisor advisor(&topo);
  AccessStats stats(7, kSecond * 3600);
  for (int i = 0; i < 8; ++i) stats.Record(6, 0);  // Mumbai-heavy
  for (int i = 0; i < 2; ++i) stats.Record(5, 0);  // some Singapore

  const PlacementAdvice advice = advisor.Advise(stats, /*current=*/0, 0);
  EXPECT_EQ(advice.best_zone, 6u);
  EXPECT_TRUE(advice.should_move);
  EXPECT_LT(advice.best_cost_ms, advice.current_cost_ms);
}

TEST(PlacementAdvisorTest, HysteresisSuppressesMarginalMoves) {
  const Topology topo = Topology::AwsSevenZones();
  PlacementAdvisor advisor(&topo, /*min_improvement=*/0.5);
  AccessStats stats(7, kSecond * 3600);
  // California and Oregon (19 ms apart) split the workload: moving
  // between them changes little.
  for (int i = 0; i < 5; ++i) stats.Record(0, 0);
  for (int i = 0; i < 6; ++i) stats.Record(1, 0);

  const PlacementAdvice advice = advisor.Advise(stats, /*current=*/0, 0);
  EXPECT_FALSE(advice.should_move);
}

TEST(PlacementAdvisorTest, NeedsEnoughSignal) {
  const Topology topo = Topology::AwsSevenZones();
  PlacementAdvisor advisor(&topo, 0.2, /*min_weight=*/5.0);
  AccessStats stats(7, kSecond * 3600);
  stats.Record(6, 0);  // a single access is not a trend
  EXPECT_FALSE(advisor.Advise(stats, 0, 0).should_move);
  for (int i = 0; i < 10; ++i) stats.Record(6, 0);
  EXPECT_TRUE(advisor.Advise(stats, 0, 0).should_move);
}

TEST(PlacementAdvisorTest, MobilityShiftsTheRecommendation) {
  // A user moves California -> Mumbai; decay forgets the old location.
  const Topology topo = Topology::AwsSevenZones();
  PlacementAdvisor advisor(&topo);
  AccessStats stats(7, /*half_life=*/30 * kSecond);
  for (int i = 0; i < 20; ++i) stats.Record(0, 0);
  EXPECT_EQ(advisor.Advise(stats, 0, 0).best_zone, 0u);

  // 10 virtual minutes later the user is in Mumbai.
  const Timestamp later = 600 * kSecond;
  for (int i = 0; i < 10; ++i) stats.Record(6, later);
  const PlacementAdvice advice = advisor.Advise(stats, 0, later);
  EXPECT_EQ(advice.best_zone, 6u);
  EXPECT_TRUE(advice.should_move);
}

TEST(PlacementAdvisorTest, StayingPutIsNeverAMove) {
  const Topology topo = Topology::AwsSevenZones();
  PlacementAdvisor advisor(&topo);
  AccessStats stats(7, kSecond * 3600);
  for (int i = 0; i < 10; ++i) stats.Record(2, 0);
  const PlacementAdvice advice = advisor.Advise(stats, /*current=*/2, 0);
  EXPECT_EQ(advice.best_zone, 2u);
  EXPECT_FALSE(advice.should_move);
  EXPECT_DOUBLE_EQ(advice.best_cost_ms, advice.current_cost_ms);
}

}  // namespace
}  // namespace dpaxos
