// Exhaustive-oracle property tests for QuorumRule: on small node
// universes, compare IsSatisfied / IsImpossible / AlwaysIntersects /
// PickSatisfyingSetAvoiding against a brute-force enumeration of every
// node subset. Any divergence in the rule algebra — the foundation under
// every intersection argument in the protocol — shows up here.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "quorum/quorum_rule.h"

namespace dpaxos {
namespace {

constexpr uint32_t kUniverse = 10;  // 2^10 subsets, fully enumerable

std::set<NodeId> SubsetFromMask(uint32_t mask) {
  std::set<NodeId> out;
  for (NodeId n = 0; n < kUniverse; ++n) {
    if (mask & (1u << n)) out.insert(n);
  }
  return out;
}

// Generate a random (but valid) rule over the small universe.
QuorumRule RandomRule(Rng& rng) {
  std::vector<QuorumGroup> groups;
  const uint32_t num_groups = 1 + rng.NextBounded(3);
  for (uint32_t g = 0; g < num_groups; ++g) {
    QuorumGroup group;
    const uint32_t num_reqs = 1 + rng.NextBounded(3);
    for (uint32_t r = 0; r < num_reqs; ++r) {
      std::vector<NodeId> candidates;
      for (NodeId n = 0; n < kUniverse; ++n) {
        if (rng.NextBool(0.5)) candidates.push_back(n);
      }
      if (candidates.empty()) candidates.push_back(
          static_cast<NodeId>(rng.NextBounded(kUniverse)));
      const uint32_t min_acks =
          static_cast<uint32_t>(rng.NextBounded(candidates.size() + 1));
      group.requirements.push_back({std::move(candidates), min_acks});
    }
    group.min_satisfied =
        1 + static_cast<uint32_t>(rng.NextBounded(group.requirements.size()));
    groups.push_back(std::move(group));
  }
  return QuorumRule(std::move(groups));
}

// Reference implementation of IsSatisfied, straight from the definition.
bool OracleSatisfied(const QuorumRule& rule, const std::set<NodeId>& acks) {
  for (const QuorumGroup& g : rule.groups()) {
    uint32_t satisfied = 0;
    for (const QuorumRequirement& req : g.requirements) {
      uint32_t have = 0;
      for (NodeId n : req.candidates) {
        if (acks.count(n) > 0) ++have;
      }
      if (have >= req.min_acks) ++satisfied;
    }
    if (satisfied < g.min_satisfied) return false;
  }
  return true;
}

TEST(QuorumRuleOracleTest, IsSatisfiedMatchesBruteForce) {
  Rng rng(2718);
  for (int trial = 0; trial < 30; ++trial) {
    const QuorumRule rule = RandomRule(rng);
    // Spot-check 256 random subsets plus structured corners.
    for (int s = 0; s < 256; ++s) {
      const std::set<NodeId> acks =
          SubsetFromMask(static_cast<uint32_t>(rng.NextBounded(1u << kUniverse)));
      EXPECT_EQ(rule.IsSatisfied(acks), OracleSatisfied(rule, acks))
          << rule.ToString();
    }
    EXPECT_EQ(rule.IsSatisfied({}), OracleSatisfied(rule, {}));
    EXPECT_EQ(rule.IsSatisfied(SubsetFromMask((1u << kUniverse) - 1)),
              OracleSatisfied(rule, SubsetFromMask((1u << kUniverse) - 1)));
  }
}

TEST(QuorumRuleOracleTest, ImpossibleMatchesExhaustiveSearch) {
  Rng rng(314159);
  for (int trial = 0; trial < 15; ++trial) {
    const QuorumRule rule = RandomRule(rng);
    const std::set<NodeId> rejected = SubsetFromMask(
        static_cast<uint32_t>(rng.NextBounded(1u << kUniverse)));
    // Oracle: impossible iff NO subset of the non-rejected nodes works.
    bool any_satisfies = false;
    for (uint32_t mask = 0; mask < (1u << kUniverse); ++mask) {
      const std::set<NodeId> acks = SubsetFromMask(mask);
      bool overlaps = false;
      for (NodeId n : acks) {
        if (rejected.count(n) > 0) overlaps = true;
      }
      if (overlaps) continue;
      if (OracleSatisfied(rule, acks)) {
        any_satisfies = true;
        break;
      }
    }
    EXPECT_EQ(rule.IsImpossible(rejected), !any_satisfies)
        << rule.ToString();
  }
}

TEST(QuorumRuleOracleTest, AlwaysIntersectsMatchesExhaustiveSearch) {
  Rng rng(1618);
  for (int trial = 0; trial < 15; ++trial) {
    const QuorumRule rule = RandomRule(rng);
    const std::set<NodeId> target = SubsetFromMask(
        static_cast<uint32_t>(rng.NextBounded(1u << kUniverse)));
    // Oracle: intersects-always iff every satisfying subset overlaps.
    bool found_disjoint_satisfier = false;
    for (uint32_t mask = 0; mask < (1u << kUniverse); ++mask) {
      const std::set<NodeId> acks = SubsetFromMask(mask);
      bool overlaps = false;
      for (NodeId n : acks) {
        if (target.count(n) > 0) overlaps = true;
      }
      if (overlaps) continue;
      if (OracleSatisfied(rule, acks)) {
        found_disjoint_satisfier = true;
        break;
      }
    }
    const bool rule_satisfiable_at_all = !rule.IsImpossible({});
    if (rule_satisfiable_at_all) {
      EXPECT_EQ(rule.AlwaysIntersects(target), !found_disjoint_satisfier)
          << rule.ToString();
    }
  }
}

TEST(QuorumRuleOracleTest, PickedSetsAreValidAndAvoidant) {
  Rng rng(4669);
  for (int trial = 0; trial < 30; ++trial) {
    const QuorumRule rule = RandomRule(rng);
    const std::set<NodeId> avoid = SubsetFromMask(
        static_cast<uint32_t>(rng.NextBounded(1u << kUniverse)));
    const std::vector<NodeId> picked = rule.PickSatisfyingSetAvoiding(avoid);
    if (picked.empty()) {
      // Either genuinely impossible, or the rule is satisfied by the
      // empty set (all-zero thresholds).
      if (!rule.IsImpossible(avoid)) {
        EXPECT_TRUE(OracleSatisfied(rule, {})) << rule.ToString();
      }
      continue;
    }
    const std::set<NodeId> set(picked.begin(), picked.end());
    EXPECT_TRUE(OracleSatisfied(rule, set)) << rule.ToString();
    for (NodeId n : set) EXPECT_EQ(avoid.count(n), 0u);
  }
}

}  // namespace
}  // namespace dpaxos
