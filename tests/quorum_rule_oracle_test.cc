// Exhaustive-oracle property tests for QuorumRule: on small node
// universes, compare IsSatisfied / IsImpossible / AlwaysIntersects /
// PickSatisfyingSetAvoiding against a brute-force enumeration of every
// node subset. Any divergence in the rule algebra — the foundation under
// every intersection argument in the protocol — shows up here.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "net/topology.h"
#include "quorum/quorum_rule.h"
#include "quorum/quorum_system.h"

namespace dpaxos {
namespace {

constexpr uint32_t kUniverse = 10;  // 2^10 subsets, fully enumerable

std::set<NodeId> SubsetFromMask(uint32_t mask) {
  std::set<NodeId> out;
  for (NodeId n = 0; n < kUniverse; ++n) {
    if (mask & (1u << n)) out.insert(n);
  }
  return out;
}

// Generate a random (but valid) rule over the small universe.
QuorumRule RandomRule(Rng& rng) {
  std::vector<QuorumGroup> groups;
  const uint32_t num_groups = 1 + rng.NextBounded(3);
  for (uint32_t g = 0; g < num_groups; ++g) {
    QuorumGroup group;
    const uint32_t num_reqs = 1 + rng.NextBounded(3);
    for (uint32_t r = 0; r < num_reqs; ++r) {
      std::vector<NodeId> candidates;
      for (NodeId n = 0; n < kUniverse; ++n) {
        if (rng.NextBool(0.5)) candidates.push_back(n);
      }
      if (candidates.empty()) candidates.push_back(
          static_cast<NodeId>(rng.NextBounded(kUniverse)));
      const uint32_t min_acks =
          static_cast<uint32_t>(rng.NextBounded(candidates.size() + 1));
      group.requirements.push_back({std::move(candidates), min_acks});
    }
    group.min_satisfied =
        1 + static_cast<uint32_t>(rng.NextBounded(group.requirements.size()));
    groups.push_back(std::move(group));
  }
  return QuorumRule(std::move(groups));
}

// Reference implementation of IsSatisfied, straight from the definition.
bool OracleSatisfied(const QuorumRule& rule, const std::set<NodeId>& acks) {
  for (const QuorumGroup& g : rule.groups()) {
    uint32_t satisfied = 0;
    for (const QuorumRequirement& req : g.requirements) {
      uint32_t have = 0;
      for (NodeId n : req.candidates) {
        if (acks.count(n) > 0) ++have;
      }
      if (have >= req.min_acks) ++satisfied;
    }
    if (satisfied < g.min_satisfied) return false;
  }
  return true;
}

TEST(QuorumRuleOracleTest, IsSatisfiedMatchesBruteForce) {
  Rng rng(2718);
  for (int trial = 0; trial < 30; ++trial) {
    const QuorumRule rule = RandomRule(rng);
    // Spot-check 256 random subsets plus structured corners.
    for (int s = 0; s < 256; ++s) {
      const std::set<NodeId> acks =
          SubsetFromMask(static_cast<uint32_t>(rng.NextBounded(1u << kUniverse)));
      EXPECT_EQ(rule.IsSatisfied(acks), OracleSatisfied(rule, acks))
          << rule.ToString();
    }
    EXPECT_EQ(rule.IsSatisfied({}), OracleSatisfied(rule, {}));
    EXPECT_EQ(rule.IsSatisfied(SubsetFromMask((1u << kUniverse) - 1)),
              OracleSatisfied(rule, SubsetFromMask((1u << kUniverse) - 1)));
  }
}

TEST(QuorumRuleOracleTest, ImpossibleMatchesExhaustiveSearch) {
  Rng rng(314159);
  for (int trial = 0; trial < 15; ++trial) {
    const QuorumRule rule = RandomRule(rng);
    const std::set<NodeId> rejected = SubsetFromMask(
        static_cast<uint32_t>(rng.NextBounded(1u << kUniverse)));
    // Oracle: impossible iff NO subset of the non-rejected nodes works.
    bool any_satisfies = false;
    for (uint32_t mask = 0; mask < (1u << kUniverse); ++mask) {
      const std::set<NodeId> acks = SubsetFromMask(mask);
      bool overlaps = false;
      for (NodeId n : acks) {
        if (rejected.count(n) > 0) overlaps = true;
      }
      if (overlaps) continue;
      if (OracleSatisfied(rule, acks)) {
        any_satisfies = true;
        break;
      }
    }
    EXPECT_EQ(rule.IsImpossible(rejected), !any_satisfies)
        << rule.ToString();
  }
}

TEST(QuorumRuleOracleTest, AlwaysIntersectsMatchesExhaustiveSearch) {
  Rng rng(1618);
  for (int trial = 0; trial < 15; ++trial) {
    const QuorumRule rule = RandomRule(rng);
    const std::set<NodeId> target = SubsetFromMask(
        static_cast<uint32_t>(rng.NextBounded(1u << kUniverse)));
    // Oracle: intersects-always iff every satisfying subset overlaps.
    bool found_disjoint_satisfier = false;
    for (uint32_t mask = 0; mask < (1u << kUniverse); ++mask) {
      const std::set<NodeId> acks = SubsetFromMask(mask);
      bool overlaps = false;
      for (NodeId n : acks) {
        if (target.count(n) > 0) overlaps = true;
      }
      if (overlaps) continue;
      if (OracleSatisfied(rule, acks)) {
        found_disjoint_satisfier = true;
        break;
      }
    }
    const bool rule_satisfiable_at_all = !rule.IsImpossible({});
    if (rule_satisfiable_at_all) {
      EXPECT_EQ(rule.AlwaysIntersects(target), !found_disjoint_satisfier)
          << rule.ToString();
    }
  }
}

TEST(QuorumRuleOracleTest, PickedSetsAreValidAndAvoidant) {
  Rng rng(4669);
  for (int trial = 0; trial < 30; ++trial) {
    const QuorumRule rule = RandomRule(rng);
    const std::set<NodeId> avoid = SubsetFromMask(
        static_cast<uint32_t>(rng.NextBounded(1u << kUniverse)));
    const std::vector<NodeId> picked = rule.PickSatisfyingSetAvoiding(avoid);
    if (picked.empty()) {
      // Either genuinely impossible, or the rule is satisfied by the
      // empty set (all-zero thresholds).
      if (!rule.IsImpossible(avoid)) {
        EXPECT_TRUE(OracleSatisfied(rule, {})) << rule.ToString();
      }
      continue;
    }
    const std::set<NodeId> set(picked.begin(), picked.end());
    EXPECT_TRUE(OracleSatisfied(rule, set)) << rule.ToString();
    for (NodeId n : set) EXPECT_EQ(avoid.count(n), 0u);
  }
}

// --- fast-quorum / recovery-quorum intersection oracle ------------------
//
// The fast path's relaxed intersection predicate (docs/PROTOCOL.md
// §fast-path): a leader's pinned fast quorum must intersect every
// possible recovery (leader-election) quorum, but fast quorums of
// different leaders need not intersect each other. These tests enumerate
// every fast/recovery pair on small real DPaxos geometries and check
// FastIntersectsRecovery against brute-force subset enumeration.

// Brute-force ground truth: does EVERY subset satisfying `rule` meet
// `fast`? Enumerates all 2^n node subsets of the topology.
bool OracleFastIntersects(const std::vector<NodeId>& fast,
                          const QuorumRule& rule, uint32_t num_nodes) {
  const std::set<NodeId> fast_set(fast.begin(), fast.end());
  for (uint32_t mask = 0; mask < (1u << num_nodes); ++mask) {
    std::set<NodeId> acks;
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (mask & (1u << n)) acks.insert(n);
    }
    if (!OracleSatisfied(rule, acks)) continue;
    bool overlaps = false;
    for (NodeId n : acks) {
      if (fast_set.count(n) > 0) overlaps = true;
    }
    if (!overlaps) return false;  // a recovery quorum that dodges `fast`
  }
  return true;
}

struct FastGeometry {
  std::string name;
  ProtocolMode mode;
  uint32_t zones;
  uint32_t nodes_per_zone;
  FaultTolerance ft;
};

class FastQuorumOracleTest : public ::testing::TestWithParam<FastGeometry> {};

TEST_P(FastQuorumOracleTest, PredicateMatchesBruteForceForEveryPair) {
  const FastGeometry& g = GetParam();
  const Topology topo =
      Topology::Uniform(g.zones, g.nodes_per_zone, 100.0);
  const uint32_t n = topo.num_nodes();
  ASSERT_LE(n, 12u) << "universe too large to enumerate";
  std::unique_ptr<QuorumSystem> qs = MakeQuorumSystem(g.mode, &topo, g.ft);

  for (NodeId leader = 0; leader < n; ++leader) {
    const std::vector<NodeId> fast = qs->FastQuorum(leader);
    ASSERT_FALSE(fast.empty()) << "no fast quorum for leader " << leader;
    // The leader gates every fast commit with its own acceptor vote.
    EXPECT_NE(std::find(fast.begin(), fast.end(), leader), fast.end());

    for (NodeId aspirant = 0; aspirant < n; ++aspirant) {
      QuorumRule recovery = qs->LeaderElectionRule(aspirant, LeaderZoneView{});
      if (qs->UsesIntents()) {
        // Expanding Quorums: the fast quorum IS the declared intent, so a
        // recovering election detects it and merges a one-node-overlap
        // requirement into its rule (Replica::OnPromise does exactly this).
        recovery = recovery.MergedWith(QuorumRule::Simple(fast, 1));
      }
      const bool oracle = OracleFastIntersects(fast, recovery, n);
      EXPECT_EQ(QuorumSystem::FastIntersectsRecovery(fast, recovery), oracle)
          << "leader " << leader << " aspirant " << aspirant << " "
          << recovery.ToString();
      // And the protocol-level safety requirement itself must hold.
      EXPECT_TRUE(oracle) << "fast quorum of leader " << leader
                          << " misses a recovery quorum of " << aspirant;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FastQuorumOracleTest,
    ::testing::Values(
        FastGeometry{"MultiPaxos3x3", ProtocolMode::kMultiPaxos, 3, 3,
                     FaultTolerance{1, 1}},
        FastGeometry{"ZoneCentric3x3", ProtocolMode::kFlexiblePaxos, 3, 3,
                     FaultTolerance{1, 1}},
        FastGeometry{"Delegate3x3", ProtocolMode::kDelegate, 3, 3,
                     FaultTolerance{1, 1}},
        FastGeometry{"LeaderZone3x3", ProtocolMode::kLeaderZone, 3, 3,
                     FaultTolerance{1, 1}},
        FastGeometry{"MultiPaxos5x2", ProtocolMode::kMultiPaxos, 5, 2,
                     FaultTolerance{0, 2}},
        FastGeometry{"ZoneCentric5x2", ProtocolMode::kFlexiblePaxos, 5, 2,
                     FaultTolerance{0, 2}},
        FastGeometry{"Delegate5x2", ProtocolMode::kDelegate, 5, 2,
                     FaultTolerance{0, 2}},
        FastGeometry{"LeaderZone5x2", ProtocolMode::kLeaderZone, 5, 2,
                     FaultTolerance{0, 2}}),
    [](const ::testing::TestParamInfo<FastGeometry>& info) {
      return info.param.name;
    });

// The relaxation is real: on a wide zone-centric geometry two leaders'
// fast quorums are DISJOINT, yet each still intersects every recovery
// quorum — fast/fast intersection is genuinely not required.
TEST(FastQuorumOracleTest, DisjointFastQuorumsStillRecoverable) {
  const Topology topo = Topology::AwsSevenZones();
  const FaultTolerance ft{1, 1};
  ZoneCentricQuorumSystem qs(&topo, ft);

  const NodeId california = 0;
  const NodeId mumbai = topo.num_nodes() - 1;
  ASSERT_NE(topo.ZoneOf(california), topo.ZoneOf(mumbai));
  const std::vector<NodeId> fast_a = qs.FastQuorum(california);
  const std::vector<NodeId> fast_b = qs.FastQuorum(mumbai);
  ASSERT_FALSE(fast_a.empty());
  ASSERT_FALSE(fast_b.empty());

  std::set<NodeId> overlap;
  for (NodeId a : fast_a) {
    if (std::find(fast_b.begin(), fast_b.end(), a) != fast_b.end()) {
      overlap.insert(a);
    }
  }
  EXPECT_TRUE(overlap.empty())
      << "expected disjoint fast quorums on opposite sides of the planet";

  for (NodeId aspirant = 0; aspirant < topo.num_nodes(); ++aspirant) {
    const QuorumRule recovery =
        qs.LeaderElectionRule(aspirant, LeaderZoneView{});
    EXPECT_TRUE(QuorumSystem::FastIntersectsRecovery(fast_a, recovery));
    EXPECT_TRUE(QuorumSystem::FastIntersectsRecovery(fast_b, recovery));
  }
}

}  // namespace
}  // namespace dpaxos
