// Protocol tests for Leader Election with Expanding Quorums: intent
// declaration/detection, quorum expansion, value adoption across leader
// changes, and the safety of concurrent elections.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

TEST(ElectionTest, DelegateDeclaresIntentAtVoters) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kDelegate);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  // The leader's intent (its replication quorum) is stored at the
  // acceptors that voted for it — a majority of nodes in a majority of
  // zones near California.
  ASSERT_EQ(cluster.replica(leader)->declared_intents().size(), 1u);
  const Intent& intent = cluster.replica(leader)->declared_intents()[0];
  EXPECT_EQ(intent.leader, leader);
  EXPECT_EQ(intent.quorum, (std::vector<NodeId>{0, 1}));

  int holders = 0;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const Intent& stored : cluster.replica(n)->acceptor().intents()) {
      if (stored.ballot == cluster.replica(leader)->ballot()) ++holders;
    }
  }
  // At least a majority of nodes in a majority of zones hold it.
  EXPECT_GE(holders, 2 * 4);
}

TEST(ElectionTest, DelegateExpandsToDetectedIntent) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kDelegate);
  // First leader in Mumbai: its delegate quorum covers the zones near
  // Mumbai; its intent is a Mumbai-local replication quorum.
  const NodeId mumbai = cluster.NodeInZone(6);
  ASSERT_TRUE(cluster.ElectLeader(mumbai).ok());
  ASSERT_TRUE(cluster.Commit(mumbai, Value::Of(1, "m")).ok());

  // A Californian aspirant's majority-of-zones does not contain Mumbai,
  // but overlaps the Mumbai leader's delegate quorum — so it detects the
  // intent and must expand to intersect the Mumbai replication quorum.
  const NodeId cal = cluster.NodeInZone(0);
  cluster.replica(cal)->PrimeBallot(cluster.replica(mumbai)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(cal).ok());
  EXPECT_EQ(cluster.replica(cal)->expansion_rounds(), 1u);
  EXPECT_TRUE(cluster.replica(cal)->is_leader());
  EXPECT_FALSE(cluster.replica(mumbai)->is_leader());
}

TEST(ElectionTest, ExpansionGuaranteesOldLeaderCannotCommit) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kDelegate);
  const NodeId mumbai = cluster.NodeInZone(6);
  ASSERT_TRUE(cluster.ElectLeader(mumbai).ok());
  ASSERT_TRUE(cluster.Commit(mumbai, Value::Of(1, "a")).ok());

  const NodeId cal = cluster.NodeInZone(0);
  cluster.replica(cal)->PrimeBallot(cluster.replica(mumbai)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(cal).ok());

  // The dethroned Mumbai leader's next propose must be rejected: the
  // expanded LE quorum promised a higher ballot at >= 1 of its
  // replication-quorum members (Theorem 2).
  Result<Duration> stale = cluster.Commit(mumbai, Value::Of(2, "stale"));
  // Auto-election kicks in on the submit path, so the commit may succeed
  // after a re-election — but never under the old ballot. Check the log:
  // slot 1 must have exactly one decided value across all replicas.
  std::map<SlotId, uint64_t> seen;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const auto& [slot, value] : cluster.replica(n)->decided()) {
      auto it = seen.find(slot);
      if (it == seen.end()) {
        seen[slot] = value.id;
      } else {
        EXPECT_EQ(it->second, value.id) << "conflicting decision @" << slot;
      }
    }
  }
  (void)stale;
}

TEST(ElectionTest, NewLeaderAdoptsAcceptedValues) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kDelegate);
  const NodeId first = cluster.NodeInZone(1);
  ASSERT_TRUE(cluster.ElectLeader(first).ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        cluster.Commit(first, Value::Of(i, "v" + std::to_string(i))).ok());
  }

  const NodeId second = cluster.NodeInZone(4);
  cluster.replica(second)->PrimeBallot(cluster.replica(first)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(second).ok());
  // The new leader re-proposed the adopted values; drive to quiescence.
  cluster.sim().RunFor(5 * kSecond);

  // Every slot decided by the first leader is decided identically at the
  // second (it intersected the first's replication quorum and adopted).
  const auto& log1 = cluster.replica(first)->decided();
  const auto& log2 = cluster.replica(second)->decided();
  ASSERT_EQ(log1.size(), 5u);
  for (const auto& [slot, value] : log1) {
    auto it = log2.find(slot);
    ASSERT_NE(it, log2.end()) << "slot " << slot << " not adopted";
    EXPECT_EQ(it->second.id, value.id);
  }
  // And new commits continue after the adopted prefix.
  ASSERT_TRUE(cluster.Commit(second, Value::Of(100, "new")).ok());
  EXPECT_GE(cluster.replica(second)->next_slot(), 6u);
}

TEST(ElectionTest, ConcurrentAspirantsExactlyOneWins) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kDelegate);
  Replica* a = cluster.ReplicaInZone(0);
  Replica* b = cluster.ReplicaInZone(3);
  int done = 0;
  Status sa, sb;
  a->TryBecomeLeader([&](const Status& st) { sa = st; ++done; });
  b->TryBecomeLeader([&](const Status& st) { sb = st; ++done; });
  ASSERT_TRUE(cluster.RunUntil([&] { return done == 2; }, 120 * kSecond));
  // Through preemption and retries, both eventually resolve; the final
  // state has at most one leader (the loser either failed or deferred).
  cluster.sim().RunFor(10 * kSecond);
  int leaders = 0;
  for (NodeId n : cluster.topology().AllNodes()) {
    if (cluster.replica(n)->is_leader()) ++leaders;
  }
  EXPECT_LE(leaders, 1);
  EXPECT_GE(leaders, 0);
  // Whoever claims leadership can commit.
  for (NodeId n : cluster.topology().AllNodes()) {
    if (cluster.replica(n)->is_leader()) {
      EXPECT_TRUE(cluster.Commit(n, Value::Of(1, "x")).ok());
    }
  }
}

TEST(ElectionTest, FlexiblePaxosNeedsNoExpansion) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kFlexiblePaxos);
  const NodeId first = cluster.NodeInZone(6);
  ASSERT_TRUE(cluster.ElectLeader(first).ok());
  ASSERT_TRUE(cluster.Commit(first, Value::Of(1, "a")).ok());

  const NodeId second = cluster.NodeInZone(0);
  cluster.replica(second)->PrimeBallot(cluster.replica(first)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(second).ok());
  // Inter-intersection holds by construction: no expansion rounds ever.
  EXPECT_EQ(cluster.replica(second)->expansion_rounds(), 0u);
}

TEST(ElectionTest, ElectionTimesOutWhenQuorumUnreachable) {
  ClusterOptions options;
  options.replica.max_le_attempts = 2;
  options.replica.le_timeout = 500 * kMillisecond;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  // Crash a majority of the Leader Zone (zone 0).
  cluster.transport().Crash(1);
  cluster.transport().Crash(2);

  Replica* aspirant = cluster.ReplicaInZone(3);
  Status result;
  bool done = false;
  aspirant->TryBecomeLeader([&](const Status& st) {
    result = st;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&] { return done; }, 60 * kSecond));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(aspirant->is_leader());
}

TEST(ElectionTest, ConsolidatedRoundsContactEveryone) {
  ClusterOptions options;
  options.replica.consolidate_le_rounds = true;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kDelegate,
                  options);
  const NodeId mumbai = cluster.NodeInZone(6);
  ASSERT_TRUE(cluster.ElectLeader(mumbai).ok());
  ASSERT_TRUE(cluster.Commit(mumbai, Value::Of(1, "a")).ok());

  const NodeId cal = cluster.NodeInZone(0);
  cluster.replica(cal)->PrimeBallot(cluster.replica(mumbai)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(cal).ok());
  // Round 1 already covered the detected intent's quorum: no second round.
  EXPECT_EQ(cluster.replica(cal)->expansion_rounds(), 0u);
}

}  // namespace
}  // namespace dpaxos
