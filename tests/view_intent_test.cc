// Unit tests for LeaderZoneView ordering and multi-intent construction.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "quorum/quorum_system.h"

namespace dpaxos {
namespace {

LeaderZoneView V(uint64_t epoch, ZoneId current,
                 ZoneId next = kInvalidZone) {
  LeaderZoneView v;
  v.epoch = epoch;
  v.current = current;
  v.next = next;
  return v;
}

TEST(LeaderZoneViewTest, EpochOrdersViews) {
  EXPECT_TRUE(V(2, 0).IsNewerThan(V(1, 5)));
  EXPECT_FALSE(V(1, 5).IsNewerThan(V(2, 0)));
  EXPECT_FALSE(V(1, 0).IsNewerThan(V(1, 0)));
}

TEST(LeaderZoneViewTest, TransitionIsNewerWithinAnEpoch) {
  // Same epoch: knowing about an in-progress transition is strictly
  // more information.
  EXPECT_TRUE(V(1, 0, 3).IsNewerThan(V(1, 0)));
  EXPECT_FALSE(V(1, 0).IsNewerThan(V(1, 0, 3)));
  // But a completed later epoch beats any transition of an earlier one.
  EXPECT_TRUE(V(2, 3).IsNewerThan(V(1, 0, 3)));
  // Two transitions of the same epoch are not ordered (the synod makes
  // them agree on the same next zone anyway).
  EXPECT_FALSE(V(1, 0, 3).IsNewerThan(V(1, 0, 3)));
}

TEST(LeaderZoneViewTest, InTransition) {
  EXPECT_FALSE(V(0, 0).in_transition());
  EXPECT_TRUE(V(0, 0, 1).in_transition());
}

class MultiIntentTest : public ::testing::Test {
 protected:
  // Elect with `num_intents` and return the declared intents.
  static std::vector<Intent> Declare(uint32_t num_intents, uint32_t fd = 1,
                                     uint32_t nodes_per_zone = 3) {
    ClusterOptions options;
    options.ft = FaultTolerance{fd, 0};
    options.replica.num_intents = num_intents;
    Cluster cluster(Topology::Uniform(5, nodes_per_zone, 80.0),
                    ProtocolMode::kLeaderZone, options);
    Replica* leader = cluster.ReplicaInZone(0);
    EXPECT_TRUE(cluster.ElectLeader(leader->id()).ok());
    return leader->declared_intents();
  }
};

TEST_F(MultiIntentTest, SingleIntentIsTheSmallestQuorum) {
  const std::vector<Intent> intents = Declare(1);
  ASSERT_EQ(intents.size(), 1u);
  EXPECT_EQ(intents[0].quorum.size(), 2u);  // fd+1 in one zone
  EXPECT_EQ(intents[0].leader, 0u);
}

TEST_F(MultiIntentTest, AlternatesDifferAndShareTheLeader) {
  const std::vector<Intent> intents = Declare(3);
  ASSERT_GE(intents.size(), 2u);
  for (size_t i = 0; i < intents.size(); ++i) {
    // Every alternate contains the leader and has full quorum size.
    EXPECT_NE(std::find(intents[i].quorum.begin(), intents[i].quorum.end(),
                        NodeId{0}),
              intents[i].quorum.end());
    EXPECT_EQ(intents[i].quorum.size(), 2u);
    for (size_t j = i + 1; j < intents.size(); ++j) {
      EXPECT_NE(intents[i].quorum, intents[j].quorum) << i << "," << j;
    }
    // All intents share the election's ballot.
    EXPECT_EQ(intents[i].ballot, intents[0].ballot);
  }
}

TEST_F(MultiIntentTest, AlternatesCapByZonePopulation) {
  // With 3 nodes per zone and fd=1, only 2 distinct companions exist:
  // asking for 5 intents yields at most 2.
  const std::vector<Intent> intents = Declare(5);
  EXPECT_LE(intents.size(), 2u);
}

TEST_F(MultiIntentTest, Fd2QuorumsSpanThreeNodes) {
  const std::vector<Intent> intents = Declare(2, /*fd=*/2,
                                              /*nodes_per_zone=*/5);
  ASSERT_GE(intents.size(), 1u);
  EXPECT_EQ(intents[0].quorum.size(), 3u);  // fd+1
}

TEST(IntentTest, WireSizeAndEquality) {
  const Intent a{Ballot{3, 1}, 1, {1, 2}};
  const Intent b{Ballot{3, 1}, 1, {1, 2}};
  const Intent c{Ballot{4, 1}, 1, {1, 2}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.WireSize(), 16u + 4u + 8u);
  EXPECT_EQ(a.QuorumSet(), (std::set<NodeId>{1, 2}));
}

TEST(BallotTest, OrderingAndNull) {
  EXPECT_TRUE(Ballot{}.is_null());
  EXPECT_LT((Ballot{}), (Ballot{1, 0}));
  EXPECT_LT((Ballot{1, 5}), (Ballot{2, 0}));   // round dominates
  EXPECT_LT((Ballot{2, 3}), (Ballot{2, 7}));   // node breaks ties
  EXPECT_EQ((Ballot{2, 3}).ToString(), "(2,3)");
}

}  // namespace
}  // namespace dpaxos
