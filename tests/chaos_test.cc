// End-to-end chaos tests: nemesis fault schedules against retrying
// clients, judged by the linearizability and session-guarantee checkers.
// Every (mode, schedule, seed) cell is fully deterministic; a failure
// reproduces with `dpaxos_cli --experiment=chaos --mode=... --schedule=...
// --seed=...`.
#include <gtest/gtest.h>

#include <string>

#include "harness/chaos.h"
#include "harness/nemesis.h"

namespace dpaxos {
namespace {

struct ChaosCase {
  ProtocolMode mode;
  std::string schedule;
  uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<ChaosCase>& info) {
  std::string mode;
  switch (info.param.mode) {
    case ProtocolMode::kMultiPaxos:
      mode = "MultiPaxos";
      break;
    case ProtocolMode::kFlexiblePaxos:
      mode = "FPaxos";
      break;
    case ProtocolMode::kLeaderZone:
      mode = "LeaderZone";
      break;
    default:
      mode = "Other";
      break;
  }
  return mode + "_" + info.param.schedule + "_seed" +
         std::to_string(info.param.seed);
}

class ChaosMatrixTest : public testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosMatrixTest, NoConsistencyViolations) {
  const ChaosCase& c = GetParam();
  ChaosOptions options;
  options.mode = c.mode;
  options.schedule = c.schedule;
  options.seed = c.seed;
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.consistency.ok()) << report.Summary();
  EXPECT_TRUE(report.converged) << report.Summary();
  // The run must have actually exercised something.
  EXPECT_GT(report.nemesis_actions, 5u) << report.Summary();
  EXPECT_GT(report.ops_committed, 50u) << report.Summary();
  // Exactly-once even under fault schedules: every distinct write is in
  // the converged state at most once.
  EXPECT_EQ(report.applied_writes, report.writes_eventually_applied)
      << report.Summary();
}

// Every named schedule includes crashes, a zone partition and a forced
// Leader-Zone migration (see Nemesis::AddNamedSchedule); the matrix
// covers all three protocol modes under each emphasis.
INSTANTIATE_TEST_SUITE_P(
    Schedules, ChaosMatrixTest,
    testing::Values(
        ChaosCase{ProtocolMode::kMultiPaxos, "mixed", 1},
        ChaosCase{ProtocolMode::kMultiPaxos, "storm", 2},
        ChaosCase{ProtocolMode::kMultiPaxos, "partitions", 3},
        ChaosCase{ProtocolMode::kFlexiblePaxos, "mixed", 4},
        ChaosCase{ProtocolMode::kFlexiblePaxos, "storm", 5},
        ChaosCase{ProtocolMode::kFlexiblePaxos, "lossy", 6},
        ChaosCase{ProtocolMode::kLeaderZone, "mixed", 7},
        ChaosCase{ProtocolMode::kLeaderZone, "storm", 8},
        ChaosCase{ProtocolMode::kLeaderZone, "partitions", 9},
        ChaosCase{ProtocolMode::kLeaderZone, "lossy", 10},
        ChaosCase{ProtocolMode::kLeaderZone, "moves", 11},
        ChaosCase{ProtocolMode::kMultiPaxos, "moves", 12}),
    CaseName);

// Snapshot-based recovery under fire: compaction bounds the logs while
// the "recovery" schedule crashes nodes, forces compaction sweeps,
// corrupts in-flight snapshots, and crashes nodes mid-install. Laggards
// must recover through checksummed snapshot transfer + residual replay
// and still converge to one identical state in every protocol mode.
class ChaosRecoveryTest : public testing::TestWithParam<ProtocolMode> {};

TEST_P(ChaosRecoveryTest, SnapshotRecoveryConverges) {
  ChaosOptions options;
  options.mode = GetParam();
  options.schedule = "recovery";
  options.seed = 13;
  options.enable_compaction = true;
  options.compaction_retained_suffix = 32;
  options.compaction_interval = 1 * kSecond;
  options.snapshot_chunk_bytes = 256;  // force multi-chunk reassembly
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.consistency.ok()) << report.Summary();
  EXPECT_TRUE(report.converged) << report.Summary();
  EXPECT_GT(report.nemesis_actions, 5u) << report.Summary();
  EXPECT_GT(report.ops_committed, 50u) << report.Summary();
  // Compaction ran and laggards actually recovered via snapshots.
  EXPECT_GT(report.log_compactions, 0u) << report.Summary();
  EXPECT_GT(report.snapshots_installed, 0u) << report.Summary();
  // Exactly-once survives snapshot install + residual replay.
  EXPECT_EQ(report.applied_writes, report.writes_eventually_applied)
      << report.Summary();
}

// The snapshot-fault cell: at seed 13 under MultiPaxos the nemesis
// corrupts a snapshot that a laggard is actively pulling. The CRC must
// catch it (surfaced as Status::Corruption, counted in
// snapshot_corruptions_detected), the laggard must fail over to a
// healthy peer, and the run must still end converged — the corrupted
// payload is never applied silently.
TEST(ChaosRecoveryFaultTest, CorruptedSnapshotDetectedAndRecovered) {
  ChaosOptions options;
  options.mode = ProtocolMode::kMultiPaxos;
  options.schedule = "recovery";
  options.seed = 13;
  options.enable_compaction = true;
  options.compaction_retained_suffix = 32;
  options.compaction_interval = 1 * kSecond;
  options.snapshot_chunk_bytes = 256;
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.snapshot_corruptions_detected, 1u) << report.Summary();
  EXPECT_GE(report.catchup_failovers, 1u) << report.Summary();
  EXPECT_GT(report.snapshots_installed, 0u) << report.Summary();
  EXPECT_EQ(report.applied_writes, report.writes_eventually_applied)
      << report.Summary();
}

// The "disk" schedule (durability emphasis): explicit sync barriers,
// lossy restarts, and whole-cluster power losses — every node crashed
// at once, every node restarted lossy, so nothing survives anywhere
// except each node's synced storage image. Acked writes must still be
// exactly-once in the converged state: an acceptor syncs before it
// replies, so the acked prefix is inside the synced image by
// construction (the sim twin of the realnet acceptor WAL; see
// docs/PROTOCOL.md "Durability").
class ChaosDiskTest : public testing::TestWithParam<ProtocolMode> {};

TEST_P(ChaosDiskTest, WholeClusterPowerLossKeepsAckedWrites) {
  ChaosOptions options;
  options.mode = GetParam();
  options.schedule = "disk";
  options.seed = 21;
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.consistency.ok()) << report.Summary();
  EXPECT_TRUE(report.converged) << report.Summary();
  EXPECT_GT(report.nemesis_actions, 5u) << report.Summary();
  EXPECT_GT(report.ops_committed, 50u) << report.Summary();
  EXPECT_EQ(report.applied_writes, report.writes_eventually_applied)
      << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(AllModes, ChaosDiskTest,
                         testing::Values(ProtocolMode::kMultiPaxos,
                                         ProtocolMode::kFlexiblePaxos,
                                         ProtocolMode::kLeaderZone),
                         [](const testing::TestParamInfo<ProtocolMode>& i) {
                           switch (i.param) {
                             case ProtocolMode::kMultiPaxos:
                               return std::string("MultiPaxos");
                             case ProtocolMode::kFlexiblePaxos:
                               return std::string("FPaxos");
                             default:
                               return std::string("LeaderZone");
                           }
                         });

INSTANTIATE_TEST_SUITE_P(AllModes, ChaosRecoveryTest,
                         testing::Values(ProtocolMode::kMultiPaxos,
                                         ProtocolMode::kFlexiblePaxos,
                                         ProtocolMode::kLeaderZone),
                         [](const testing::TestParamInfo<ProtocolMode>& i) {
                           switch (i.param) {
                             case ProtocolMode::kMultiPaxos:
                               return std::string("MultiPaxos");
                             case ProtocolMode::kFlexiblePaxos:
                               return std::string("FPaxos");
                             default:
                               return std::string("LeaderZone");
                           }
                         });

// Fast-path commits under fire (docs/PROTOCOL.md §fast-path): zone-local
// clients enter at follower origins whose writes ride the fast quorum,
// while the schedule crashes nodes, cuts zones and drops frames. The
// cells must show BOTH halves of the state machine — fast commits when
// uncontended AND classic fallbacks when contended/faulted — and still
// pass the same Wing–Gong + session-guarantee checkers with exactly-once
// semantics.
class ChaosFastPathTest : public testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosFastPathTest, FastAndFallbackCommitsStayLinearizable) {
  const ChaosCase& c = GetParam();
  ChaosOptions options;
  options.mode = c.mode;
  options.schedule = c.schedule;
  options.seed = c.seed;
  options.enable_fast_path = true;
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.consistency.ok()) << report.Summary();
  EXPECT_TRUE(report.converged) << report.Summary();
  EXPECT_GT(report.ops_committed, 50u) << report.Summary();
  // The fast path actually ran...
  EXPECT_GT(report.fast_commits, 0u) << report.Summary();
  // ...and contention/faults genuinely forced classic fallbacks.
  EXPECT_GT(report.fast_fallbacks, 0u) << report.Summary();
  EXPECT_EQ(report.applied_writes, report.writes_eventually_applied)
      << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ChaosFastPathTest,
    testing::Values(
        ChaosCase{ProtocolMode::kMultiPaxos, "mixed", 31},
        ChaosCase{ProtocolMode::kMultiPaxos, "lossy", 32},
        ChaosCase{ProtocolMode::kFlexiblePaxos, "storm", 33},
        ChaosCase{ProtocolMode::kLeaderZone, "mixed", 34},
        ChaosCase{ProtocolMode::kLeaderZone, "partitions", 35}),
    CaseName);

// A schedule name unknown to the nemesis is reported, not silently run
// fault-free.
TEST(ChaosTest, UnknownScheduleIsReported) {
  ChaosOptions options;
  options.schedule = "does-not-exist";
  const ChaosReport report = RunChaos(options);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.consistency.violations.size(), 1u);
  EXPECT_NE(report.consistency.violations[0].find("unknown"),
            std::string::npos);
}

// Identical (mode, schedule, seed) runs replay identically.
TEST(ChaosTest, DeterministicReplay) {
  ChaosOptions options;
  options.mode = ProtocolMode::kLeaderZone;
  options.schedule = "mixed";
  options.seed = 99;
  options.duration = 10 * kSecond;
  const ChaosReport a = RunChaos(options);
  const ChaosReport b = RunChaos(options);
  EXPECT_EQ(a.ops_invoked, b.ops_invoked);
  EXPECT_EQ(a.ops_committed, b.ops_committed);
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_EQ(a.nemesis_log, b.nemesis_log);
  EXPECT_EQ(a.Summary(), b.Summary());
}

// Exactly-once under a lossy, duplicating transport: no nemesis, but 5%
// of messages dropped and 5% duplicated end to end. Retries must push
// eventual commit above 99% while the (client_id, seq) dedup window
// prevents any retry from applying twice.
class ChaosLossyTransportTest
    : public testing::TestWithParam<ProtocolMode> {};

TEST_P(ChaosLossyTransportTest, RetriesCommitExactlyOnce) {
  ChaosOptions options;
  options.mode = GetParam();
  options.schedule = "none";
  options.seed = 21;
  options.drop_probability = 0.05;
  options.duplicate_probability = 0.05;
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.consistency.ok()) << report.Summary();
  EXPECT_TRUE(report.converged) << report.Summary();
  EXPECT_GT(report.writes_invoked, 50u) << report.Summary();
  EXPECT_GE(report.EventualCommitRate(), 0.99) << report.Summary();
  // Exactly-once: the Put count actually executed on the converged state
  // equals the number of distinct writes in it. A retry applied twice
  // would push applied_writes higher.
  EXPECT_EQ(report.applied_writes, report.writes_eventually_applied)
      << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(AllModes, ChaosLossyTransportTest,
                         testing::Values(ProtocolMode::kMultiPaxos,
                                         ProtocolMode::kFlexiblePaxos,
                                         ProtocolMode::kLeaderZone),
                         [](const testing::TestParamInfo<ProtocolMode>& i) {
                           switch (i.param) {
                             case ProtocolMode::kMultiPaxos:
                               return std::string("MultiPaxos");
                             case ProtocolMode::kFlexiblePaxos:
                               return std::string("FPaxos");
                             default:
                               return std::string("LeaderZone");
                           }
                         });

}  // namespace
}  // namespace dpaxos
