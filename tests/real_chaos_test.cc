// Real-network chaos tests (realnet tier): the FailoverTcpClient
// against a paused replica, and one full RunRealChaos pass — proxied
// 4-process cluster, mixed nemesis schedule, history through the
// linearizability + session checkers.
//
// Wall-clock pacing, SIGSTOP/SIGKILL, fork/exec: realnet configuration,
// never tier-1. The CLI path is stamped in by CMake as DPAXOS_CLI_PATH.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/real_chaos.h"
#include "harness/real_cluster.h"
#include "net/tcp/tcp_client.h"

namespace dpaxos {
namespace {

#ifndef DPAXOS_CLI_PATH
#define DPAXOS_CLI_PATH ""
#endif

std::string TestLogDir() {
  const char* dir = std::getenv("DPAXOS_TEST_LOG_DIR");
  return dir != nullptr ? dir : "";
}

// A SIGSTOP'd replica is the nastiest failure for a blocking client:
// the TCP connection stays open but nothing answers. The failover
// client must burn only its per-attempt budget there, rotate to a live
// replica, and complete the op exactly once.
TEST(RealChaosTest, FailoverClientSurvivesPausedReplica) {
  RealClusterOptions options;
  options.server_binary = DPAXOS_CLI_PATH;
  options.mode = ProtocolMode::kLeaderZone;
  options.seed = 42;
  options.log_dir = TestLogDir();
  RealCluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());

  // Endpoint order puts node 1 first so the client starts there; node 0
  // stays last (leader hint — pausing it would stall consensus, which
  // is a different test).
  std::vector<HostPort> endpoints;
  for (NodeId n = 1; n < cluster.num_nodes(); ++n) {
    endpoints.push_back(cluster.endpoint(n));
  }
  endpoints.push_back(cluster.endpoint(0));

  FailoverTcpClient::Options copt;
  copt.attempt_timeout = 500 * kMillisecond;
  copt.connect_timeout = 500 * kMillisecond;
  copt.overall_timeout = 10 * kSecond;
  FailoverTcpClient client(0xFA170, endpoints, copt);

  FailoverTcpClient::CallResult warm =
      client.Call(ClientOp::kPut, "warm", "up");
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  ASSERT_EQ(client.current_endpoint(), 0u);  // still pinned to node 1

  ASSERT_TRUE(cluster.Pause(1).ok());
  FailoverTcpClient::CallResult stuck =
      client.Call(ClientOp::kPut, "k", "v-through-pause");
  EXPECT_TRUE(stuck.status.ok()) << stuck.status.ToString();
  EXPECT_GT(stuck.failovers, 0u) << "call should have rotated off node 1";

  // Reads fail over too, and see the write (same request path).
  FailoverTcpClient::CallResult read = client.Call(ClientOp::kGet, "k", "");
  ASSERT_TRUE(read.status.ok()) << read.status.ToString();
  EXPECT_EQ(read.reply.value, "v-through-pause");

  ASSERT_TRUE(cluster.Resume(1).ok());
  EXPECT_TRUE(cluster.ShutdownAll().ok());
}

// One end-to-end pass of the realchaos experiment at test scale: the
// mixed schedule fires a partition, a pause, a kill/restart and a
// corruption burst; the checkers must come back clean and every node
// must converge to one state.
TEST(RealChaosTest, MixedScheduleRunsCleanAndConverges) {
  RealChaosOptions options;
  options.server_binary = DPAXOS_CLI_PATH;
  options.mode = ProtocolMode::kLeaderZone;
  options.schedule = "mixed";
  options.seed = 5;
  options.duration = 6 * kSecond;
  options.num_clients = 3;
  options.log_dir = TestLogDir();

  RealChaosReport report = RunRealChaos(options);
  SCOPED_TRACE(report.Summary());

  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_TRUE(report.consistency.ok());
  EXPECT_TRUE(report.converged);
  EXPECT_TRUE(report.ok());

  EXPECT_GT(report.ops_invoked, 0u);
  EXPECT_GT(report.ops_committed, 0u);
  // The schedule guarantees each fault class at least once.
  EXPECT_GE(report.nemesis_partitions, 1u);
  EXPECT_GE(report.nemesis_pauses, 1u);
  EXPECT_GE(report.nemesis_kills, 1u);
  EXPECT_GE(report.nemesis_restarts, 1u);
  EXPECT_GE(report.nemesis_corrupt_bursts, 1u);
  // And the proxy actually injected faults into live traffic.
  EXPECT_GT(report.proxy.total_faults(), 0u);
}

// The fast-path cell: clients staggered across zone-local entry points
// drive writes through the fast quorum while the mixed schedule kills,
// pauses and corrupts. Both halves of the state machine must show up —
// one-round fast commits when a quorum answers, classic fallbacks when
// contention or injected faults starve the unanimous vote — and the
// history must still be linearizable with every node converged.
TEST(RealChaosTest, FastPathCommitsAndFallbacksStayLinearizable) {
  RealChaosOptions options;
  options.server_binary = DPAXOS_CLI_PATH;
  options.mode = ProtocolMode::kLeaderZone;
  options.schedule = "mixed";
  options.seed = 11;
  options.duration = 6 * kSecond;
  options.num_clients = 3;
  options.fast_path = true;
  options.log_dir = TestLogDir();

  RealChaosReport report = RunRealChaos(options);
  SCOPED_TRACE(report.Summary());

  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_TRUE(report.consistency.ok());
  EXPECT_TRUE(report.converged);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.ops_committed, 0u);
  // The fast path actually carried traffic, and faults/contention
  // genuinely forced classic fallbacks.
  EXPECT_GT(report.fast_commits, 0u);
  EXPECT_GT(report.fast_fallbacks, 0u);
  EXPECT_GT(report.proxy.total_faults(), 0u);
}

// The mobility cell: --ownership servers under the "mobility" schedule,
// the one schedule that deliberately SIGKILLs node 0 (the leader hint /
// presumed incumbent owner). The checked clients start parked in zone 0
// and migrate to zone 1 AFTER the kill, so the protocol steal their
// traffic provokes finds its incumbent already dead: the thief's
// StealRequest times out into an ordinary takeover election that still
// commits the ownership-transfer record, and the restarted incumbent
// rejoins as a follower learning the new owner from its own log. The
// same linearizability + session checkers judge the history across the
// transfer.
TEST(RealChaosTest, MobilityScheduleStealsFromDeadIncumbent) {
  RealChaosOptions options;
  options.server_binary = DPAXOS_CLI_PATH;
  options.mode = ProtocolMode::kLeaderZone;
  options.schedule = "mobility";
  options.seed = 42;
  options.duration = 10 * kSecond;
  options.num_clients = 4;
  options.log_dir = TestLogDir();

  RealChaosReport report = RunRealChaos(options);
  SCOPED_TRACE(report.Summary());

  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_TRUE(report.consistency.ok());
  EXPECT_TRUE(report.converged);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.ops_committed, 0u);
  // The incumbent really was killed and restarted...
  EXPECT_GE(report.nemesis_kills, 1u);
  EXPECT_GE(report.nemesis_restarts, 1u);
  // ...and ownership moved through the protocol, not around it: a steal
  // was attempted, its takeover election won, and the transfer record
  // was decided into the partition's log.
  EXPECT_GE(report.steals_attempted, 1u);
  EXPECT_GE(report.steals_won, 1u);
  EXPECT_GE(report.ownership_records, 1u);
}

// The durability cell: a durable (WAL-backed) cluster under the "disk"
// schedule — lying fsyncs, a torn write and a fsync EIO that panic the
// victim (recovered from its own WAL on restart), capped by a
// whole-cluster power loss where every node is SIGKILLed at once and
// the restart has nothing but the per-node WAL directories. The same
// linearizability checkers judge the history: no acknowledged write may
// be lost.
TEST(RealChaosTest, DiskScheduleSurvivesWholeClusterPowerLoss) {
  const std::string data_base =
      ::testing::TempDir() + "dpaxos_chaos_disk";
  const std::string wipe =
      "rm -rf '" + data_base + "' && mkdir -p '" + data_base + "'";
  ASSERT_EQ(std::system(wipe.c_str()), 0);

  RealChaosOptions options;
  options.server_binary = DPAXOS_CLI_PATH;
  options.mode = ProtocolMode::kLeaderZone;
  options.schedule = "disk";
  options.seed = 17;
  options.duration = 8 * kSecond;
  options.num_clients = 3;
  options.durable = true;
  options.data_dir_base = data_base;
  options.log_dir = TestLogDir();

  RealChaosReport report = RunRealChaos(options);
  SCOPED_TRACE(report.Summary());

  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_TRUE(report.consistency.ok());
  EXPECT_TRUE(report.converged);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.ops_committed, 0u);
  // The schedule armed its disk faults and fired the power loss...
  EXPECT_GE(report.nemesis_disk_faults, 3u);
  EXPECT_GE(report.nemesis_power_losses, 1u);
  EXPECT_GE(report.nemesis_kills, static_cast<uint64_t>(4));
  // ...and the WAL was live: real fdatasyncs backed the acks.
  EXPECT_GT(report.wal_fsyncs, 0u);
}

}  // namespace
}  // namespace dpaxos
