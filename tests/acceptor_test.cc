// Unit tests for the acceptor state machine: promises, acceptance,
// intent storage/return, garbage collection and read-lease blocking.
#include <gtest/gtest.h>

#include "paxos/acceptor.h"

namespace dpaxos {
namespace {

PrepareMsg MakePrepare(Ballot b, SlotId first_slot = 0,
                       std::vector<Intent> intents = {},
                       bool expansion = false) {
  return PrepareMsg(0, b, first_slot, std::move(intents), expansion,
                    LeaderZoneView{});
}

ProposeMsg MakePropose(Ballot b, SlotId slot, uint64_t value_id = 1) {
  return ProposeMsg(0, b, slot, Value::Synthetic(value_id, 100));
}

TEST(AcceptorTest, PromisesFreshBallot) {
  Acceptor a;
  auto out = a.OnPrepare(MakePrepare(Ballot{1, 0}), 0);
  EXPECT_TRUE(out.promised);
  EXPECT_TRUE(out.accepted.empty());
  EXPECT_TRUE(out.intents.empty());
  EXPECT_EQ(a.promised(), (Ballot{1, 0}));
}

TEST(AcceptorTest, RejectsLowerBallot) {
  Acceptor a;
  a.OnPrepare(MakePrepare(Ballot{5, 0}), 0);
  auto out = a.OnPrepare(MakePrepare(Ballot{3, 1}), 0);
  EXPECT_FALSE(out.promised);
  EXPECT_EQ(out.promised_ballot, (Ballot{5, 0}));
}

TEST(AcceptorTest, RepromisesEqualBallot) {
  // Expansion rounds and retransmissions resend the same ballot.
  Acceptor a;
  EXPECT_TRUE(a.OnPrepare(MakePrepare(Ballot{2, 1}), 0).promised);
  EXPECT_TRUE(a.OnPrepare(MakePrepare(Ballot{2, 1}), 0).promised);
}

TEST(AcceptorTest, NodeIdBreaksBallotTies) {
  Acceptor a;
  a.OnPrepare(MakePrepare(Ballot{2, 5}), 0);
  EXPECT_FALSE(a.OnPrepare(MakePrepare(Ballot{2, 3}), 0).promised);
  EXPECT_TRUE(a.OnPrepare(MakePrepare(Ballot{2, 7}), 0).promised);
}

TEST(AcceptorTest, AcceptsAtOrAbovePromise) {
  Acceptor a;
  a.OnPrepare(MakePrepare(Ballot{3, 0}), 0);
  EXPECT_TRUE(a.OnPropose(MakePropose(Ballot{3, 0}, 7), 0).accepted);
  EXPECT_TRUE(a.OnPropose(MakePropose(Ballot{4, 1}, 8), 0).accepted);
  // Accepting ballot (4,1) implicitly promises it.
  EXPECT_FALSE(a.OnPropose(MakePropose(Ballot{3, 0}, 9), 0).accepted);
}

TEST(AcceptorTest, RejectedProposeReportsPromise) {
  Acceptor a;
  a.OnPrepare(MakePrepare(Ballot{9, 2}), 0);
  auto out = a.OnPropose(MakePropose(Ballot{4, 1}, 0), 0);
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.promised_ballot, (Ballot{9, 2}));
}

TEST(AcceptorTest, PromiseReturnsAcceptedEntriesFromFirstSlot) {
  Acceptor a;
  a.OnPrepare(MakePrepare(Ballot{1, 0}), 0);
  a.OnPropose(MakePropose(Ballot{1, 0}, 0, 10), 0);
  a.OnPropose(MakePropose(Ballot{1, 0}, 1, 11), 0);
  a.OnPropose(MakePropose(Ballot{1, 0}, 5, 15), 0);

  auto out = a.OnPrepare(MakePrepare(Ballot{2, 1}, /*first_slot=*/1), 0);
  ASSERT_TRUE(out.promised);
  ASSERT_EQ(out.accepted.size(), 2u);  // slots 1 and 5, not 0
  EXPECT_EQ(out.accepted[0].slot, 1u);
  EXPECT_EQ(out.accepted[0].value.id, 11u);
  EXPECT_EQ(out.accepted[1].slot, 5u);
}

TEST(AcceptorTest, HighestBallotValueWinsPerSlot) {
  Acceptor a;
  a.OnPropose(MakePropose(Ballot{1, 0}, 3, 100), 0);
  a.OnPropose(MakePropose(Ballot{2, 1}, 3, 200), 0);
  const AcceptedEntry* e = a.AcceptedFor(3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value.id, 200u);
  EXPECT_EQ(e->ballot, (Ballot{2, 1}));
}

// --- intents (paper Section 4.3) --------------------------------------

TEST(AcceptorTest, StoresIntentsOnPositivePromiseOnly) {
  Acceptor a;
  const Intent i1{Ballot{5, 1}, 1, {1, 2}};
  a.OnPrepare(MakePrepare(Ballot{5, 1}, 0, {i1}), 0);
  ASSERT_EQ(a.intents().size(), 1u);

  // A rejected prepare's intent must NOT be stored (paper: "Not included
  // ... intents of unsuccessful prepare() messages").
  const Intent i2{Ballot{3, 0}, 0, {0, 1}};
  a.OnPrepare(MakePrepare(Ballot{3, 0}, 0, {i2}), 0);
  EXPECT_EQ(a.intents().size(), 1u);
}

TEST(AcceptorTest, PromiseReturnsPriorIntentsNotOwn) {
  Acceptor a;
  const Intent i1{Ballot{1, 1}, 1, {1, 2}};
  a.OnPrepare(MakePrepare(Ballot{1, 1}, 0, {i1}), 0);

  const Intent i2{Ballot{2, 2}, 2, {2, 3}};
  auto out = a.OnPrepare(MakePrepare(Ballot{2, 2}, 0, {i2}), 0);
  // The second aspirant gets back i1, but not its own i2.
  ASSERT_EQ(out.intents.size(), 1u);
  EXPECT_EQ(out.intents[0], i1);
  EXPECT_EQ(a.intents().size(), 2u);
}

TEST(AcceptorTest, DuplicateIntentsAreDeduplicated) {
  Acceptor a;
  const Intent i1{Ballot{1, 1}, 1, {1, 2}};
  a.OnPrepare(MakePrepare(Ballot{1, 1}, 0, {i1}), 0);
  a.OnPrepare(MakePrepare(Ballot{1, 1}, 0, {i1}), 0);  // retransmit
  EXPECT_EQ(a.intents().size(), 1u);
}

TEST(AcceptorTest, PausedIntentStorageDropsNewIntents) {
  Acceptor a;
  a.PauseIntentStorage();
  const Intent i1{Ballot{1, 1}, 1, {1, 2}};
  auto out = a.OnPrepare(MakePrepare(Ballot{1, 1}, 0, {i1}), 0);
  EXPECT_TRUE(out.promised);  // still votes
  EXPECT_TRUE(a.intents().empty());
  // Direct transfer (Leader Zone migration step 2) still works.
  a.AddIntents({i1});
  EXPECT_EQ(a.intents().size(), 1u);
}

TEST(AcceptorTest, GcDropsOnlyBelowThreshold) {
  Acceptor a;
  const Intent i1{Ballot{1, 1}, 1, {1, 2}};
  const Intent i2{Ballot{5, 2}, 2, {2, 3}};
  a.OnPrepare(MakePrepare(Ballot{1, 1}, 0, {i1}), 0);
  a.OnPrepare(MakePrepare(Ballot{5, 2}, 0, {i2}), 0);
  a.ApplyGcThreshold(Ballot{5, 2}, 0);
  ASSERT_EQ(a.intents().size(), 1u);
  EXPECT_EQ(a.intents()[0], i2);
}

TEST(AcceptorTest, MaxProposeBallotTracksReceivedProposes) {
  Acceptor a;
  EXPECT_TRUE(a.max_propose_ballot().is_null());
  a.OnPrepare(MakePrepare(Ballot{9, 0}), 0);
  // Prepares do NOT move it (Algorithm 3 polls propose messages only).
  EXPECT_TRUE(a.max_propose_ballot().is_null());
  a.OnPropose(MakePropose(Ballot{3, 1}, 0), 0);
  // Even a REJECTED propose counts: its sender completed an election.
  EXPECT_EQ(a.max_propose_ballot(), (Ballot{3, 1}));
  a.OnPropose(MakePropose(Ballot{12, 1}, 1), 0);
  EXPECT_EQ(a.max_propose_ballot(), (Ballot{12, 1}));
}

// --- read leases (paper Section 4.5) -----------------------------------

TEST(AcceptorTest, LeaseVoteGrantedWithAccept) {
  Acceptor a;
  ProposeMsg p = MakePropose(Ballot{1, 0}, 0);
  p.lease_request = true;
  p.lease_until = 10'000;
  auto out = a.OnPropose(p, 100);
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.lease_vote);
  EXPECT_EQ(out.lease_until, 10'000u);
  EXPECT_TRUE(a.HasActiveLease(5'000));
  EXPECT_FALSE(a.HasActiveLease(20'000));
}

TEST(AcceptorTest, LeaseBlocksForeignPreparesUntilExpiry) {
  Acceptor a;
  ProposeMsg p = MakePropose(Ballot{1, 0}, 0);
  p.lease_request = true;
  p.lease_until = 10'000;
  a.OnPropose(p, 0);

  // Another node cannot get a promise while the lease is active...
  auto out = a.OnPrepare(MakePrepare(Ballot{2, 1}), 5'000);
  EXPECT_FALSE(out.promised);
  EXPECT_EQ(out.lease_until, 10'000u);
  // ...the lease holder itself still can (e.g. to raise its ballot)...
  EXPECT_TRUE(a.OnPrepare(MakePrepare(Ballot{2, 0}), 5'000).promised);
  // ...and anyone can after expiry.
  EXPECT_TRUE(a.OnPrepare(MakePrepare(Ballot{3, 1}), 10'001).promised);
}

TEST(AcceptorTest, GcSparesActiveLeaseholderIntent) {
  Acceptor a;
  const Intent lease_intent{Ballot{1, 0}, 0, {0, 1}};
  a.OnPrepare(MakePrepare(Ballot{1, 0}, 0, {lease_intent}), 0);
  ProposeMsg p = MakePropose(Ballot{1, 0}, 0);
  p.lease_request = true;
  p.lease_until = 10'000;
  a.OnPropose(p, 0);

  // Even a threshold above the lease holder's ballot must not collect its
  // intent while the lease is active (Section 4.5).
  a.ApplyGcThreshold(Ballot{100, 5}, 5'000);
  ASSERT_EQ(a.intents().size(), 1u);
  // After expiry it is collectable.
  a.ApplyGcThreshold(Ballot{100, 5}, 20'000);
  EXPECT_TRUE(a.intents().empty());
}

// --- leaderless mode -----------------------------------------------------

TEST(AcceptorTest, LeaderlessAcceptsPerSlot) {
  Acceptor a(/*leaderless=*/true);
  // Two proposers with incomparable global order both succeed on their
  // own slots (the paper's idealized optimal leaderless baseline).
  EXPECT_TRUE(a.OnPropose(MakePropose(Ballot{1, 5}, 0), 0).accepted);
  EXPECT_TRUE(a.OnPropose(MakePropose(Ballot{1, 2}, 1), 0).accepted);
  // Per-slot ordering still applies.
  EXPECT_FALSE(a.OnPropose(MakePropose(Ballot{1, 2}, 0), 0).accepted);
}

}  // namespace
}  // namespace dpaxos
