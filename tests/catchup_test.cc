// Tests for learner catch-up, log truncation and snapshot transfer.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "smr/kv_store.h"
#include "smr/log_applier.h"
#include "smr/snapshot.h"
#include "txn/transaction.h"

namespace dpaxos {
namespace {

Value PutValue(uint64_t id, const std::string& key, const std::string& val) {
  Transaction txn;
  txn.id = id;
  txn.ops = {Operation::Put(key, val)};
  return Value::Of(id, EncodeBatch({txn}));
}

Status AwaitCatchUp(Cluster& cluster, Replica* replica, NodeId peer) {
  std::optional<Status> result;
  replica->CatchUpFrom(peer, [&](const Status& st) { result = st; });
  while (!result.has_value() && cluster.sim().Step()) {
  }
  return result.value_or(Status::TimedOut("no progress"));
}

Status AwaitCatchUpFrom(Cluster& cluster, Replica* replica,
                        std::vector<NodeId> peers) {
  std::optional<Status> result;
  replica->CatchUpFrom(std::move(peers),
                       [&](const Status& st) { result = st; });
  while (!result.has_value() && cluster.sim().Step()) {
  }
  return result.value_or(Status::TimedOut("no progress"));
}

// Standard snapshot hook pair: the provider wraps the serialized KV
// state in a CRC-checksummed envelope; the installer verifies it before
// restoring and fast-forwards the applier past the covered prefix.
void WireSnapshotHooks(Replica* r, KvStateMachine* kv, LogApplier* applier) {
  r->set_snapshot_hooks(
      [kv, applier](SlotId* through) {
        *through = applier->applied_watermark();
        return EncodeSnapshot(*through, kv->SerializeFull());
      },
      [kv, applier](SlotId through, const std::string& envelope) {
        Result<Snapshot> snap = DecodeSnapshot(envelope);
        if (!snap.ok()) return snap.status();
        Status st = kv->RestoreFull(snap->payload);
        if (!st.ok()) return st;
        applier->FastForwardTo(through);
        return Status::OK();
      });
}

TEST(CatchUpTest, RecoveredReplicaPullsMissedSlots) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, PutValue(1, "a", "1")).ok());

  // A distant replica crashes and misses a batch of commits.
  const NodeId lagging = cluster.NodeInZone(5, 0);
  cluster.transport().Crash(lagging);
  for (uint64_t i = 2; i <= 10; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, PutValue(i, "k", "v")).ok());
  }
  cluster.transport().Recover(lagging);
  EXPECT_EQ(cluster.replica(lagging)->DecidedWatermark(), 0u);

  ASSERT_TRUE(AwaitCatchUp(cluster, cluster.replica(lagging), leader).ok());
  EXPECT_EQ(cluster.replica(lagging)->DecidedWatermark(), 10u);
  for (const auto& [slot, value] : cluster.replica(leader)->decided()) {
    auto it = cluster.replica(lagging)->decided().find(slot);
    ASSERT_NE(it, cluster.replica(lagging)->decided().end());
    EXPECT_EQ(it->second.id, value.id);
  }
}

TEST(CatchUpTest, PagesThroughLongLogs) {
  // More slots than one learn-reply page (256).
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 600; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(i, 64)).ok());
  }
  Replica* lagging = cluster.ReplicaInZone(6, 2);
  ASSERT_TRUE(AwaitCatchUp(cluster, lagging, leader).ok());
  EXPECT_EQ(lagging->DecidedWatermark(), 600u);
}

TEST(CatchUpTest, RejectsSelfAndConcurrent) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Replica* r = cluster.replica(3);
  Status st;
  r->CatchUpFrom(3, [&](const Status& s) { st = s; });
  EXPECT_TRUE(st.IsInvalidArgument());

  r->CatchUpFrom(0, [](const Status&) {});
  Status st2;
  r->CatchUpFrom(1, [&](const Status& s) { st2 = s; });
  EXPECT_TRUE(st2.IsAborted());
}

TEST(CatchUpTest, TruncationGuards) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, PutValue(i, "k", "v")).ok());
  }
  Replica* r = cluster.replica(leader);
  // Beyond the watermark: refused.
  EXPECT_TRUE(r->TruncateDecidedBelow(99).IsFailedPrecondition());
  // Without snapshot hooks: refused.
  EXPECT_TRUE(r->TruncateDecidedBelow(3).IsFailedPrecondition());

  KvStateMachine kv;
  r->set_snapshot_hooks(
      [&](SlotId* through) {
        *through = r->DecidedWatermark();
        return EncodeSnapshot(*through, kv.SerializeFull());
      },
      [&](SlotId, const std::string& envelope) {
        Result<Snapshot> snap = DecodeSnapshot(envelope);
        if (!snap.ok()) return snap.status();
        return kv.RestoreFull(snap->payload);
      });
  ASSERT_TRUE(r->TruncateDecidedBelow(3).ok());
  EXPECT_EQ(r->log_start(), 3u);
  EXPECT_EQ(r->decided().size(), 2u);
  EXPECT_EQ(r->DecidedWatermark(), 5u);  // watermark unaffected
}

TEST(CatchUpTest, SnapshotFallbackAfterTruncation) {
  // Full flow: leader applies+snapshots+truncates; a blank replica must
  // recover via snapshot + log tail and converge to identical KV state.
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  KvStateMachine leader_kv;
  LogApplier leader_applier(&leader_kv);
  cluster.replica(leader)->set_decide_callback(
      [&](SlotId s, const Value& v) { leader_applier.OnDecided(s, v); });
  WireSnapshotHooks(cluster.replica(leader), &leader_kv, &leader_applier);

  for (uint64_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE(cluster
                    .Commit(leader, PutValue(i, "key" + std::to_string(i),
                                             "value" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(cluster.replica(leader)->TruncateDecidedBelow(6).ok());
  for (uint64_t i = 9; i <= 12; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, PutValue(i, "tail", "t")).ok());
  }

  // The recovering replica wires a KV installer + applier.
  Replica* fresh = cluster.ReplicaInZone(6, 1);
  KvStateMachine fresh_kv;
  LogApplier fresh_applier(&fresh_kv);
  fresh->set_decide_callback(
      [&](SlotId s, const Value& v) { fresh_applier.OnDecided(s, v); });
  WireSnapshotHooks(fresh, &fresh_kv, &fresh_applier);

  ASSERT_TRUE(AwaitCatchUp(cluster, fresh, leader).ok());
  cluster.sim().RunFor(kSecond);
  EXPECT_EQ(fresh->DecidedWatermark(), 12u);
  EXPECT_EQ(fresh_kv.Checksum(), leader_kv.Checksum());
  EXPECT_GT(fresh->counters().snapshots_installed, 0u);
  EXPECT_EQ(fresh_kv.Get("key3"), "value3");  // came from the snapshot
  EXPECT_EQ(fresh_kv.Get("tail"), "t");       // came from the log tail
}

TEST(CatchUpTest, MultiChunkSnapshotTransfer) {
  // Force the snapshot to cross many chunks: tiny chunk size, fat values.
  ClusterOptions options;
  options.replica.snapshot_chunk_bytes = 64;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  KvStateMachine leader_kv;
  LogApplier leader_applier(&leader_kv);
  cluster.replica(leader)->set_decide_callback(
      [&](SlotId s, const Value& v) { leader_applier.OnDecided(s, v); });
  WireSnapshotHooks(cluster.replica(leader), &leader_kv, &leader_applier);
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(cluster
                    .Commit(leader, PutValue(i, "key" + std::to_string(i),
                                             std::string(100, 'x')))
                    .ok());
  }
  ASSERT_TRUE(cluster.replica(leader)->TruncateDecidedBelow(10).ok());

  Replica* fresh = cluster.ReplicaInZone(5, 1);
  KvStateMachine fresh_kv;
  LogApplier fresh_applier(&fresh_kv);
  fresh->set_decide_callback(
      [&](SlotId s, const Value& v) { fresh_applier.OnDecided(s, v); });
  WireSnapshotHooks(fresh, &fresh_kv, &fresh_applier);

  ASSERT_TRUE(AwaitCatchUp(cluster, fresh, leader).ok());
  EXPECT_EQ(fresh_kv.Checksum(), leader_kv.Checksum());
  EXPECT_GT(cluster.replica(leader)->counters().snapshot_chunks_sent, 10u);
}

TEST(CatchUpTest, CorruptSnapshotTriggersFailoverToHealthyPeer) {
  // The first peer serves a bit-flipped snapshot; the CRC check must
  // reject it (never applying it silently) and the catch-up must fail
  // over to the second peer and still converge.
  ClusterOptions options;
  options.replica.decide_policy = DecidePolicy::kAll;  // bad_peer learns too
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  const NodeId bad_peer = cluster.NodeInZone(1, 0);
  std::vector<Replica*> sources = {cluster.replica(bad_peer),
                                   cluster.replica(leader)};
  std::vector<KvStateMachine> kvs(2);
  std::vector<std::unique_ptr<LogApplier>> appliers;
  for (size_t i = 0; i < sources.size(); ++i) {
    appliers.push_back(std::make_unique<LogApplier>(&kvs[i]));
    LogApplier* a = appliers.back().get();
    sources[i]->set_decide_callback(
        [a](SlotId s, const Value& v) { a->OnDecided(s, v); });
    WireSnapshotHooks(sources[i], &kvs[i], a);
  }

  // The recovering node is down while the history is committed (and
  // later compacted away), so it must come back through a snapshot.
  const NodeId fresh_node = cluster.NodeInZone(6, 0);
  cluster.transport().Crash(fresh_node);
  for (uint64_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, PutValue(i, "k" + std::to_string(i),
                                                "v"))
                    .ok());
  }
  cluster.sim().RunFor(kSecond);  // let decides propagate to bad_peer
  ASSERT_TRUE(cluster.replica(bad_peer)->TruncateDecidedBelow(8).ok());
  ASSERT_TRUE(cluster.replica(leader)->TruncateDecidedBelow(8).ok());
  cluster.replica(bad_peer)->InjectSnapshotFault(
      Replica::SnapshotFault::kBitFlip);
  cluster.transport().Recover(fresh_node);

  Replica* fresh = cluster.replica(fresh_node);
  KvStateMachine fresh_kv;
  LogApplier fresh_applier(&fresh_kv);
  fresh->set_decide_callback(
      [&](SlotId s, const Value& v) { fresh_applier.OnDecided(s, v); });
  WireSnapshotHooks(fresh, &fresh_kv, &fresh_applier);

  ASSERT_TRUE(AwaitCatchUpFrom(cluster, fresh, {bad_peer, leader}).ok());
  EXPECT_GE(fresh->counters().snapshot_corruptions_detected, 1u);
  EXPECT_GE(fresh->counters().catchup_failovers, 1u);
  EXPECT_GT(fresh->counters().snapshots_installed, 0u);
  EXPECT_EQ(fresh_kv.Checksum(), kvs[1].Checksum());
  EXPECT_EQ(fresh_kv.Get("k3"), "v");
}

TEST(CatchUpTest, TimesOutAgainstDeadPeer) {
  ClusterOptions options;
  options.replica.propose_timeout = 200 * kMillisecond;
  options.replica.catchup_retry_limit = 2;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  cluster.transport().Crash(0);
  Status st = AwaitCatchUp(cluster, cluster.replica(5), 0);
  EXPECT_TRUE(st.IsTimedOut());
}

TEST(CatchUpTest, BackoffAndFailoverPastDeadPeers) {
  // Jittered exponential backoff enabled; first two peers are dead, the
  // third is healthy. The retry budget must drain per peer and the
  // catch-up must still land on the live one.
  ClusterOptions options;
  options.replica.propose_timeout = 100 * kMillisecond;
  options.replica.catchup_retry_limit = 2;
  options.replica.catchup_backoff_base = 20 * kMillisecond;
  options.replica.catchup_backoff_cap = 500 * kMillisecond;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, PutValue(i, "k", "v")).ok());
  }
  const NodeId dead1 = cluster.NodeInZone(1, 0);
  const NodeId dead2 = cluster.NodeInZone(2, 0);
  cluster.transport().Crash(dead1);
  cluster.transport().Crash(dead2);

  Replica* fresh = cluster.ReplicaInZone(6, 2);
  ASSERT_TRUE(
      AwaitCatchUpFrom(cluster, fresh, {dead1, dead2, leader}).ok());
  EXPECT_EQ(fresh->counters().catchup_failovers, 2u);
  EXPECT_EQ(fresh->DecidedWatermark(), 4u);

  // All peers dead: the overall catch-up surfaces the timeout.
  cluster.transport().Crash(leader);
  Replica* other = cluster.ReplicaInZone(6, 1);
  Status st = AwaitCatchUpFrom(cluster, other, {dead1, dead2, leader});
  EXPECT_TRUE(st.IsTimedOut());
}

// Corrupt-but-parseable messages (realnet bit flips survive the codec
// when they land in value bytes or integer fields): the replica must
// drop them, never abort or allocate proportionally to a forged slot.
TEST(CatchUpTest, ImplausibleDecideSlotIsRejectedNotAllocated) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, PutValue(1, "a", "1")).ok());

  Replica* follower = cluster.ReplicaInZone(3, 0);
  const SlotId before = follower->DecidedWatermark();
  // A bit flip high in the slot field: feeding this to the decided log
  // would resize it by ~2^50 cells.
  follower->HandleMessage(
      leader, std::make_shared<DecideMsg>(0, SlotId{1} << 50,
                                          PutValue(99, "k", "v")));
  EXPECT_EQ(follower->DecidedWatermark(), before);
  EXPECT_EQ(follower->counters().suspect_msgs_rejected, 1u);
  EXPECT_EQ(follower->decided().count(SlotId{1} << 50), 0u);
}

TEST(CatchUpTest, ConflictingDecideIsDroppedNotFatal) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, PutValue(1, "a", "1")).ok());

  // The leader learned its own decide; forge a conflicting one at it
  // from any peer.
  Replica* learner = cluster.replica(leader);
  ASSERT_FALSE(learner->decided().empty());
  const auto [slot, original] = *learner->decided().begin();

  // Same slot, different value — a flipped value byte on the wire.
  learner->HandleMessage(
      cluster.NodeInZone(1), std::make_shared<DecideMsg>(0, slot, PutValue(2, "a", "X")));
  EXPECT_EQ(learner->counters().suspect_msgs_rejected, 1u);
  EXPECT_TRUE(learner->decided().at(slot) == original);
}

TEST(CatchUpTest, KvSnapshotRoundTrip) {
  KvStateMachine a;
  Transaction txn;
  txn.id = 1;
  txn.ops = {Operation::Put("x", "1"), Operation::Put("y", "2")};
  a.Apply(0, EncodeBatch({txn}));

  KvStateMachine b;
  ASSERT_TRUE(b.Restore(a.Serialize()).ok());
  EXPECT_EQ(a.Checksum(), b.Checksum());
  EXPECT_EQ(b.Get("x"), "1");

  EXPECT_FALSE(b.Restore("garbage").ok());
  EXPECT_EQ(b.Get("x"), "1");  // unchanged on failure
}

}  // namespace
}  // namespace dpaxos
