// Tests for learner catch-up, log truncation and snapshot transfer.
#include <gtest/gtest.h>

#include <optional>

#include "harness/cluster.h"
#include "smr/kv_store.h"
#include "smr/log_applier.h"
#include "txn/transaction.h"

namespace dpaxos {
namespace {

Value PutValue(uint64_t id, const std::string& key, const std::string& val) {
  Transaction txn;
  txn.id = id;
  txn.ops = {Operation::Put(key, val)};
  return Value::Of(id, EncodeBatch({txn}));
}

Status AwaitCatchUp(Cluster& cluster, Replica* replica, NodeId peer) {
  std::optional<Status> result;
  replica->CatchUpFrom(peer, [&](const Status& st) { result = st; });
  while (!result.has_value() && cluster.sim().Step()) {
  }
  return result.value_or(Status::TimedOut("no progress"));
}

TEST(CatchUpTest, RecoveredReplicaPullsMissedSlots) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, PutValue(1, "a", "1")).ok());

  // A distant replica crashes and misses a batch of commits.
  const NodeId lagging = cluster.NodeInZone(5, 0);
  cluster.transport().Crash(lagging);
  for (uint64_t i = 2; i <= 10; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, PutValue(i, "k", "v")).ok());
  }
  cluster.transport().Recover(lagging);
  EXPECT_EQ(cluster.replica(lagging)->DecidedWatermark(), 0u);

  ASSERT_TRUE(AwaitCatchUp(cluster, cluster.replica(lagging), leader).ok());
  EXPECT_EQ(cluster.replica(lagging)->DecidedWatermark(), 10u);
  for (const auto& [slot, value] : cluster.replica(leader)->decided()) {
    auto it = cluster.replica(lagging)->decided().find(slot);
    ASSERT_NE(it, cluster.replica(lagging)->decided().end());
    EXPECT_EQ(it->second.id, value.id);
  }
}

TEST(CatchUpTest, PagesThroughLongLogs) {
  // More slots than one learn-reply page (256).
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 600; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, Value::Synthetic(i, 64)).ok());
  }
  Replica* lagging = cluster.ReplicaInZone(6, 2);
  ASSERT_TRUE(AwaitCatchUp(cluster, lagging, leader).ok());
  EXPECT_EQ(lagging->DecidedWatermark(), 600u);
}

TEST(CatchUpTest, RejectsSelfAndConcurrent) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Replica* r = cluster.replica(3);
  Status st;
  r->CatchUpFrom(3, [&](const Status& s) { st = s; });
  EXPECT_TRUE(st.IsInvalidArgument());

  r->CatchUpFrom(0, [](const Status&) {});
  Status st2;
  r->CatchUpFrom(1, [&](const Status& s) { st2 = s; });
  EXPECT_TRUE(st2.IsAborted());
}

TEST(CatchUpTest, TruncationGuards) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, PutValue(i, "k", "v")).ok());
  }
  Replica* r = cluster.replica(leader);
  // Beyond the watermark: refused.
  EXPECT_TRUE(r->TruncateDecidedBelow(99).IsFailedPrecondition());
  // Without snapshot hooks: refused.
  EXPECT_TRUE(r->TruncateDecidedBelow(3).IsFailedPrecondition());

  KvStateMachine kv;
  r->set_snapshot_hooks(
      [&](SlotId* through) {
        *through = r->DecidedWatermark();
        return kv.Serialize();
      },
      [&](SlotId, const std::string& snap) { (void)kv.Restore(snap); });
  ASSERT_TRUE(r->TruncateDecidedBelow(3).ok());
  EXPECT_EQ(r->log_start(), 3u);
  EXPECT_EQ(r->decided().size(), 2u);
  EXPECT_EQ(r->DecidedWatermark(), 5u);  // watermark unaffected
}

TEST(CatchUpTest, SnapshotFallbackAfterTruncation) {
  // Full flow: leader applies+snapshots+truncates; a blank replica must
  // recover via snapshot + log tail and converge to identical KV state.
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());

  KvStateMachine leader_kv;
  LogApplier leader_applier(&leader_kv);
  cluster.replica(leader)->set_decide_callback(
      [&](SlotId s, const Value& v) { leader_applier.OnDecided(s, v); });
  cluster.replica(leader)->set_snapshot_hooks(
      [&](SlotId* through) {
        *through = leader_applier.applied_watermark();
        return leader_kv.Serialize();
      },
      [](SlotId, const std::string&) {});

  for (uint64_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE(cluster
                    .Commit(leader, PutValue(i, "key" + std::to_string(i),
                                             "value" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(cluster.replica(leader)->TruncateDecidedBelow(6).ok());
  for (uint64_t i = 9; i <= 12; ++i) {
    ASSERT_TRUE(cluster.Commit(leader, PutValue(i, "tail", "t")).ok());
  }

  // The recovering replica wires a KV installer + applier.
  Replica* fresh = cluster.ReplicaInZone(6, 1);
  KvStateMachine fresh_kv;
  auto fresh_applier = std::make_unique<LogApplier>(&fresh_kv);
  fresh->set_decide_callback(
      [&](SlotId s, const Value& v) { fresh_applier->OnDecided(s, v); });
  fresh->set_snapshot_hooks(
      [](SlotId* through) {
        *through = 0;
        return std::string();
      },
      [&](SlotId through, const std::string& snap) {
        ASSERT_TRUE(fresh_kv.Restore(snap).ok());
        fresh_applier = std::make_unique<LogApplier>(&fresh_kv);
        // Applied state now covers everything below `through`; continue
        // applying from there.
        for (SlotId s = 0; s < through; ++s) {
          // LogApplier has no skip API; replay no-ops to advance it.
          fresh_applier->OnDecided(s, Value::NoOp());
        }
      });

  ASSERT_TRUE(AwaitCatchUp(cluster, fresh, leader).ok());
  cluster.sim().RunFor(kSecond);
  EXPECT_EQ(fresh->DecidedWatermark(), 12u);
  EXPECT_EQ(fresh_kv.Checksum(), leader_kv.Checksum());
  EXPECT_EQ(fresh_kv.Get("key3"), "value3");  // came from the snapshot
  EXPECT_EQ(fresh_kv.Get("tail"), "t");       // came from the log tail
}

TEST(CatchUpTest, TimesOutAgainstDeadPeer) {
  ClusterOptions options;
  options.replica.propose_timeout = 200 * kMillisecond;
  options.replica.max_propose_retries = 2;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  cluster.transport().Crash(0);
  Status st = AwaitCatchUp(cluster, cluster.replica(5), 0);
  EXPECT_TRUE(st.IsTimedOut());
}

TEST(CatchUpTest, KvSnapshotRoundTrip) {
  KvStateMachine a;
  Transaction txn;
  txn.id = 1;
  txn.ops = {Operation::Put("x", "1"), Operation::Put("y", "2")};
  a.Apply(0, EncodeBatch({txn}));

  KvStateMachine b;
  ASSERT_TRUE(b.Restore(a.Serialize()).ok());
  EXPECT_EQ(a.Checksum(), b.Checksum());
  EXPECT_EQ(b.Get("x"), "1");

  EXPECT_FALSE(b.Restore("garbage").ok());
  EXPECT_EQ(b.Get("x"), "1");  // unchanged on failure
}

}  // namespace
}  // namespace dpaxos
