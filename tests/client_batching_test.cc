// Tests for client-side automatic batching (SubmitBatched/FlushBatch).
#include <gtest/gtest.h>

#include "client/client.h"
#include "harness/cluster.h"
#include "workload/oltp.h"

namespace dpaxos {
namespace {

struct Fixture {
  Fixture() : cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone) {
    leader = cluster.NodeInZone(0);
    EXPECT_TRUE(cluster.ElectLeader(leader).ok());
  }
  Cluster cluster;
  NodeId leader;
};

TEST(ClientBatchingTest, SizeTriggeredFlush) {
  Fixture f;
  Client::Options options;
  options.batch_target_bytes = 400;
  options.batch_flush_interval = 10 * kSecond;  // never by time
  Client client(&f.cluster.sim(), f.cluster.replica(f.leader), options);

  OltpGenerator gen(OltpConfig{.num_keys = 100}, 1);
  int completed = 0;
  // Each 5-op txn encodes to ~350 bytes: the second one crosses 400.
  client.SubmitBatched(gen.Next(),
                       [&](const Status& st, Duration) {
                         EXPECT_TRUE(st.ok());
                         ++completed;
                       });
  EXPECT_EQ(client.batches_flushed(), 0u);  // still queued
  client.SubmitBatched(gen.Next(),
                       [&](const Status& st, Duration) {
                         EXPECT_TRUE(st.ok());
                         ++completed;
                       });
  EXPECT_EQ(client.batches_flushed(), 1u);  // size tripped
  ASSERT_TRUE(f.cluster.RunUntil([&] { return completed == 2; },
                                 10 * kSecond));
  // Both transactions rode one consensus value.
  EXPECT_EQ(f.cluster.replica(f.leader)->decided().size(), 1u);
}

TEST(ClientBatchingTest, TimerTriggeredFlush) {
  Fixture f;
  Client::Options options;
  options.batch_target_bytes = 1 << 20;  // never by size
  options.batch_flush_interval = 5 * kMillisecond;
  Client client(&f.cluster.sim(), f.cluster.replica(f.leader), options);

  OltpGenerator gen(OltpConfig{.num_keys = 100}, 2);
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    client.SubmitBatched(gen.Next(),
                         [&](const Status&, Duration) { ++completed; });
  }
  EXPECT_EQ(client.batches_flushed(), 0u);
  ASSERT_TRUE(f.cluster.RunUntil([&] { return completed == 3; },
                                 10 * kSecond));
  EXPECT_EQ(client.batches_flushed(), 1u);
  EXPECT_EQ(client.committed(), 3u);
}

TEST(ClientBatchingTest, ManualFlush) {
  Fixture f;
  Client::Options options;
  options.batch_target_bytes = 1 << 20;
  options.batch_flush_interval = 10 * kSecond;
  Client client(&f.cluster.sim(), f.cluster.replica(f.leader), options);

  OltpGenerator gen(OltpConfig{.num_keys = 100}, 3);
  int completed = 0;
  client.SubmitBatched(gen.Next(),
                       [&](const Status&, Duration) { ++completed; });
  client.FlushBatch();
  EXPECT_EQ(client.batches_flushed(), 1u);
  ASSERT_TRUE(f.cluster.RunUntil([&] { return completed == 1; },
                                 10 * kSecond));
  // A second flush with nothing queued is a no-op.
  client.FlushBatch();
  EXPECT_EQ(client.batches_flushed(), 1u);
}

TEST(ClientBatchingTest, BatchingRaisesThroughputPerSlot) {
  // 20 transactions batched consume far fewer slots than unbatched.
  Fixture f;
  Client::Options options;
  options.batch_target_bytes = 4096;
  options.batch_flush_interval = 2 * kMillisecond;
  Client client(&f.cluster.sim(), f.cluster.replica(f.leader), options);

  OltpGenerator gen(OltpConfig{.num_keys = 100}, 4);
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    client.SubmitBatched(gen.Next(),
                         [&](const Status&, Duration) { ++completed; });
  }
  client.FlushBatch();
  ASSERT_TRUE(f.cluster.RunUntil([&] { return completed == 20; },
                                 30 * kSecond));
  EXPECT_LT(f.cluster.replica(f.leader)->decided().size(), 10u);
  EXPECT_EQ(client.committed(), 20u);
}

}  // namespace
}  // namespace dpaxos
