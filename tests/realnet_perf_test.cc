// Realnet perf lane (ctest -C realnet -L realnet_perf): the open-loop
// async LoadGen against a real multi-reactor cluster. Asserts the
// serving-path plumbing — closed-loop saturation completes, open-loop
// arrivals follow the clock, gather writes actually coalesce frames
// (counters prove frames-per-syscall > 1), and a sustained-load soak
// rides the mixed RealNemesis schedule with zero checker violations.
//
// Throughput FLOORS live in scripts/realnet_perf_smoke.sh, not here:
// absolute numbers depend on host core count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <unistd.h>
#include <string>

#include "harness/load_gen.h"
#include "harness/real_chaos.h"
#include "harness/real_cluster.h"
#include "net/tcp/tcp_client.h"

namespace dpaxos {
namespace {

uint64_t StatsU64(const std::string& stats, const std::string& key) {
  const std::string field = StatsField(stats, key);
  return field.empty() ? 0 : strtoull(field.c_str(), nullptr, 10);
}

RealClusterOptions BaseCluster(uint32_t reactors) {
  RealClusterOptions copts;
  copts.server_binary = DPAXOS_CLI_PATH;
  copts.zones = 2;
  copts.nodes_per_zone = 2;
  copts.mode = ProtocolMode::kLeaderZone;
  copts.seed = 11;
  copts.leader_hint = 0;
  if (reactors > 0) {
    copts.extra_args.push_back("--reactors=" + std::to_string(reactors));
  }
  return copts;
}

// Absorb the initial leader election with a blocking client so the
// driver measures a settled cluster.
void Warmup(const RealCluster& cluster) {
  TcpClient client(/*client_id=*/9001);
  ASSERT_TRUE(client.Connect(cluster.endpoint(0), 2 * kSecond).ok());
  Status st;
  for (int attempt = 0; attempt < 100; ++attempt) {
    st = client.Put("warm", "up", 2 * kSecond);
    if (st.ok()) break;
    usleep(50 * 1000);
  }
  ASSERT_TRUE(st.ok()) << st.ToString();
  client.Close();
}

TEST(RealnetPerfTest, ClosedLoopDriverCompletesAndCoalesces) {
  RealCluster cluster(BaseCluster(/*reactors=*/2));
  ASSERT_TRUE(cluster.Start().ok());
  Warmup(cluster);

  LoadGenOptions lg;
  lg.endpoints = {cluster.endpoint(0)};
  lg.connections = 2;
  lg.pipeline = 64;
  lg.rate = 0;  // closed loop: measure capacity
  lg.total_ops = 2000;
  lg.timeout = 120 * kSecond;
  lg.client_id_base = 9100;
  lg.seed = 11;
  Result<LoadGenResult> result = RunLoadGen(lg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->completed);
  EXPECT_GE(result->ops_ok, lg.total_ops * 9 / 10);
  EXPECT_GT(result->achieved_ops, 0.0);
  EXPECT_GT(result->latency.count(), 0u);

  // The tentpole claim: pipelined load batches into gather writes, so
  // frames-per-syscall > 1 somewhere in the cluster. Sum over nodes —
  // the leader's reply path and the followers' ack path both coalesce.
  uint64_t writev_calls = 0, frames_coalesced = 0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    Result<std::string> stats = cluster.Stats(n);
    ASSERT_TRUE(stats.ok()) << "node " << n;
    writev_calls += StatsU64(stats.value(), "tcp_writev_calls");
    frames_coalesced += StatsU64(stats.value(), "tcp_frames_coalesced");
    EXPECT_EQ(StatsU64(stats.value(), "reactors"), 2u) << "node " << n;
  }
  EXPECT_GT(writev_calls, 0u);
  EXPECT_GT(frames_coalesced, 0u);
  EXPECT_TRUE(cluster.ShutdownAll().ok());
}

TEST(RealnetPerfTest, OpenLoopArrivalsFollowTheClock) {
  RealCluster cluster(BaseCluster(/*reactors=*/2));
  ASSERT_TRUE(cluster.Start().ok());
  Warmup(cluster);

  LoadGenOptions lg;
  lg.endpoints = {cluster.endpoint(0)};
  lg.connections = 2;
  lg.pipeline = 128;
  lg.rate = 400;  // offered load well under loopback capacity
  lg.total_ops = 800;
  lg.timeout = 60 * kSecond;
  lg.client_id_base = 9200;
  lg.seed = 12;
  Result<LoadGenResult> result = RunLoadGen(lg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->completed);
  EXPECT_EQ(result->offered_ops, 400.0);
  EXPECT_GE(result->ops_ok, lg.total_ops * 9 / 10);
  // 800 ops at 400/s: the clock, not the server, pacing arrivals means
  // elapsed ~2s regardless of service speed.
  EXPECT_GE(result->elapsed_seconds, 1.5);
  EXPECT_LT(result->elapsed_seconds, 30.0);
  EXPECT_GT(result->latency.count(), 0u);
  EXPECT_TRUE(cluster.ShutdownAll().ok());
}

TEST(RealnetPerfTest, SingleReactorModeStillServes) {
  // reactors=0 keeps the pre-multi-reactor single-threaded path alive;
  // regression against the handoff wiring breaking the default.
  RealCluster cluster(BaseCluster(/*reactors=*/0));
  ASSERT_TRUE(cluster.Start().ok());
  Warmup(cluster);

  LoadGenOptions lg;
  lg.endpoints = {cluster.endpoint(0)};
  lg.connections = 2;
  lg.pipeline = 32;
  lg.total_ops = 500;
  lg.timeout = 60 * kSecond;
  lg.client_id_base = 9300;
  lg.seed = 13;
  Result<LoadGenResult> result = RunLoadGen(lg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->completed);
  EXPECT_GE(result->ops_ok, lg.total_ops * 9 / 10);
  EXPECT_TRUE(cluster.ShutdownAll().ok());
}

TEST(RealnetPerfTest, SoakUnderMixedNemesisKeepsConsistency) {
  // The acceptance soak: open-loop driver + checked workload together
  // under the mixed fault schedule. Checkers must report zero
  // violations and the cluster must converge; the soak driver must have
  // actually attempted traffic through the faults.
  RealChaosOptions chaos;
  chaos.server_binary = DPAXOS_CLI_PATH;
  chaos.mode = ProtocolMode::kLeaderZone;
  chaos.schedule = "mixed";
  chaos.seed = 21;
  chaos.duration = 6 * kSecond;
  chaos.soak_connections = 2;
  chaos.soak_pipeline = 32;
  chaos.soak_rate = 200;
  const RealChaosReport report = RunRealChaos(chaos);
  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_EQ(report.consistency.violations.size(), 0u)
      << report.consistency.Summary();
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.soak_ops_ok + report.soak_ops_failed, 0u);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace dpaxos
