// ChaosProxy tests (realnet tier): point a blocking TcpClient at the
// proxy, back the proxy with an in-process framed echo server, and
// assert each fault class does what its knob says — relay fidelity,
// added latency, drops, partitions, bandwidth throttling, corruption
// caught downstream by the FrameDecoder/parsers, and CloseLinks churn.
//
// Wall-clock timing and real sockets, hence the realnet configuration.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp/chaos_proxy.h"
#include "net/tcp/framing.h"
#include "net/tcp/socket_util.h"
#include "net/tcp/tcp_client.h"

namespace dpaxos {
namespace {

constexpr Duration kCallTimeout = 2 * kSecond;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// AddFault/RemoveFault/ClearFaults apply asynchronously on the proxy's
// loop thread; give the command queue a beat before relying on the rule
// set (the loop wakes immediately, 50ms is generous).
void SettleFaults() { usleep(50 * 1000); }

// Minimal blocking framed server: answers every ClientRequest with
// "<key>=<value>" and counts frames the decoder or parsers reject —
// the downstream detector the corruption fault is specified against.
class FramedEchoServer {
 public:
  FramedEchoServer() {
    Result<int> listener = OpenListener(HostPort{"127.0.0.1", 0}, 16);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listen_fd_ = listener.value();
    // OpenListener hands back a nonblocking fd for event loops; this
    // server blocks in accept/recv, so undo that.
    fcntl(listen_fd_, F_SETFL, fcntl(listen_fd_, F_GETFL) & ~O_NONBLOCK);
    Result<uint16_t> port = BoundPort(listen_fd_);
    EXPECT_TRUE(port.ok());
    port_ = port.value();
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~FramedEchoServer() { Stop(); }

  void Stop() {
    if (listen_fd_ >= 0) {
      shutdown(listen_fd_, SHUT_RDWR);
      close(listen_fd_);
      listen_fd_ = -1;
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> conns;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns.swap(conn_threads_);
    }
    for (std::thread& t : conns) {
      if (t.joinable()) t.join();
    }
  }

  HostPort endpoint() const { return HostPort{"127.0.0.1", port_}; }
  uint64_t decode_errors() const { return decode_errors_.load(); }
  uint64_t frames_served() const { return frames_served_.load(); }

 private:
  void AcceptLoop() {
    for (;;) {
      int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      std::lock_guard<std::mutex> lock(mu_);
      conn_threads_.emplace_back([this, fd] { ServeConn(fd); });
    }
  }

  void ServeConn(int fd) {
    fcntl(fd, F_SETFL, fcntl(fd, F_GETFL) & ~O_NONBLOCK);
    FrameDecoder decoder;
    char buf[4096];
    bool dead = false;
    while (!dead) {
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      std::string_view body;
      for (;;) {
        FrameDecoder::Next next = decoder.Pop(&body);
        if (next == FrameDecoder::Next::kNeedMore) break;
        if (next == FrameDecoder::Next::kError) {
          decode_errors_.fetch_add(1);
          dead = true;
          break;
        }
        if (!HandleFrame(fd, body)) {
          decode_errors_.fetch_add(1);
          dead = true;
          break;
        }
      }
    }
    close(fd);
  }

  // False on any frame the parsers reject (poisoned stream: drop it,
  // exactly like the real transport does).
  bool HandleFrame(int fd, std::string_view body) {
    if (body.empty()) return false;
    switch (static_cast<FrameType>(body[0])) {
      case FrameType::kHello:
        return ParseHello(body).ok();
      case FrameType::kClientRequest: {
        Result<ClientRequest> req = ParseClientRequest(body);
        if (!req.ok()) return false;
        ClientReply reply;
        reply.request_id = req.value().request_id;
        reply.status_code = 0;
        reply.value = req.value().key + "=" + req.value().value;
        std::string out = EncodeClientReplyFrame(reply);
        size_t sent = 0;
        while (sent < out.size()) {
          ssize_t n = send(fd, out.data() + sent, out.size() - sent,
                           MSG_NOSIGNAL);
          if (n <= 0) return false;
          sent += static_cast<size_t>(n);
        }
        frames_served_.fetch_add(1);
        return true;
      }
      default:
        return false;
    }
  }

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> conn_threads_;
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> frames_served_{0};
};

struct ProxyFixture {
  explicit ProxyFixture(uint64_t seed = 7) {
    ChaosProxyOptions options;
    options.upstreams = {server.endpoint()};
    options.seed = seed;
    proxy = std::make_unique<ChaosProxy>(options);
    EXPECT_TRUE(proxy->Start().ok());
  }
  ~ProxyFixture() { proxy->Stop(); }

  FramedEchoServer server;
  std::unique_ptr<ChaosProxy> proxy;
};

Result<ClientReply> Echo(TcpClient& client, const std::string& key,
                         const std::string& value) {
  return client.Call(ClientOp::kPut, key, value, kCallTimeout);
}

TEST(ChaosProxyTest, CleanRelayIsTransparent) {
  ProxyFixture fx;
  TcpClient client(42);
  ASSERT_TRUE(client.Connect(fx.proxy->endpoint(0), kCallTimeout).ok());
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    Result<ClientReply> reply = Echo(client, key, "v");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.value().value, key + "=v");
  }
  ChaosProxyStats stats = fx.proxy->stats();
  // hello + 20 requests forward, 20 replies back.
  EXPECT_GE(stats.frames_relayed, 41u);
  EXPECT_EQ(stats.frames_dropped, 0u);
  EXPECT_EQ(stats.frames_corrupted, 0u);
  EXPECT_EQ(fx.server.decode_errors(), 0u);
}

TEST(ChaosProxyTest, LatencyFaultDelaysRoundTrips) {
  ProxyFixture fx;
  TcpClient client(42);
  ASSERT_TRUE(client.Connect(fx.proxy->endpoint(0), kCallTimeout).ok());
  ASSERT_TRUE(Echo(client, "warm", "up").ok());

  LinkFault fault;
  fault.latency = 80 * kMillisecond;  // both directions -> >=160ms RTT
  fx.proxy->AddFault(LinkSelector{}, fault);
  SettleFaults();

  const int64_t start = NowMs();
  ASSERT_TRUE(Echo(client, "slow", "path").ok());
  const int64_t elapsed = NowMs() - start;
  EXPECT_GE(elapsed, 150) << "latency fault not applied";
  EXPECT_GT(fx.proxy->stats().frames_delayed, 0u);

  fx.proxy->ClearFaults();
  SettleFaults();
  const int64_t start2 = NowMs();
  ASSERT_TRUE(Echo(client, "fast", "again").ok());
  EXPECT_LT(NowMs() - start2, 150);
}

TEST(ChaosProxyTest, FullDropRateStarvesTheLink) {
  ProxyFixture fx;
  TcpClient client(42);
  ASSERT_TRUE(client.Connect(fx.proxy->endpoint(0), kCallTimeout).ok());
  ASSERT_TRUE(Echo(client, "warm", "up").ok());

  LinkFault fault;
  fault.drop_rate = 1.0;
  const uint64_t rule = fx.proxy->AddFault(LinkSelector{}, fault);
  SettleFaults();
  Result<ClientReply> lost =
      client.Call(ClientOp::kPut, "k", "v", 300 * kMillisecond);
  EXPECT_FALSE(lost.ok());
  EXPECT_GT(fx.proxy->stats().frames_dropped, 0u);

  fx.proxy->RemoveFault(rule);
  SettleFaults();
  // Same connection survives: drops are silent, not resets. The timed-out
  // request's late-arriving id was dropped, so the next call just works.
  Result<ClientReply> again = Echo(client, "k2", "v2");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().value, "k2=v2");
}

TEST(ChaosProxyTest, PartitionBlackholesUntilHealed) {
  ProxyFixture fx;
  TcpClient client(42);
  ASSERT_TRUE(client.Connect(fx.proxy->endpoint(0), kCallTimeout).ok());
  ASSERT_TRUE(Echo(client, "warm", "up").ok());

  LinkFault fault;
  fault.partitioned = true;
  LinkSelector to_node;
  to_node.src_node = LinkSelector::kClient;
  to_node.dst_node = 0;
  const uint64_t rule = fx.proxy->AddFault(to_node, fault);
  SettleFaults();

  Result<ClientReply> blocked =
      client.Call(ClientOp::kPut, "k", "v", 300 * kMillisecond);
  EXPECT_FALSE(blocked.ok());
  EXPECT_GT(fx.proxy->stats().frames_blackholed, 0u);

  fx.proxy->RemoveFault(rule);
  SettleFaults();
  Result<ClientReply> healed = Echo(client, "k2", "v2");
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
}

TEST(ChaosProxyTest, ThrottlePacesBulkTransfer) {
  ProxyFixture fx;
  TcpClient client(42);
  ASSERT_TRUE(client.Connect(fx.proxy->endpoint(0), kCallTimeout).ok());
  ASSERT_TRUE(Echo(client, "warm", "up").ok());

  LinkFault fault;
  fault.bytes_per_sec = 4000;
  LinkSelector forward;
  forward.src_node = LinkSelector::kClient;
  fx.proxy->AddFault(forward, fault);
  SettleFaults();

  // ~2.4 KB of request frames through a 4 KB/s pipe: >=400ms of pacing
  // even after the first frame rides the initially-empty bucket.
  const std::string payload(760, 'x');
  const int64_t start = NowMs();
  for (int i = 0; i < 3; ++i) {
    Result<ClientReply> reply = Echo(client, "bulk", payload);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  EXPECT_GE(NowMs() - start, 350);
  EXPECT_GT(fx.proxy->stats().frames_delayed, 0u);
}

TEST(ChaosProxyTest, CorruptionIsCaughtDownstream) {
  ProxyFixture fx(/*seed=*/11);
  LinkFault fault;
  fault.corrupt_rate = 1.0;
  LinkSelector forward;
  forward.src_node = LinkSelector::kClient;
  fx.proxy->AddFault(forward, fault);
  SettleFaults();

  // Every forward frame gets 1-3 bit flips somewhere in [len|body]. The
  // echo server must reject the stream via FrameDecoder or parser —
  // never crash, never echo silently-corrupt frames forever. A flipped
  // length prefix can also just desynchronize the stream (the decoder
  // waits in kNeedMore for a bogus length), so pump a whole burst of
  // frames raw — no reply waiting — until the garbage trips a decoder
  // or parser error (seeded rng, deterministic).
  Result<int> raw = StartConnect(fx.proxy->endpoint(0));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  const int fd = raw.value();
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL) & ~O_NONBLOCK);
  usleep(20 * 1000);  // let the nonblocking connect finish

  std::string burst = EncodeHelloFrame(Hello{PeerKind::kClient, 999});
  for (int i = 0; i < 200; ++i) {
    ClientRequest req;
    req.request_id = static_cast<uint64_t>(i + 1);
    req.op = ClientOp::kPut;
    req.key = "k" + std::to_string(i);
    req.value = "vvvvvvvvvvvvvvvv";
    burst += EncodeClientRequestFrame(req);
  }
  size_t sent = 0;
  while (sent < burst.size()) {
    ssize_t n = send(fd, burst.data() + sent, burst.size() - sent,
                     MSG_NOSIGNAL);
    if (n <= 0) break;  // server already cut the poisoned stream
    sent += static_cast<size_t>(n);
  }

  bool rejected = false;
  for (int i = 0; i < 100 && !rejected; ++i) {
    rejected = fx.server.decode_errors() > 0;
    usleep(20 * 1000);
  }
  close(fd);
  EXPECT_TRUE(rejected) << "corrupted frames were never rejected";
  EXPECT_GT(fx.proxy->stats().frames_corrupted, 0u);
}

TEST(ChaosProxyTest, RelaysCoalescedMultiFrameReads) {
  // Regression for the sender-side writev coalescing: a single send()
  // carrying HELLO plus a whole batch of request frames must relay
  // through the proxy with every frame boundary intact — one coalesced
  // read is not one frame.
  ProxyFixture fx;
  Result<int> raw = StartConnect(fx.proxy->endpoint(0));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  const int fd = raw.value();
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL) & ~O_NONBLOCK);
  struct timeval rcv_timeout = {0, 200 * 1000};  // bound recv, not the test
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv_timeout, sizeof(rcv_timeout));
  usleep(20 * 1000);  // let the nonblocking connect finish

  constexpr int kRequests = 50;
  std::string burst = EncodeHelloFrame(Hello{PeerKind::kClient, 777});
  for (int i = 0; i < kRequests; ++i) {
    ClientRequest req;
    req.request_id = static_cast<uint64_t>(i + 1);
    req.op = ClientOp::kPut;
    req.key = "batch" + std::to_string(i);
    req.value = "v" + std::to_string(i);
    burst += EncodeClientRequestFrame(req);
  }
  size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n = send(fd, burst.data() + sent, burst.size() - sent,
                           MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  // Every request gets echoed: the server decoded all frames from the
  // coalesced stream and none were rejected.
  FrameDecoder decoder;
  std::set<uint64_t> replied;
  char buf[4096];
  for (int spin = 0;
       static_cast<int>(replied.size()) < kRequests && spin < 150; ++spin) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      usleep(10 * 1000);
      continue;
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    std::string_view body;
    while (decoder.Pop(&body) == FrameDecoder::Next::kFrame) {
      Result<ClientReply> reply = ParseClientReply(body);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      const uint64_t id = reply.value().request_id;
      EXPECT_EQ(reply.value().value,
                "batch" + std::to_string(id - 1) + "=v" +
                    std::to_string(id - 1));
      replied.insert(id);
    }
    ASSERT_FALSE(decoder.failed()) << decoder.error();
  }
  close(fd);
  EXPECT_EQ(replied.size(), static_cast<size_t>(kRequests));
  EXPECT_EQ(fx.server.decode_errors(), 0u);
  EXPECT_EQ(fx.server.frames_served(), static_cast<uint64_t>(kRequests));
}

TEST(ChaosProxyTest, CloseLinksCutsLiveConnections) {
  ProxyFixture fx;
  TcpClient client(42);
  ASSERT_TRUE(client.Connect(fx.proxy->endpoint(0), kCallTimeout).ok());
  ASSERT_TRUE(Echo(client, "warm", "up").ok());

  fx.proxy->CloseLinks(LinkSelector{});
  // The cut may land mid-call or before the next one; either way the
  // old connection is dead within a bounded number of attempts.
  bool saw_failure = false;
  for (int i = 0; i < 5 && !saw_failure; ++i) {
    saw_failure = !client.Call(ClientOp::kPut, "k", "v", 500 * kMillisecond)
                       .ok();
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_GT(fx.proxy->stats().links_closed, 0u);

  // Reconnecting through the proxy works immediately.
  TcpClient fresh(43);
  ASSERT_TRUE(fresh.Connect(fx.proxy->endpoint(0), kCallTimeout).ok());
  EXPECT_TRUE(Echo(fresh, "post", "cut").ok());
}

}  // namespace
}  // namespace dpaxos
