// Unit tests for the Vyukov intrusive MPSC queue behind
// EventLoop::PostTask: FIFO per producer, loss-free under multi-producer
// contention, and safe teardown with items still queued.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "net/tcp/mpsc_queue.h"

namespace dpaxos {
namespace {

TEST(MpscQueueTest, StartsEmpty) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.Empty());
  int out = 0;
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(MpscQueueTest, SingleThreadFifo) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.Push(i);
  EXPECT_FALSE(q.Empty());
  for (int i = 0; i < 100; ++i) {
    int out = -1;
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(q.Empty());
  int out = -1;
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(MpscQueueTest, InterleavedPushPop) {
  MpscQueue<int> q;
  int next_expected = 0;
  for (int round = 0; round < 50; ++round) {
    q.Push(2 * round);
    q.Push(2 * round + 1);
    int out = -1;
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, next_expected++);
  }
  // Drain the backlog (one element left per round).
  int out = -1;
  while (q.TryPop(&out)) {
    EXPECT_EQ(out, next_expected++);
  }
  EXPECT_EQ(next_expected, 100);
}

TEST(MpscQueueTest, MovesPayloads) {
  MpscQueue<std::unique_ptr<int>> q;
  q.Push(std::make_unique<int>(42));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(MpscQueueTest, MultiProducerLosesNothing) {
  // 4 producers x 10k items; the consumer polls concurrently. Per-producer
  // order must hold and every value must arrive exactly once.
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 10000;
  MpscQueue<uint64_t> q;
  std::atomic<int> live_producers{kProducers};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &live_producers, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        q.Push((static_cast<uint64_t>(p) << 32) | i);
      }
      live_producers.fetch_sub(1, std::memory_order_release);
    });
  }

  std::vector<uint64_t> last_seen(kProducers, 0);
  std::vector<uint64_t> count(kProducers, 0);
  uint64_t total = 0;
  while (total < kProducers * kPerProducer) {
    uint64_t item;
    if (!q.TryPop(&item)) {
      // The queue may look momentarily empty mid-push (the consistency
      // window); only producers being done makes "empty" meaningful.
      if (live_producers.load(std::memory_order_acquire) == 0 && q.Empty() &&
          !q.TryPop(&item)) {
        continue;
      }
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(item >> 32);
    const uint64_t seq = item & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    if (count[p] > 0) {
      EXPECT_GT(seq, last_seen[p]) << "producer " << p << " reordered";
    }
    last_seen[p] = seq;
    ++count[p];
    ++total;
  }
  for (std::thread& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(count[p], kPerProducer) << "producer " << p;
  }
  EXPECT_TRUE(q.Empty());
}

TEST(MpscQueueTest, DestructorDrainsPendingItems) {
  // Leak-checked under ASan: destruction with queued payloads must free
  // both nodes and payloads.
  auto q = std::make_unique<MpscQueue<std::shared_ptr<int>>>();
  auto payload = std::make_shared<int>(7);
  std::weak_ptr<int> watch = payload;
  q->Push(std::move(payload));
  q->Push(std::make_shared<int>(8));
  q.reset();
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace dpaxos
