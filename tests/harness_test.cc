// Tests for the experiment harness: cluster construction, synchronous
// drivers, multiple partitions, and the closed-loop load driver.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "harness/cluster.h"
#include "harness/history.h"
#include "harness/lin_checker.h"
#include "harness/load_driver.h"
#include "harness/real_chaos.h"
#include "harness/table.h"

namespace dpaxos {
namespace {

TEST(ClusterTest, BuildsPaperDeployment) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  EXPECT_EQ(cluster.topology().num_nodes(), 21u);
  EXPECT_EQ(cluster.mode(), ProtocolMode::kLeaderZone);
  for (NodeId n = 0; n < 21; ++n) {
    ASSERT_NE(cluster.replica(n), nullptr);
    EXPECT_EQ(cluster.replica(n)->id(), n);
  }
}

TEST(ClusterTest, NodeInZoneIndexing) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kMultiPaxos);
  EXPECT_EQ(cluster.NodeInZone(0, 0), 0u);
  EXPECT_EQ(cluster.NodeInZone(0, 2), 2u);
  EXPECT_EQ(cluster.NodeInZone(6, 1), 19u);
}

TEST(ClusterTest, MultiplePartitionsAreIndependent) {
  ClusterOptions options;
  options.partitions = {0, 1, 2};
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  // Different partitions elect different leaders and commit concurrently.
  ASSERT_TRUE(cluster.ElectLeader(cluster.NodeInZone(0), 0).ok());
  ASSERT_TRUE(cluster.ElectLeader(cluster.NodeInZone(3), 1).ok());
  ASSERT_TRUE(cluster.ElectLeader(cluster.NodeInZone(6), 2).ok());
  ASSERT_TRUE(cluster.Commit(cluster.NodeInZone(0), Value::Of(1, "p0"), 0).ok());
  ASSERT_TRUE(cluster.Commit(cluster.NodeInZone(3), Value::Of(2, "p1"), 1).ok());
  ASSERT_TRUE(cluster.Commit(cluster.NodeInZone(6), Value::Of(3, "p2"), 2).ok());
  EXPECT_EQ(cluster.replica(cluster.NodeInZone(0), 0)->decided().size(), 1u);
  EXPECT_EQ(cluster.replica(cluster.NodeInZone(0), 1)->decided().size(), 0u);
}

TEST(ClusterTest, LeaderlessStripingIsConfiguredPerNode) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderless);
  EXPECT_EQ(cluster.replica(5)->config().leaderless_index, 5u);
  EXPECT_EQ(cluster.replica(5)->config().leaderless_total, 21u);
}

TEST(ClusterTest, RunUntilTimesOut) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  EXPECT_FALSE(cluster.RunUntil([] { return false; }, 100 * kMillisecond));
}

TEST(ClusterDeathTest, RejectsTooFewNodesPerZone) {
  ClusterOptions options;
  options.ft = FaultTolerance{2, 0};  // needs 5 nodes per zone
  EXPECT_DEATH(Cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                       options),
               "2\\*fd\\+1");
}

TEST(ClusterDeathTest, RejectsTooFewZones) {
  ClusterOptions options;
  options.ft = FaultTolerance{1, 1};  // needs 3 zones
  EXPECT_DEATH(Cluster(Topology::Uniform(2, 3, 50.0),
                       ProtocolMode::kLeaderZone, options),
               "2\\*fz\\+1");
}

TEST(LoadDriverTest, ClosedLoopCommitsForDuration) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Replica* leader = cluster.ReplicaInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader->id()).ok());

  LoadOptions load;
  load.batch_bytes = 1024;
  load.duration = 3 * kSecond;
  const LoadResult result = RunClosedLoop(cluster, leader, load);
  EXPECT_EQ(result.failed, 0u);
  // ~12 ms per 1 KB commit -> on the order of 250 commits in 3 s.
  EXPECT_GT(result.committed, 200u);
  EXPECT_LT(result.committed, 300u);
  EXPECT_NEAR(result.commit_latency.MeanMillis(), 11.0, 2.0);
  EXPECT_NEAR(result.ThroughputKBps(), 90.0, 15.0);
}

TEST(LoadDriverTest, WindowRaisesThroughput) {
  auto run = [](uint32_t window) {
    ClusterOptions options;
    options.replica.max_inflight = window;
    Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                    options);
    Replica* leader = cluster.ReplicaInZone(0);
    EXPECT_TRUE(cluster.ElectLeader(leader->id()).ok());
    LoadOptions load;
    load.batch_bytes = 1024;
    load.duration = 3 * kSecond;
    load.window = window;
    return RunClosedLoop(cluster, leader, load).ThroughputKBps();
  };
  EXPECT_GT(run(4), 3.0 * run(1));
}

TEST(LoadDriverTest, ReadFractionServedLocally) {
  ClusterOptions options;
  options.replica.enable_leases = true;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  Replica* leader = cluster.ReplicaInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader->id()).ok());
  ASSERT_TRUE(cluster.Commit(leader->id(), Value::Synthetic(1, 64)).ok());

  LoadOptions load;
  load.batch_bytes = 10 * 1024;
  load.duration = 3 * kSecond;
  load.read_only_fraction = 0.5;
  const LoadResult result = RunClosedLoop(cluster, leader, load);
  EXPECT_GT(result.reads_served, 0u);
  EXPECT_LT(result.read_latency.MeanMillis(), 1.0);  // paper: < 1 ms
}

TEST(LoadDriverTest, ConcurrentLoopsShareTheSimulation) {
  // The Figure 8 methodology: several partitions driven at once.
  ClusterOptions options;
  options.partitions = {0, 1, 2};
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  std::vector<Replica*> leaders;
  const ZoneId zones[3] = {0, 3, 6};
  for (PartitionId p = 0; p < 3; ++p) {
    Replica* leader = cluster.replica(cluster.NodeInZone(zones[p]), p);
    ASSERT_TRUE(cluster.ElectLeader(leader->id(), p).ok());
    leaders.push_back(leader);
  }
  LoadOptions load;
  load.batch_bytes = 1024;
  load.duration = 3 * kSecond;
  const std::vector<LoadResult> results =
      RunClosedLoops(cluster, leaders, {load, load, load});
  ASSERT_EQ(results.size(), 3u);
  for (const LoadResult& r : results) {
    EXPECT_EQ(r.failed, 0u);
    EXPECT_GT(r.committed, 200u);  // all three progressed concurrently
    EXPECT_NEAR(r.commit_latency.MeanMillis(), 11.0, 2.0);
  }
}

TEST(LoadDriverTest, LeaderlessStripingAvoidsContention) {
  // Two leaderless proposers run concurrently: slot striping keeps their
  // logs disjoint, so neither ever aborts (the paper's "optimal case").
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderless);
  std::vector<Replica*> proposers = {cluster.ReplicaInZone(0),
                                     cluster.ReplicaInZone(6)};
  LoadOptions load;
  load.batch_bytes = 512;
  load.duration = 3 * kSecond;
  const std::vector<LoadResult> results =
      RunClosedLoops(cluster, proposers, {load, load});
  for (const LoadResult& r : results) {
    EXPECT_EQ(r.failed, 0u);
    EXPECT_GT(r.committed, 10u);
  }
  // Proposals land on disjoint stripes, so the two logs never conflict:
  // every slot both replicas learned agrees (decide notifications spread
  // each proposer's slots to quorum members).
  for (const auto& [slot, value] : proposers[0]->decided()) {
    auto it = proposers[1]->decided().find(slot);
    if (it != proposers[1]->decided().end()) {
      EXPECT_EQ(it->second.id, value.id) << "slot " << slot;
    }
  }
}

TEST(LoadDriverTest, OpenLoopTracksOfferedRate) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Replica* leader = cluster.ReplicaInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader->id()).ok());

  OpenLoadOptions load;
  load.batch_bytes = 1024;
  load.duration = 5 * kSecond;
  load.arrivals_per_sec = 20.0;  // ~23% of the ~88/s service capacity
  const LoadResult result = RunOpenLoop(cluster, leader, load);
  EXPECT_EQ(result.failed, 0u);
  // Poisson arrivals: expect roughly 100 +- a wide margin.
  EXPECT_GT(result.committed, 70u);
  EXPECT_LT(result.committed, 135u);
  // Lightly loaded: service time plus a small M/D/1 queueing term.
  EXPECT_NEAR(result.commit_latency.MeanMillis(), 13.0, 2.5);
}

TEST(LoadDriverTest, OpenLoopSaturationInflatesLatency) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Replica* leader = cluster.ReplicaInZone(0);
  ASSERT_TRUE(cluster.ElectLeader(leader->id()).ok());

  OpenLoadOptions load;
  load.batch_bytes = 1024;
  load.duration = 5 * kSecond;
  load.arrivals_per_sec = 200.0;  // ~2.3x the single-slot service rate
  const LoadResult result = RunOpenLoop(cluster, leader, load);
  // Queueing dominates: mean latency far above the 11 ms service time.
  EXPECT_GT(result.commit_latency.MeanMillis(), 100.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream oss;
  table.Print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(Fmt(12.345, 1), "12.3");
  EXPECT_EQ(Fmt(12.345, 0), "12");
  EXPECT_EQ(Fmt(0.5, 2), "0.50");
}

// --- Consistency checkers against hand-crafted histories -------------
//
// The chaos tiers only ever feed the checkers histories a correct
// system produced, so "the checkers pass" would also be true of
// checkers that never flag anything. These pin the other half of the
// contract: a known-bad history MUST come back with violations.

HistoryOp Write(uint64_t client, uint64_t seq, const std::string& key,
                const std::string& value, Timestamp invoke,
                Timestamp complete, SlotId slot) {
  HistoryOp op;
  op.client_id = client;
  op.seq = seq;
  op.key = key;
  op.written = value;
  op.invoke = invoke;
  op.complete = complete;
  op.outcome = HistoryOutcome::kOk;
  op.slot = slot;
  return op;
}

HistoryOp Read(uint64_t client, uint64_t seq, const std::string& key,
               std::optional<std::string> observed, Timestamp invoke,
               Timestamp complete, SlotId watermark) {
  HistoryOp op;
  op.client_id = client;
  op.seq = seq;
  op.is_read = true;
  op.key = key;
  op.observed = std::move(observed);
  op.invoke = invoke;
  op.complete = complete;
  op.outcome = HistoryOutcome::kOk;
  op.observed_watermark = watermark;
  return op;
}

// The classic partition scenario: v2 is acknowledged before the read
// starts, but a replica that missed the decide traffic during the
// partition still serves v1 after the heal. Real-time precedence makes
// that non-linearizable.
TEST(LinCheckerTest, StaleReadAfterPartitionHealIsFlagged) {
  std::vector<HistoryOp> ops;
  ops.push_back(Write(1, 1, "k", "v1", 0, 10, 5));
  ops.push_back(Write(1, 2, "k", "v2", 20, 30, 6));
  ops.push_back(Read(2, 1, "k", "v1", 40, 50, 5));  // stale!
  ConsistencyReport report = CheckHistory(ops);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.keys_checked, 1u);
}

// The same interleaving where the read genuinely overlaps the second
// write is fine: the read may linearize before it.
TEST(LinCheckerTest, ConcurrentReadMayObserveEitherValue) {
  std::vector<HistoryOp> ops;
  ops.push_back(Write(1, 1, "k", "v1", 0, 10, 5));
  ops.push_back(Write(1, 2, "k", "v2", 20, 40, 6));
  ops.push_back(Read(2, 1, "k", "v1", 25, 35, 5));  // concurrent with v2
  EXPECT_TRUE(CheckHistory(ops).ok());
}

TEST(LinCheckerTest, ObservedFailedWriteIsFlagged) {
  std::vector<HistoryOp> ops;
  HistoryOp failed = Write(1, 1, "k", "ghost", 0, 10, 0);
  failed.outcome = HistoryOutcome::kFail;
  ops.push_back(failed);
  ops.push_back(Read(2, 1, "k", "ghost", 20, 30, 3));
  EXPECT_FALSE(CheckHistory(ops).ok());
}

TEST(LinCheckerTest, ReadYourWritesViolationIsFlagged) {
  std::vector<HistoryOp> ops;
  ops.push_back(Write(1, 1, "k", "v1", 0, 10, 15));
  // Same client's next read served from an applied prefix that predates
  // its own acked write: failover to a lagging replica.
  ops.push_back(Read(1, 2, "k", std::nullopt, 20, 30, 10));
  ConsistencyReport report = CheckSessionGuarantees(ops);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("read-your-writes"), std::string::npos);
}

TEST(LinCheckerTest, MonotonicReadsViolationIsFlagged) {
  std::vector<HistoryOp> ops;
  ops.push_back(Read(1, 1, "k", "v5", 0, 10, 50));
  ops.push_back(Read(1, 2, "k", "v3", 20, 30, 30));  // older prefix
  ConsistencyReport report = CheckSessionGuarantees(ops);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations[0].find("monotonic reads"), std::string::npos);
}

// --- BENCH_realnet.json chaos-section splicing -----------------------

TEST(RealChaosJsonTest, MergeIntoEmptyDocumentCreatesFreshOne) {
  std::string merged = MergeChaosIntoBenchJson("", "{\"ok\": true}");
  EXPECT_NE(merged.find("\"chaos\": {\"ok\": true}"), std::string::npos);
  EXPECT_EQ(merged.front(), '{');
  EXPECT_EQ(merged[merged.size() - 2], '}');  // trailing newline after }
}

TEST(RealChaosJsonTest, MergePreservesExistingMembers) {
  const std::string existing =
      "{\n  \"suite\": \"realnet\",\n  \"modes\": [1, 2]\n}\n";
  std::string merged = MergeChaosIntoBenchJson(existing, "{\"a\": 1}");
  EXPECT_NE(merged.find("\"suite\": \"realnet\""), std::string::npos);
  EXPECT_NE(merged.find("\"modes\": [1, 2],"), std::string::npos)
      << "comma not added before spliced section:\n" << merged;
  EXPECT_NE(merged.find("\"chaos\": {\"a\": 1}"), std::string::npos);
}

TEST(RealChaosJsonTest, MergeReplacesPriorChaosSection) {
  const std::string existing =
      "{\n  \"suite\": \"realnet\",\n  \"chaos\": {\"old\": {\"x\": 1}}\n}\n";
  std::string merged = MergeChaosIntoBenchJson(existing, "{\"new\": 2}");
  EXPECT_EQ(merged.find("\"old\""), std::string::npos)
      << "stale chaos section survived:\n" << merged;
  EXPECT_NE(merged.find("\"chaos\": {\"new\": 2}"), std::string::npos);
  EXPECT_NE(merged.find("\"suite\": \"realnet\""), std::string::npos);
  // Merging twice is idempotent modulo the section payload.
  std::string again = MergeChaosIntoBenchJson(merged, "{\"new\": 3}");
  EXPECT_EQ(again.find("\"new\": 2"), std::string::npos);
  EXPECT_NE(again.find("\"chaos\": {\"new\": 3}"), std::string::npos);
}

}  // namespace
}  // namespace dpaxos
