// Tests for the Leader Zone migration protocol (paper Section 4.3.2):
// the Leader Zone Instance synod, the three-step transition, intent
// transfer, lazy announcements, redirection of stale aspirants, and
// races between concurrent migrations.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace dpaxos {
namespace {

Status Migrate(Cluster& cluster, NodeId driver, ZoneId next) {
  Status result = Status::Internal("never completed");
  bool done = false;
  cluster.replica(driver)->MigrateLeaderZone(next, [&](const Status& st) {
    result = st;
    done = true;
  });
  EXPECT_TRUE(cluster.RunUntil([&] { return done; }, 120 * kSecond));
  return result;
}

TEST(LzMigrationTest, BasicMigrationMovesTheLeaderZone) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId driver = cluster.NodeInZone(3);
  ASSERT_TRUE(Migrate(cluster, driver, 3).ok());
  cluster.sim().RunFor(2 * kSecond);  // let announcements propagate

  for (NodeId n : cluster.topology().AllNodes()) {
    EXPECT_EQ(cluster.replica(n)->lz_view().current, 3u);
    EXPECT_EQ(cluster.replica(n)->lz_view().epoch, 1u);
    EXPECT_FALSE(cluster.replica(n)->lz_view().in_transition());
    EXPECT_FALSE(cluster.replica(n)->acceptor().intent_storage_paused());
  }
}

TEST(LzMigrationTest, MigrateToCurrentZoneIsNoOp) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ASSERT_TRUE(Migrate(cluster, 5, 0).ok());
  EXPECT_EQ(cluster.replica(5)->lz_view().epoch, 0u);
}

TEST(LzMigrationTest, RejectsInvalidZone) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  EXPECT_TRUE(Migrate(cluster, 0, 99).IsInvalidArgument());
}

TEST(LzMigrationTest, RequiresLeaderZoneMode) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kDelegate);
  Status result;
  cluster.replica(0)->MigrateLeaderZone(3, [&](const Status& st) {
    result = st;
  });
  EXPECT_EQ(result.code(), StatusCode::kNotSupported);
}

TEST(LzMigrationTest, IntentsAreTransferredToTheNewZone) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  // A leader declares its intent into the Leader Zone (zone 0).
  const NodeId leader = cluster.NodeInZone(2);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  const Ballot leader_ballot = cluster.replica(leader)->ballot();

  ASSERT_TRUE(Migrate(cluster, cluster.NodeInZone(4), 4).ok());
  cluster.sim().RunFor(2 * kSecond);

  // A majority of the new Leader Zone's nodes hold the old intents.
  int holders = 0;
  for (NodeId n : cluster.topology().NodesInZone(4)) {
    for (const Intent& in : cluster.replica(n)->acceptor().intents()) {
      if (in.ballot == leader_ballot) {
        ++holders;
        break;
      }
    }
  }
  EXPECT_GE(holders, 2);
}

TEST(LzMigrationTest, ElectionAfterMigrationUsesNewZoneAndFindsIntents) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(2);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());
  ASSERT_TRUE(Migrate(cluster, cluster.NodeInZone(4), 4).ok());
  cluster.sim().RunFor(2 * kSecond);

  // The aspirant (aware of the new view via announcements) elects through
  // zone 4 and must still detect and intersect the zone-2 leader's intent.
  Replica* aspirant = cluster.ReplicaInZone(5);
  aspirant->PrimeBallot(cluster.replica(leader)->ballot());
  ASSERT_TRUE(cluster.ElectLeader(aspirant->id()).ok());
  EXPECT_TRUE(aspirant->is_leader());
  EXPECT_FALSE(cluster.replica(leader)->is_leader());
  // Log safety: the old decided value survives.
  cluster.sim().RunFor(2 * kSecond);
  ASSERT_TRUE(cluster.Commit(aspirant->id(), Value::Of(2, "b")).ok());
  for (const auto& [slot, value] : cluster.replica(leader)->decided()) {
    auto it = aspirant->decided().find(slot);
    if (it != aspirant->decided().end()) {
      EXPECT_EQ(it->second.id, value.id);
    }
  }
}

TEST(LzMigrationTest, StaleAspirantIsRedirected) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Replica* aspirant = cluster.ReplicaInZone(6);

  // Cut the aspirant off while the Leader Zone moves 0 -> 3, so it never
  // sees the announcement.
  for (NodeId n : cluster.topology().AllNodes()) {
    if (n != aspirant->id()) cluster.transport().Partition(aspirant->id(), n);
  }
  ASSERT_TRUE(Migrate(cluster, cluster.NodeInZone(3), 3).ok());
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_EQ(aspirant->lz_view().epoch, 0u);  // still stale
  cluster.transport().HealAll();

  // Its election starts at the old zone, which redirects (paper Step 3):
  // it must still succeed, now through zone 3.
  ASSERT_TRUE(cluster.ElectLeader(aspirant->id()).ok());
  EXPECT_EQ(aspirant->lz_view().current, 3u);
  EXPECT_TRUE(aspirant->is_leader());
}

TEST(LzMigrationTest, ConcurrentMigrationsAgreeOnOneWinner) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  Status r1 = Status::Internal("pending"), r2 = Status::Internal("pending");
  bool d1 = false, d2 = false;
  cluster.replica(cluster.NodeInZone(2))
      ->MigrateLeaderZone(2, [&](const Status& st) {
        r1 = st;
        d1 = true;
      });
  cluster.replica(cluster.NodeInZone(5))
      ->MigrateLeaderZone(5, [&](const Status& st) {
        r2 = st;
        d2 = true;
      });
  ASSERT_TRUE(cluster.RunUntil([&] { return d1 && d2; }, 120 * kSecond));
  cluster.sim().RunFor(3 * kSecond);

  // Exactly one request wins epoch 1 (the synod decides a single value);
  // the loser is told it lost. All nodes converge on the winner.
  EXPECT_NE(r1.ok(), r2.ok());
  const ZoneId winner = r1.ok() ? 2 : 5;
  for (NodeId n : cluster.topology().AllNodes()) {
    EXPECT_GE(cluster.replica(n)->lz_view().epoch, 1u);
    if (cluster.replica(n)->lz_view().epoch == 1) {
      EXPECT_EQ(cluster.replica(n)->lz_view().current, winner);
    }
  }
}

TEST(LzMigrationTest, ChainedMigrationsBumpEpochs) {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  ASSERT_TRUE(Migrate(cluster, cluster.NodeInZone(1), 1).ok());
  cluster.sim().RunFor(2 * kSecond);
  ASSERT_TRUE(Migrate(cluster, cluster.NodeInZone(4), 4).ok());
  cluster.sim().RunFor(2 * kSecond);
  ASSERT_TRUE(Migrate(cluster, cluster.NodeInZone(6), 6).ok());
  cluster.sim().RunFor(2 * kSecond);
  for (NodeId n : cluster.topology().AllNodes()) {
    EXPECT_EQ(cluster.replica(n)->lz_view().epoch, 3u);
    EXPECT_EQ(cluster.replica(n)->lz_view().current, 6u);
  }
  // The system is still fully operational.
  Replica* leader = cluster.ReplicaInZone(6, 1);
  ASSERT_TRUE(cluster.ElectLeader(leader->id()).ok());
  ASSERT_TRUE(cluster.Commit(leader->id(), Value::Of(1, "after")).ok());
}

TEST(LzMigrationTest, MigrationFollowedByElectionDuringTransitionIsSafe) {
  // An aspirant that runs while the transition is in flight must take
  // double majorities (old + next zone). We approximate by racing the
  // election against the migration and checking invariants afterwards.
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const NodeId leader = cluster.NodeInZone(2);
  ASSERT_TRUE(cluster.ElectLeader(leader).ok());
  ASSERT_TRUE(cluster.Commit(leader, Value::Of(1, "a")).ok());

  bool migration_done = false, election_done = false;
  Status mig, elec;
  cluster.replica(cluster.NodeInZone(4))
      ->MigrateLeaderZone(4, [&](const Status& st) {
        mig = st;
        migration_done = true;
      });
  Replica* aspirant = cluster.ReplicaInZone(5);
  aspirant->PrimeBallot(cluster.replica(leader)->ballot());
  aspirant->TryBecomeLeader([&](const Status& st) {
    elec = st;
    election_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil(
      [&] { return migration_done && election_done; }, 120 * kSecond));
  cluster.sim().RunFor(3 * kSecond);

  // Decision safety across the race: every slot agrees everywhere.
  std::map<SlotId, uint64_t> canonical;
  for (NodeId n : cluster.topology().AllNodes()) {
    for (const auto& [slot, value] : cluster.replica(n)->decided()) {
      auto [it, inserted] = canonical.emplace(slot, value.id);
      EXPECT_EQ(it->second, value.id) << "slot " << slot;
    }
  }
}

}  // namespace
}  // namespace dpaxos
