# Empty compiler generated dependencies file for vehicular.
# This may be replaced when dependencies are built.
