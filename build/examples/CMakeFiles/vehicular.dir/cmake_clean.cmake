file(REMOVE_RECURSE
  "CMakeFiles/vehicular.dir/vehicular.cpp.o"
  "CMakeFiles/vehicular.dir/vehicular.cpp.o.d"
  "vehicular"
  "vehicular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
