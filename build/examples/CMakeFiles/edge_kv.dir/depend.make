# Empty dependencies file for edge_kv.
# This may be replaced when dependencies are built.
