file(REMOVE_RECURSE
  "CMakeFiles/edge_kv.dir/edge_kv.cpp.o"
  "CMakeFiles/edge_kv.dir/edge_kv.cpp.o.d"
  "edge_kv"
  "edge_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
