# Empty compiler generated dependencies file for collab_docs.
# This may be replaced when dependencies are built.
