file(REMOVE_RECURSE
  "CMakeFiles/collab_docs.dir/collab_docs.cpp.o"
  "CMakeFiles/collab_docs.dir/collab_docs.cpp.o.d"
  "collab_docs"
  "collab_docs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collab_docs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
