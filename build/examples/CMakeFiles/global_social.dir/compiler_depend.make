# Empty compiler generated dependencies file for global_social.
# This may be replaced when dependencies are built.
