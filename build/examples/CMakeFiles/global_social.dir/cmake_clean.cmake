file(REMOVE_RECURSE
  "CMakeFiles/global_social.dir/global_social.cpp.o"
  "CMakeFiles/global_social.dir/global_social.cpp.o.d"
  "global_social"
  "global_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
