# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vehicular "/root/repo/build/examples/vehicular")
set_tests_properties(example_vehicular PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_edge_kv "/root/repo/build/examples/edge_kv")
set_tests_properties(example_edge_kv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_collab_docs "/root/repo/build/examples/collab_docs")
set_tests_properties(example_collab_docs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_global_social "/root/repo/build/examples/global_social")
set_tests_properties(example_global_social PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
