file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_leader_election.dir/bench_fig9_leader_election.cc.o"
  "CMakeFiles/bench_fig9_leader_election.dir/bench_fig9_leader_election.cc.o.d"
  "bench_fig9_leader_election"
  "bench_fig9_leader_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
