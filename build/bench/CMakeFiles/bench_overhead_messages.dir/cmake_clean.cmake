file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_messages.dir/bench_overhead_messages.cc.o"
  "CMakeFiles/bench_overhead_messages.dir/bench_overhead_messages.cc.o.d"
  "bench_overhead_messages"
  "bench_overhead_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
