file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_intents.dir/bench_ablation_intents.cc.o"
  "CMakeFiles/bench_ablation_intents.dir/bench_ablation_intents.cc.o.d"
  "bench_ablation_intents"
  "bench_ablation_intents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
