# Empty dependencies file for bench_ablation_intents.
# This may be replaced when dependencies are built.
