# Empty dependencies file for bench_fig10b_remote_requests.
# This may be replaced when dependencies are built.
