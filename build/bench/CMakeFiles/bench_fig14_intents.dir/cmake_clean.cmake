file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_intents.dir/bench_fig14_intents.cc.o"
  "CMakeFiles/bench_fig14_intents.dir/bench_fig14_intents.cc.o.d"
  "bench_fig14_intents"
  "bench_fig14_intents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_intents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
