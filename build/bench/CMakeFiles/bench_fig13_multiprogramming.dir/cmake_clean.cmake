file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_multiprogramming.dir/bench_fig13_multiprogramming.cc.o"
  "CMakeFiles/bench_fig13_multiprogramming.dir/bench_fig13_multiprogramming.cc.o.d"
  "bench_fig13_multiprogramming"
  "bench_fig13_multiprogramming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_multiprogramming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
