# Empty dependencies file for bench_scalability_zones.
# This may be replaced when dependencies are built.
