file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_zones.dir/bench_scalability_zones.cc.o"
  "CMakeFiles/bench_scalability_zones.dir/bench_scalability_zones.cc.o.d"
  "bench_scalability_zones"
  "bench_scalability_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
