# Empty dependencies file for bench_fig12_read_leases.
# This may be replaced when dependencies are built.
