file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_read_leases.dir/bench_fig12_read_leases.cc.o"
  "CMakeFiles/bench_fig12_read_leases.dir/bench_fig12_read_leases.cc.o.d"
  "bench_fig12_read_leases"
  "bench_fig12_read_leases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_read_leases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
