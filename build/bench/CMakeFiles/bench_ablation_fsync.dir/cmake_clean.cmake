file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fsync.dir/bench_ablation_fsync.cc.o"
  "CMakeFiles/bench_ablation_fsync.dir/bench_ablation_fsync.cc.o.d"
  "bench_ablation_fsync"
  "bench_ablation_fsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
