# Empty dependencies file for bench_ablation_fsync.
# This may be replaced when dependencies are built.
