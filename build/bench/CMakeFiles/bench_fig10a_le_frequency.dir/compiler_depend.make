# Empty compiler generated dependencies file for bench_fig10a_le_frequency.
# This may be replaced when dependencies are built.
