file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_le_frequency.dir/bench_fig10a_le_frequency.cc.o"
  "CMakeFiles/bench_fig10a_le_frequency.dir/bench_fig10a_le_frequency.cc.o.d"
  "bench_fig10a_le_frequency"
  "bench_fig10a_le_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_le_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
