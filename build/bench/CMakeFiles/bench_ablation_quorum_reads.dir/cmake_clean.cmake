file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quorum_reads.dir/bench_ablation_quorum_reads.cc.o"
  "CMakeFiles/bench_ablation_quorum_reads.dir/bench_ablation_quorum_reads.cc.o.d"
  "bench_ablation_quorum_reads"
  "bench_ablation_quorum_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quorum_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
