# Empty dependencies file for bench_ablation_quorum_reads.
# This may be replaced when dependencies are built.
