file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_replication.dir/bench_fig8_replication.cc.o"
  "CMakeFiles/bench_fig8_replication.dir/bench_fig8_replication.cc.o.d"
  "bench_fig8_replication"
  "bench_fig8_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
