# Empty compiler generated dependencies file for dpaxos_placement.
# This may be replaced when dependencies are built.
