file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_placement.dir/placement.cc.o"
  "CMakeFiles/dpaxos_placement.dir/placement.cc.o.d"
  "libdpaxos_placement.a"
  "libdpaxos_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
