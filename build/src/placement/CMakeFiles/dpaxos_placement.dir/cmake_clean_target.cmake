file(REMOVE_RECURSE
  "libdpaxos_placement.a"
)
