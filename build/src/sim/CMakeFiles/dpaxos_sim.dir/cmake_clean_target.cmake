file(REMOVE_RECURSE
  "libdpaxos_sim.a"
)
