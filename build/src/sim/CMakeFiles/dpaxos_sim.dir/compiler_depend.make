# Empty compiler generated dependencies file for dpaxos_sim.
# This may be replaced when dependencies are built.
