file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_sim.dir/simulator.cc.o"
  "CMakeFiles/dpaxos_sim.dir/simulator.cc.o.d"
  "libdpaxos_sim.a"
  "libdpaxos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
