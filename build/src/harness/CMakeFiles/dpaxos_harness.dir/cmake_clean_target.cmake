file(REMOVE_RECURSE
  "libdpaxos_harness.a"
)
