# Empty dependencies file for dpaxos_harness.
# This may be replaced when dependencies are built.
