file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_harness.dir/cluster.cc.o"
  "CMakeFiles/dpaxos_harness.dir/cluster.cc.o.d"
  "CMakeFiles/dpaxos_harness.dir/load_driver.cc.o"
  "CMakeFiles/dpaxos_harness.dir/load_driver.cc.o.d"
  "CMakeFiles/dpaxos_harness.dir/table.cc.o"
  "CMakeFiles/dpaxos_harness.dir/table.cc.o.d"
  "libdpaxos_harness.a"
  "libdpaxos_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
