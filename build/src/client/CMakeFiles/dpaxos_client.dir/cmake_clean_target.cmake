file(REMOVE_RECURSE
  "libdpaxos_client.a"
)
