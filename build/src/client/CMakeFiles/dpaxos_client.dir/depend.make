# Empty dependencies file for dpaxos_client.
# This may be replaced when dependencies are built.
