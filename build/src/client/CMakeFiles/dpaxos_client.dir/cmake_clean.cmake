file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_client.dir/client.cc.o"
  "CMakeFiles/dpaxos_client.dir/client.cc.o.d"
  "libdpaxos_client.a"
  "libdpaxos_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
