file(REMOVE_RECURSE
  "libdpaxos_quorum.a"
)
