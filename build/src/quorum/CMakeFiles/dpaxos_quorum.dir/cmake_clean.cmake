file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_quorum.dir/quorum_rule.cc.o"
  "CMakeFiles/dpaxos_quorum.dir/quorum_rule.cc.o.d"
  "CMakeFiles/dpaxos_quorum.dir/quorum_system.cc.o"
  "CMakeFiles/dpaxos_quorum.dir/quorum_system.cc.o.d"
  "libdpaxos_quorum.a"
  "libdpaxos_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
