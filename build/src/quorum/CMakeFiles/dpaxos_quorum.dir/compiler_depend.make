# Empty compiler generated dependencies file for dpaxos_quorum.
# This may be replaced when dependencies are built.
