file(REMOVE_RECURSE
  "libdpaxos_smr.a"
)
