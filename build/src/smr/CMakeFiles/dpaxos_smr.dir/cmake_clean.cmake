file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_smr.dir/kv_store.cc.o"
  "CMakeFiles/dpaxos_smr.dir/kv_store.cc.o.d"
  "CMakeFiles/dpaxos_smr.dir/log_applier.cc.o"
  "CMakeFiles/dpaxos_smr.dir/log_applier.cc.o.d"
  "libdpaxos_smr.a"
  "libdpaxos_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
