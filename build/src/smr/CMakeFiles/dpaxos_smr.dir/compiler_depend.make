# Empty compiler generated dependencies file for dpaxos_smr.
# This may be replaced when dependencies are built.
