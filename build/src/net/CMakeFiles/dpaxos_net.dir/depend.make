# Empty dependencies file for dpaxos_net.
# This may be replaced when dependencies are built.
