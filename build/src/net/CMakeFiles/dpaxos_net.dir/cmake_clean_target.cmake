file(REMOVE_RECURSE
  "libdpaxos_net.a"
)
