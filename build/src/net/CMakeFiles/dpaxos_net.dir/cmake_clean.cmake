file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_net.dir/topology.cc.o"
  "CMakeFiles/dpaxos_net.dir/topology.cc.o.d"
  "CMakeFiles/dpaxos_net.dir/transport.cc.o"
  "CMakeFiles/dpaxos_net.dir/transport.cc.o.d"
  "libdpaxos_net.a"
  "libdpaxos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
