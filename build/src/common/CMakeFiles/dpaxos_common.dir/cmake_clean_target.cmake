file(REMOVE_RECURSE
  "libdpaxos_common.a"
)
