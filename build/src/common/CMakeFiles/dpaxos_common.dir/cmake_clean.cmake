file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_common.dir/histogram.cc.o"
  "CMakeFiles/dpaxos_common.dir/histogram.cc.o.d"
  "CMakeFiles/dpaxos_common.dir/logging.cc.o"
  "CMakeFiles/dpaxos_common.dir/logging.cc.o.d"
  "CMakeFiles/dpaxos_common.dir/status.cc.o"
  "CMakeFiles/dpaxos_common.dir/status.cc.o.d"
  "CMakeFiles/dpaxos_common.dir/types.cc.o"
  "CMakeFiles/dpaxos_common.dir/types.cc.o.d"
  "libdpaxos_common.a"
  "libdpaxos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
