# Empty dependencies file for dpaxos_common.
# This may be replaced when dependencies are built.
