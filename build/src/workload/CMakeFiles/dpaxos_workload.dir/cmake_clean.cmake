file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_workload.dir/oltp.cc.o"
  "CMakeFiles/dpaxos_workload.dir/oltp.cc.o.d"
  "libdpaxos_workload.a"
  "libdpaxos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
