# Empty compiler generated dependencies file for dpaxos_workload.
# This may be replaced when dependencies are built.
