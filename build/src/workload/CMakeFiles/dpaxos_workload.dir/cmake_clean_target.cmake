file(REMOVE_RECURSE
  "libdpaxos_workload.a"
)
