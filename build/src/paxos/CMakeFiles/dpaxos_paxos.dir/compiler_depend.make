# Empty compiler generated dependencies file for dpaxos_paxos.
# This may be replaced when dependencies are built.
