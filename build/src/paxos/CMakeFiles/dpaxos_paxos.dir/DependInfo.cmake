
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paxos/acceptor.cc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/acceptor.cc.o" "gcc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/acceptor.cc.o.d"
  "/root/repo/src/paxos/garbage_collector.cc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/garbage_collector.cc.o" "gcc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/garbage_collector.cc.o.d"
  "/root/repo/src/paxos/node_host.cc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/node_host.cc.o" "gcc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/node_host.cc.o.d"
  "/root/repo/src/paxos/replica.cc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/replica.cc.o" "gcc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/replica.cc.o.d"
  "/root/repo/src/paxos/wire.cc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/wire.cc.o" "gcc" "src/paxos/CMakeFiles/dpaxos_paxos.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpaxos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpaxos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpaxos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/dpaxos_quorum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
