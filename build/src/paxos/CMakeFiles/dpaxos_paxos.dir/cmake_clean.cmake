file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_paxos.dir/acceptor.cc.o"
  "CMakeFiles/dpaxos_paxos.dir/acceptor.cc.o.d"
  "CMakeFiles/dpaxos_paxos.dir/garbage_collector.cc.o"
  "CMakeFiles/dpaxos_paxos.dir/garbage_collector.cc.o.d"
  "CMakeFiles/dpaxos_paxos.dir/node_host.cc.o"
  "CMakeFiles/dpaxos_paxos.dir/node_host.cc.o.d"
  "CMakeFiles/dpaxos_paxos.dir/replica.cc.o"
  "CMakeFiles/dpaxos_paxos.dir/replica.cc.o.d"
  "CMakeFiles/dpaxos_paxos.dir/wire.cc.o"
  "CMakeFiles/dpaxos_paxos.dir/wire.cc.o.d"
  "libdpaxos_paxos.a"
  "libdpaxos_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
