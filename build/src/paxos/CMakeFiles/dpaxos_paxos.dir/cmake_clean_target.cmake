file(REMOVE_RECURSE
  "libdpaxos_paxos.a"
)
