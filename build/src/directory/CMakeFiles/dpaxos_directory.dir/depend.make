# Empty dependencies file for dpaxos_directory.
# This may be replaced when dependencies are built.
