file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_directory.dir/sharded_store.cc.o"
  "CMakeFiles/dpaxos_directory.dir/sharded_store.cc.o.d"
  "libdpaxos_directory.a"
  "libdpaxos_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
