file(REMOVE_RECURSE
  "libdpaxos_directory.a"
)
