file(REMOVE_RECURSE
  "libdpaxos_reconfig.a"
)
