# Empty compiler generated dependencies file for dpaxos_reconfig.
# This may be replaced when dependencies are built.
