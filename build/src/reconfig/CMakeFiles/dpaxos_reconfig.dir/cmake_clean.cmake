file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_reconfig.dir/reconfigurable_group.cc.o"
  "CMakeFiles/dpaxos_reconfig.dir/reconfigurable_group.cc.o.d"
  "libdpaxos_reconfig.a"
  "libdpaxos_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
