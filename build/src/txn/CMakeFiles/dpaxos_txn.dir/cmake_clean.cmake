file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_txn.dir/transaction.cc.o"
  "CMakeFiles/dpaxos_txn.dir/transaction.cc.o.d"
  "libdpaxos_txn.a"
  "libdpaxos_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
