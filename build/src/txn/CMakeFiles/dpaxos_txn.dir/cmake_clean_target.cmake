file(REMOVE_RECURSE
  "libdpaxos_txn.a"
)
