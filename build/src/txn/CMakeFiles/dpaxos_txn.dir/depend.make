# Empty dependencies file for dpaxos_txn.
# This may be replaced when dependencies are built.
