# Empty dependencies file for view_intent_test.
# This may be replaced when dependencies are built.
