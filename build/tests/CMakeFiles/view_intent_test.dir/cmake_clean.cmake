file(REMOVE_RECURSE
  "CMakeFiles/view_intent_test.dir/view_intent_test.cc.o"
  "CMakeFiles/view_intent_test.dir/view_intent_test.cc.o.d"
  "view_intent_test"
  "view_intent_test.pdb"
  "view_intent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_intent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
