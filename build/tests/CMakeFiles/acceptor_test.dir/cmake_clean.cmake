file(REMOVE_RECURSE
  "CMakeFiles/acceptor_test.dir/acceptor_test.cc.o"
  "CMakeFiles/acceptor_test.dir/acceptor_test.cc.o.d"
  "acceptor_test"
  "acceptor_test.pdb"
  "acceptor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acceptor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
