# Empty compiler generated dependencies file for acceptor_test.
# This may be replaced when dependencies are built.
