file(REMOVE_RECURSE
  "CMakeFiles/node_host_test.dir/node_host_test.cc.o"
  "CMakeFiles/node_host_test.dir/node_host_test.cc.o.d"
  "node_host_test"
  "node_host_test.pdb"
  "node_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
