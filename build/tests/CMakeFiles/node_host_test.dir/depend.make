# Empty dependencies file for node_host_test.
# This may be replaced when dependencies are built.
