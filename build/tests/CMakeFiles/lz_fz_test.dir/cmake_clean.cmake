file(REMOVE_RECURSE
  "CMakeFiles/lz_fz_test.dir/lz_fz_test.cc.o"
  "CMakeFiles/lz_fz_test.dir/lz_fz_test.cc.o.d"
  "lz_fz_test"
  "lz_fz_test.pdb"
  "lz_fz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_fz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
