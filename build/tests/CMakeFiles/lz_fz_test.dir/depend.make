# Empty dependencies file for lz_fz_test.
# This may be replaced when dependencies are built.
