file(REMOVE_RECURSE
  "CMakeFiles/lz_migration_test.dir/lz_migration_test.cc.o"
  "CMakeFiles/lz_migration_test.dir/lz_migration_test.cc.o.d"
  "lz_migration_test"
  "lz_migration_test.pdb"
  "lz_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lz_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
