# Empty dependencies file for lz_migration_test.
# This may be replaced when dependencies are built.
