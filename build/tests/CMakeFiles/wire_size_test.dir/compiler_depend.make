# Empty compiler generated dependencies file for wire_size_test.
# This may be replaced when dependencies are built.
