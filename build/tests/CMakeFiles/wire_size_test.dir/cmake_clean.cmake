file(REMOVE_RECURSE
  "CMakeFiles/wire_size_test.dir/wire_size_test.cc.o"
  "CMakeFiles/wire_size_test.dir/wire_size_test.cc.o.d"
  "wire_size_test"
  "wire_size_test.pdb"
  "wire_size_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_size_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
