file(REMOVE_RECURSE
  "CMakeFiles/replica_basic_test.dir/replica_basic_test.cc.o"
  "CMakeFiles/replica_basic_test.dir/replica_basic_test.cc.o.d"
  "replica_basic_test"
  "replica_basic_test.pdb"
  "replica_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
