# Empty dependencies file for replica_basic_test.
# This may be replaced when dependencies are built.
