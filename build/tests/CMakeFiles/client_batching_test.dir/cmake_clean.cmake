file(REMOVE_RECURSE
  "CMakeFiles/client_batching_test.dir/client_batching_test.cc.o"
  "CMakeFiles/client_batching_test.dir/client_batching_test.cc.o.d"
  "client_batching_test"
  "client_batching_test.pdb"
  "client_batching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_batching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
