# Empty compiler generated dependencies file for client_batching_test.
# This may be replaced when dependencies are built.
