file(REMOVE_RECURSE
  "CMakeFiles/quorum_lease_test.dir/quorum_lease_test.cc.o"
  "CMakeFiles/quorum_lease_test.dir/quorum_lease_test.cc.o.d"
  "quorum_lease_test"
  "quorum_lease_test.pdb"
  "quorum_lease_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_lease_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
