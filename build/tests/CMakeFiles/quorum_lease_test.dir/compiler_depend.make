# Empty compiler generated dependencies file for quorum_lease_test.
# This may be replaced when dependencies are built.
