
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/smr_test.cc" "tests/CMakeFiles/smr_test.dir/smr_test.cc.o" "gcc" "tests/CMakeFiles/smr_test.dir/smr_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dpaxos_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/dpaxos_client.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/dpaxos_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/directory/CMakeFiles/dpaxos_directory.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/dpaxos_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/paxos/CMakeFiles/dpaxos_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/smr/CMakeFiles/dpaxos_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/dpaxos_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dpaxos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/dpaxos_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpaxos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpaxos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpaxos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
