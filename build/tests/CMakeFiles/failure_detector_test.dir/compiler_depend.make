# Empty compiler generated dependencies file for failure_detector_test.
# This may be replaced when dependencies are built.
