# Empty compiler generated dependencies file for quorum_rule_oracle_test.
# This may be replaced when dependencies are built.
