file(REMOVE_RECURSE
  "CMakeFiles/quorum_rule_oracle_test.dir/quorum_rule_oracle_test.cc.o"
  "CMakeFiles/quorum_rule_oracle_test.dir/quorum_rule_oracle_test.cc.o.d"
  "quorum_rule_oracle_test"
  "quorum_rule_oracle_test.pdb"
  "quorum_rule_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_rule_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
