# Empty compiler generated dependencies file for handoff_test.
# This may be replaced when dependencies are built.
