file(REMOVE_RECURSE
  "CMakeFiles/dpaxos_cli.dir/dpaxos_cli.cc.o"
  "CMakeFiles/dpaxos_cli.dir/dpaxos_cli.cc.o.d"
  "dpaxos_cli"
  "dpaxos_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpaxos_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
