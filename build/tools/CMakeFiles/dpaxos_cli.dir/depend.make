# Empty dependencies file for dpaxos_cli.
# This may be replaced when dependencies are built.
