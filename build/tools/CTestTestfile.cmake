# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_load_smoke "/root/repo/build/tools/dpaxos_cli" "--experiment=load" "--mode=delegate" "--batch=10K" "--duration=2" "--zone=1")
set_tests_properties(cli_load_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_election_smoke "/root/repo/build/tools/dpaxos_cli" "--experiment=election" "--mode=leaderzone")
set_tests_properties(cli_election_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_leaderless_reads "/root/repo/build/tools/dpaxos_cli" "--experiment=load" "--mode=leaderzone" "--reads=0.5" "--duration=2")
set_tests_properties(cli_leaderless_reads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
