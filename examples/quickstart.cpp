// Quickstart: the smallest useful DPaxos program.
//
// Builds the paper's seven-zone edge deployment in the simulator, elects
// a DPaxos leader near the users, commits a few commands, and inspects
// the replicated log — the whole public API surface in ~60 lines.
//
//   $ ./quickstart
#include <iostream>

#include "harness/cluster.h"

using namespace dpaxos;

int main() {
  // 1. A cluster: 7 zones (AWS regions from the paper's Table 1), three
  //    edge nodes each, DPaxos Leader-Zone quorums, tolerate one node
  //    failure per zone (fd=1, fz=0).
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);

  // 2. Users are near California (zone 0): elect that zone's first node.
  Replica* leader = cluster.ReplicaInZone(/*zone=*/0);
  Result<Duration> election = cluster.ElectLeader(leader->id());
  if (!election.ok()) {
    std::cerr << "election failed: " << election.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Elected node " << leader->id() << " in "
            << DurationToString(election.value())
            << " (ballot " << leader->ballot().ToString() << ")\n";
  std::cout << "Replication quorum (intent): ";
  for (NodeId n : leader->declared_intents()[0].quorum) std::cout << n << " ";
  std::cout << "— all inside zone 0, so commits never cross the WAN.\n\n";

  // 3. Commit a handful of commands. Each Commit() drives the simulated
  //    network until the value is decided and reports the commit latency.
  for (uint64_t i = 1; i <= 5; ++i) {
    Result<Duration> commit = cluster.Commit(
        leader->id(), Value::Of(i, "command-" + std::to_string(i)));
    if (!commit.ok()) {
      std::cerr << "commit failed: " << commit.status().ToString() << "\n";
      return 1;
    }
    std::cout << "slot " << (i - 1) << " decided in "
              << DurationToString(commit.value()) << "\n";
  }

  // 4. Read the replicated log back.
  std::cout << "\nDecided log at the leader:\n";
  for (const auto& [slot, value] : leader->decided()) {
    std::cout << "  [" << slot << "] " << value.payload << "\n";
  }

  // 5. The quorum members learned the same decisions (give the last
  //    commit notification time to arrive).
  cluster.sim().RunFor(kSecond);
  const NodeId peer = leader->declared_intents()[0].quorum[1];
  std::cout << "\nPeer node " << peer << " learned "
            << cluster.replica(peer)->decided().size() << " slots.\n";
  return 0;
}
