// Edge key-value store: a partitioned, replicated store built on DPaxos
// as its State Machine Replication component (the paper's intended use).
//
// Three data partitions live where their users are (California, Ireland,
// Singapore). Each commits OLTP transaction batches through its own
// DPaxos instance; every node applies decided batches to a per-partition
// KvStateMachine. The example then injects a node failure, shows commits
// surviving it, runs the intents garbage collector, and verifies that
// all replicas converged to identical state.
//
//   $ ./edge_kv
#include <iostream>
#include <map>
#include <memory>

#include "common/histogram.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "smr/kv_store.h"
#include "smr/log_applier.h"
#include "txn/transaction.h"
#include "workload/oltp.h"

using namespace dpaxos;

int main() {
  // Partition p lives in zone kHomeZone[p].
  const ZoneId kHomeZone[3] = {0, 4, 5};  // California, Ireland, Singapore

  ClusterOptions options;
  options.partitions = {0, 1, 2};
  options.replica.decide_policy = DecidePolicy::kAll;  // full SMR fan-out
  options.replica.num_intents = 2;  // alternate quorum for fast failover
  options.replica.propose_timeout = 300 * kMillisecond;
  options.replica.max_propose_retries = 1;  // fast alternate-intent failover
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);
  const Topology& topo = cluster.topology();

  // One state machine per (node, partition), fed by the decide callbacks.
  std::map<std::pair<NodeId, PartitionId>, std::unique_ptr<KvStateMachine>>
      stores;
  std::map<std::pair<NodeId, PartitionId>, std::unique_ptr<LogApplier>>
      appliers;
  for (NodeId n : topo.AllNodes()) {
    for (PartitionId p : {0u, 1u, 2u}) {
      auto store = std::make_unique<KvStateMachine>();
      auto applier = std::make_unique<LogApplier>(store.get());
      LogApplier* raw = applier.get();
      cluster.replica(n, p)->set_decide_callback(
          [raw](SlotId slot, const Value& value) {
            raw->OnDecided(slot, value);
          });
      stores[{n, p}] = std::move(store);
      appliers[{n, p}] = std::move(applier);
    }
  }

  // Elect each partition's leader in its home zone.
  for (PartitionId p : {0u, 1u, 2u}) {
    const NodeId leader = cluster.NodeInZone(kHomeZone[p]);
    if (!cluster.ElectLeader(leader, p).ok()) {
      std::cerr << "election failed for partition " << p << "\n";
      return 1;
    }
  }

  // Commit OLTP batches on every partition from its own zone.
  std::cout << "Committing 10 x 2KB OLTP batches per partition...\n\n";
  TablePrinter table({"partition", "home zone", "batches", "mean commit"});
  for (PartitionId p : {0u, 1u, 2u}) {
    const NodeId leader = cluster.NodeInZone(kHomeZone[p]);
    OltpGenerator gen(OltpConfig{.num_keys = 10'000}, 100 + p);
    Histogram latency;
    for (int i = 0; i < 10; ++i) {
      const Value batch = Value::Of(
          static_cast<uint64_t>(p) * 1000 + static_cast<uint64_t>(i) + 1,
          EncodeBatch(gen.NextBatch(2048)));
      Result<Duration> commit = cluster.Commit(leader, batch, p);
      if (!commit.ok()) {
        std::cerr << "commit failed: " << commit.status().ToString() << "\n";
        return 1;
      }
      latency.Add(commit.value());
    }
    table.AddRow({std::to_string(p), topo.ZoneName(kHomeZone[p]), "10",
                  Fmt(latency.MeanMillis(), 1) + "ms"});
  }
  table.Print(std::cout);

  // Inject a failure: the California leader's quorum companion dies.
  // With two declared intents the leader fails over without an election.
  const NodeId cal_leader = cluster.NodeInZone(0);
  NodeId companion = kInvalidNode;
  for (NodeId n :
       cluster.replica(cal_leader, 0)->declared_intents()[0].quorum) {
    if (n != cal_leader) companion = n;
  }
  std::cout << "\nCrashing node " << companion
            << " (partition 0's replication-quorum companion)...\n";
  cluster.transport().Crash(companion);
  Result<Duration> failover =
      cluster.Commit(cal_leader, Value::Of(5001, EncodeBatch({})), 0);
  std::cout << "Commit after crash: "
            << (failover.ok() ? "OK in " + DurationToString(failover.value()) +
                                    " (alternate-intent failover)"
                              : failover.status().ToString())
            << "\n";
  cluster.transport().Recover(companion);

  // Garbage-collect stale intents, then verify convergence.
  GarbageCollector* gc = cluster.AddGarbageCollector(1, 0);
  gc->SweepOnce();
  cluster.sim().RunFor(10 * kSecond);

  std::cout << "\nConvergence check (order-independent state checksums):\n";
  bool converged = true;
  for (PartitionId p : {0u, 1u, 2u}) {
    const uint64_t expect = stores[{cluster.NodeInZone(kHomeZone[p]), p}]
                                ->Checksum();
    size_t agree = 0;
    for (NodeId n : topo.AllNodes()) {
      if (stores[{n, p}]->Checksum() == expect) ++agree;
    }
    std::cout << "  partition " << p << ": " << agree << "/"
              << topo.num_nodes() << " replicas identical, "
              << stores[{cluster.NodeInZone(kHomeZone[p]), p}]->size()
              << " keys\n";
    // The crashed-and-recovered node misses decide messages sent while it
    // was down; every node that was up must agree.
    if (agree < topo.num_nodes() - 1) converged = false;
  }
  std::cout << (converged ? "\nAll live replicas converged.\n"
                          : "\nDIVERGENCE DETECTED\n");
  return converged ? 0 : 1;
}
