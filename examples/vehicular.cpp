// Vehicular mobility: the paper's motivating scenario (Section 1).
//
// A vehicle's data partition follows it across the planet. At each hop:
//   - the leader role moves to the vehicle's new zone via Leader Handoff
//     (a single lightweight round, Section 4.4),
//   - the Leader Zone migrates along (Section 4.3.2), so future failure
//     recoveries are local too,
//   - commits keep completing at intra-zone latency from wherever the
//     vehicle currently is.
//
//   $ ./vehicular
#include <iostream>
#include <optional>

#include "harness/cluster.h"
#include "harness/table.h"
#include "workload/mobility.h"

using namespace dpaxos;

namespace {

// Drive the simulation until an asynchronous call reports its status.
Status Await(Cluster& cluster, const std::function<void(
                                   Replica::StatusCallback)>& start) {
  std::optional<Status> result;
  start([&](const Status& st) { result = st; });
  while (!result.has_value() && cluster.sim().Step()) {
  }
  return result.value_or(Status::TimedOut("no progress"));
}

}  // namespace

int main() {
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone);
  const Topology& topo = cluster.topology();

  // The vehicle's route: California -> Oregon -> Virginia -> Ireland ->
  // Mumbai, dwelling 30 virtual seconds in each zone.
  const MobilitySchedule route =
      MobilitySchedule::Tour({0, 1, 2, 4, 6}, 30 * kSecond);

  NodeId leader = cluster.NodeInZone(route.ZoneAt(0));
  if (Result<Duration> r = cluster.ElectLeader(leader); !r.ok()) {
    std::cerr << "initial election failed\n";
    return 1;
  }

  std::cout << "Vehicle route with leadership following via Leader "
               "Handoff + Leader Zone migration:\n\n";
  TablePrinter table({"zone", "handoff (ms)", "LZ migration (ms)",
                      "re-home (ms)", "commit from vehicle (ms)"});

  uint64_t value_id = 0;
  for (const MobilitySchedule::Segment& seg : route.segments()) {
    if (seg.start > cluster.sim().Now()) cluster.sim().RunUntil(seg.start);
    const ZoneId zone = seg.zone;
    double handoff_ms = 0, migrate_ms = 0, rehome_ms = 0;

    if (topo.ZoneOf(leader) != zone) {
      // 1. Pull the leader role to the vehicle's new zone: one round to
      //    the old leader, no Leader Election.
      const NodeId next = cluster.NodeInZone(zone);
      Timestamp t0 = cluster.sim().Now();
      Status st = Await(cluster, [&](Replica::StatusCallback cb) {
        cluster.replica(next)->RequestHandoffFrom(leader, std::move(cb));
      });
      if (!st.ok()) {
        std::cerr << "handoff failed: " << st.ToString() << "\n";
        return 1;
      }
      handoff_ms = ToMillis(cluster.sim().Now() - t0);
      leader = next;

      // 2. Migrate the Leader Zone so future elections are local too.
      t0 = cluster.sim().Now();
      st = Await(cluster, [&](Replica::StatusCallback cb) {
        cluster.replica(leader)->MigrateLeaderZone(zone, std::move(cb));
      });
      if (!st.ok()) {
        std::cerr << "migration failed: " << st.ToString() << "\n";
        return 1;
      }
      migrate_ms = ToMillis(cluster.sim().Now() - t0);

      // 3. Re-home the replication quorum: a handoff recipient is
      //    restricted to the relinquished intents (still back in the old
      //    zone), so one fresh — now local — election declares an intent
      //    in the vehicle's zone and restores intra-zone commit latency.
      t0 = cluster.sim().Now();
      st = Await(cluster, [&](Replica::StatusCallback cb) {
        cluster.replica(leader)->RefreshLeadership(std::move(cb));
      });
      if (!st.ok()) {
        std::cerr << "re-home failed: " << st.ToString() << "\n";
        return 1;
      }
      rehome_ms = ToMillis(cluster.sim().Now() - t0);
    }

    // 4. The vehicle commits telemetry from its current zone.
    Result<Duration> commit = cluster.Commit(
        leader, Value::Of(++value_id, "telemetry@" + topo.ZoneName(zone)));
    if (!commit.ok()) {
      std::cerr << "commit failed: " << commit.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({topo.ZoneName(zone), Fmt(handoff_ms, 1),
                  Fmt(migrate_ms, 1), Fmt(rehome_ms, 1),
                  Fmt(ToMillis(commit.value()), 1)});
  }
  table.Print(std::cout);

  std::cout << "\nTotal elections ever run: ";
  uint64_t elections = 0;
  for (NodeId n : topo.AllNodes()) {
    elections += cluster.replica(n)->elections_won();
  }
  std::cout << elections
            << " (bootstrap + one local re-home per hop; control moved "
               "via handoffs)\n";
  std::cout << "Final log length: "
            << cluster.replica(leader)->next_slot() << " slots, contiguous "
            << cluster.replica(leader)->DecidedWatermark() << "\n";
  return 0;
}
