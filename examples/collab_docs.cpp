// Collaborative documents: a read-heavy web application on DPaxos.
//
// A document partition is replicated in its authors' zone. Editors
// (writers) commit small updates through consensus; viewers (readers)
// are served locally at the leader under the master lease (Section 4.5)
// in under a millisecond, never paying the Replication round. A remote
// co-author on another continent works through forwarding; the example
// finishes by showing what happens to the read path when the lease
// lapses.
//
//   $ ./collab_docs
#include <iostream>

#include "client/client.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "smr/kv_store.h"
#include "smr/log_applier.h"

using namespace dpaxos;

namespace {

Transaction Edit(uint64_t id, const std::string& doc,
                 const std::string& content) {
  Transaction txn;
  txn.id = id;
  txn.ops = {Operation::Put(doc, content)};
  return txn;
}

Transaction View(uint64_t id, const std::string& doc) {
  Transaction txn;
  txn.id = id;
  txn.ops = {Operation::Get(doc)};
  return txn;
}

}  // namespace

int main() {
  ClusterOptions options;
  options.replica.enable_leases = true;
  options.replica.lease_duration = 5 * kSecond;
  options.replica.decide_policy = DecidePolicy::kZone;
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  options);

  // The document lives in Ireland (zone 4) where most authors are.
  const ZoneId home = 4;
  Replica* leader = cluster.ReplicaInZone(home);
  if (!cluster.ElectLeader(leader->id()).ok()) return 1;

  // Apply decided updates into the document store at the leader.
  KvStateMachine docs;
  LogApplier applier(&docs);
  leader->set_decide_callback([&](SlotId s, const Value& v) {
    applier.OnDecided(s, v);
  });

  Client author(&cluster.sim(), leader);                      // Ireland
  Replica* tokyo_access = cluster.ReplicaInZone(3);           // Tokyo
  tokyo_access->set_leader_hint(leader->id());
  Client coauthor(&cluster.sim(), tokyo_access);

  uint64_t id = 0;
  auto await = [&](Client& c, auto&&... args) {
    bool done = false;
    Duration latency = 0;
    c.Execute(std::forward<decltype(args)>(args)...,
              [&](const Status& st, Duration lat) {
                if (!st.ok()) {
                  std::cerr << "request failed: " << st.ToString() << "\n";
                  std::abort();
                }
                latency = lat;
                done = true;
              });
    while (!done && cluster.sim().Step()) {
    }
    return latency;
  };

  std::cout << "Document home: " << cluster.topology().ZoneName(home)
            << " (leader node " << leader->id() << ", lease-protected)\n\n";

  TablePrinter table({"action", "who", "latency"});
  // Local author edits: intra-zone replication only.
  table.AddRow({"edit 'design-doc'", "author (Ireland)",
                DurationToString(await(author, Edit(++id, "design-doc",
                                                    "v1: DPaxos rocks")))});
  // Remote co-author edits: forwarded to the Irish leader.
  table.AddRow({"edit 'design-doc'", "co-author (Tokyo)",
                DurationToString(await(coauthor, Edit(++id, "design-doc",
                                                      "v2: +edge quorums")))});

  // Viewers: lease-local reads at the leader, sub-millisecond.
  Histogram reads;
  for (int i = 0; i < 50; ++i) {
    bool done = false;
    author.ExecuteReadOnly(View(++id, "design-doc"),
                           [&](const Status&, Duration lat) {
                             reads.Add(lat);
                             done = true;
                           });
    while (!done && cluster.sim().Step()) {
    }
  }
  table.AddRow({"view x50 (lease-local)", "viewers (Ireland)",
                DurationToString(reads.Percentile(50))});
  table.Print(std::cout);

  std::cout << "\nLocal reads served under lease: " << author.local_reads()
            << "/50, writes committed: "
            << author.committed() - author.local_reads() +
                   coauthor.committed()
            << "\n";
  std::cout << "Document content now: '"
            << docs.Get("design-doc").value_or("<missing>") << "'\n";

  // Let the lease lapse (no writes renew it): the next read falls back to
  // the consensus path — slower, still linearizable.
  cluster.sim().RunFor(6 * kSecond);
  std::cout << "\nLease expired (no writes for 6s). Leader can serve local "
               "reads: "
            << (leader->CanServeLocalRead() ? "yes" : "no") << "\n";
  bool done = false;
  Duration slow_read = 0;
  author.ExecuteReadOnly(View(++id, "design-doc"),
                         [&](const Status&, Duration lat) {
                           slow_read = lat;
                           done = true;
                         });
  while (!done && cluster.sim().Step()) {
  }
  std::cout << "Read without lease (via consensus): "
            << DurationToString(slow_read)
            << " — and this accept round re-established the lease: "
            << (leader->CanServeLocalRead() ? "yes" : "no") << "\n";
  return 0;
}
