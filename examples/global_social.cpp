// Global social app: many users, many objects, leaders everywhere.
//
// User profiles hash onto partitions of a ShardedStore; each partition's
// DPaxos leader lives where that profile is actually accessed, and
// *moves* (WPaxos-style object stealing, paper Section B.1) when its
// access locality shifts — no operator involved. The example simulates
// three user communities (California, Ireland, Tokyo) posting to their
// own profiles, then one community "going viral" in another region.
//
//   $ ./global_social
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "directory/sharded_store.h"
#include "harness/cluster.h"
#include "harness/table.h"
#include "workload/oltp.h"

using namespace dpaxos;

namespace {

Transaction Post(uint64_t id, const std::string& profile,
                 const std::string& text) {
  Transaction txn;
  txn.id = id;
  txn.ops = {Operation::Put(profile, text)};
  return txn;
}

}  // namespace

int main() {
  constexpr uint32_t kPartitions = 6;
  ClusterOptions cluster_options;
  cluster_options.partitions.clear();
  for (uint32_t p = 0; p < kPartitions; ++p) {
    cluster_options.partitions.push_back(p);
  }
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  cluster_options);

  ShardedStore::Options store_options;
  store_options.num_partitions = kPartitions;
  store_options.stats_half_life = 20 * kSecond;
  ShardedStore store(
      &cluster.sim(), &cluster.topology(),
      [&cluster](NodeId n, PartitionId p) { return cluster.replica(n, p); },
      store_options);

  auto post = [&](const std::string& profile, ZoneId zone,
                  uint64_t id) -> Duration {
    std::optional<Status> done;
    Duration latency = 0;
    store.Execute(Post(id, profile, "post #" + std::to_string(id)), zone,
                  [&](const Status& st, Duration lat) {
                    if (!st.ok()) {
                      std::cerr << "post failed: " << st.ToString() << "\n";
                      std::abort();
                    }
                    done = st;
                    latency = lat;
                  });
    while (!done.has_value() && cluster.sim().Step()) {
    }
    return latency;
  };

  // Three communities, each hammering its own profiles from home. Pick
  // profile names that hash to three DISTINCT partitions so each
  // community drives its own leader.
  struct Community {
    std::string profile;
    ZoneId zone;
  };
  const char* kNames[] = {"alice", "aoife", "akira",  "amara",
                          "ananya", "astrid", "ayumi", "amelie"};
  const ZoneId kZones[] = {0, 4, 3};  // California, Ireland, Tokyo
  std::vector<Community> communities;
  std::set<PartitionId> used;
  for (const char* name : kNames) {
    if (communities.size() == 3) break;
    const std::string profile = std::string("profile:") + name;
    if (used.insert(store.PartitionOf(profile)).second) {
      communities.push_back({profile, kZones[communities.size()]});
    }
  }

  std::cout << "Phase 1 — home traffic (each profile accessed from its "
               "community):\n\n";
  TablePrinter phase1({"profile", "community", "partition",
                       "1st post (claims)", "steady post"});
  uint64_t id = 0;
  for (const Community& c : communities) {
    const Duration first = post(c.profile, c.zone, ++id);
    Duration steady = 0;
    for (int i = 0; i < 4; ++i) {
      cluster.sim().RunFor(kSecond);
      steady = post(c.profile, c.zone, ++id);
    }
    phase1.AddRow({c.profile, cluster.topology().ZoneName(c.zone),
                   std::to_string(store.PartitionOf(c.profile)),
                   DurationToString(first), DurationToString(steady)});
  }
  phase1.Print(std::cout);
  std::cout << "\nEach partition's leader settled in its community's zone; "
               "steady posts are intra-zone (~11 ms).\n";

  const std::string viral = communities[0].profile;
  const std::string other1 = communities[1].profile;
  const std::string other2 = communities[2].profile;
  // The first community's star goes viral in Mumbai: the partition
  // follows the new audience.
  std::cout << "\nPhase 2 — " << viral << " goes viral in Mumbai:\n\n";
  TablePrinter phase2({"post#", "from", "latency", "partition leader zone"});
  for (int i = 1; i <= 10; ++i) {
    cluster.sim().RunFor(2 * kSecond);
    const Duration lat = post(viral, 6, ++id);
    if (i <= 3 || i >= 8) {
      const ZoneId lz = cluster.topology().ZoneOf(
          store.LeaderOf(store.PartitionOf(viral)));
      phase2.AddRow({std::to_string(i), "Mumbai", DurationToString(lat),
                     cluster.topology().ZoneName(lz)});
    }
  }
  phase2.Print(std::cout);
  std::cout << "\nThe placement advisor stole the partition to Mumbai once "
               "the shift was sustained\n(total steals: "
            << store.steals() << " across " << kPartitions
            << " partitions).\n";

  // The other communities were untouched.
  std::cout << "\nOther profiles stayed home: " << other1 << " -> "
            << cluster.topology().ZoneName(cluster.topology().ZoneOf(
                   store.LeaderOf(store.PartitionOf(other1))))
            << ", " << other2 << " -> "
            << cluster.topology().ZoneName(cluster.topology().ZoneOf(
                   store.LeaderOf(store.PartitionOf(other2))))
            << "\n";
  return 0;
}
