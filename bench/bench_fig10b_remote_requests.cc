// Figure 10(b): commit latency with remote requests. The DPaxos leader is
// in California; 0% / 50% / 100% of requests originate at a remote zone
// (the x-axis) and are forwarded to the leader, which replies to the
// client after commitment. Leaderless Paxos serves every request at its
// origin with a majority Replication round.
//
// Paper shapes to reproduce: DPaxos 0% = 12 ms; remote requests pay the
// client-leader RTT on top (up to 260 ms from Mumbai); leaderless is
// ~152 ms when local to California and 91-282 ms at the remote origins;
// leaderless wins only in the 100%-remote Mumbai case.
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

constexpr int kRequestsPerPoint = 20;
constexpr uint64_t kBatchBytes = 1024;

// Mean end-to-end latency when `remote_percent` of requests originate at
// `remote_zone` and the DPaxos leader sits in California. A remote
// request is forwarded to the leader through the real transport
// (ForwardMsg/ForwardReplyMsg), commits, and the reply returns to the
// origin replica.
double MeasureDPaxos(Cluster& cluster, NodeId leader, ZoneId remote_zone,
                     int remote_percent) {
  Replica* origin = cluster.replica(cluster.NodeInZone(remote_zone, 2));
  origin->set_leader_hint(leader);

  Histogram latency;
  static uint64_t id = 1'000'000;  // distinct value ids across calls
  int accumulated = 0;
  for (int i = 0; i < kRequestsPerPoint; ++i) {
    accumulated += remote_percent;
    const bool remote = accumulated >= 100;
    if (remote) accumulated -= 100;
    bool done = false;
    Duration sample = 0;
    Replica* entry = remote ? origin : cluster.replica(leader);
    entry->SubmitOrForward(Value::Synthetic(++id, kBatchBytes),
                           [&](const Status& st, SlotId, Duration lat) {
                             if (!st.ok()) {
                               std::cerr << "FATAL: " << st.ToString() << "\n";
                               std::abort();
                             }
                             sample = lat;
                             done = true;
                           });
    while (!done && cluster.sim().Step()) {
    }
    latency.Add(sample);
  }
  return latency.MeanMillis();
}

// Leaderless: requests are served at their origin; remote ones commit
// from the remote zone directly (majority round from there).
double MeasureLeaderless(ZoneId remote_zone, int remote_percent) {
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderless);
  Histogram latency;
  uint64_t id = 0;
  int accumulated = 0;
  for (int i = 0; i < kRequestsPerPoint; ++i) {
    accumulated += remote_percent;
    const bool remote = accumulated >= 100;
    if (remote) accumulated -= 100;
    const NodeId origin =
        remote ? cluster->NodeInZone(remote_zone, 2) : cluster->NodeInZone(0);
    Result<Duration> commit =
        cluster->Commit(origin, Value::Synthetic(++id, kBatchBytes));
    if (!commit.ok()) {
      std::cerr << "FATAL: " << commit.status().ToString() << "\n";
      std::abort();
    }
    latency.Add(commit.value());
  }
  return latency.MeanMillis();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 10(b): decision latency with remote requests (leader in "
      "California)",
      "remote requests are forwarded to the DPaxos leader; leaderless "
      "commits from the request origin with a majority quorum");

  TablePrinter table({"remote origin", "DPaxos 0% (ms)", "DPaxos 50% (ms)",
                      "DPaxos 100% (ms)", "leaderless 50% (ms)",
                      "leaderless 100% (ms)"});
  const Topology topo = Topology::AwsSevenZones();

  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone);
  const NodeId leader = cluster->NodeInZone(0);
  bench::MustElect(*cluster, leader);

  for (ZoneId z = 1; z < topo.num_zones(); ++z) {
    table.AddRow({topo.ZoneName(z),
                  Fmt(MeasureDPaxos(*cluster, leader, z, 0), 1),
                  Fmt(MeasureDPaxos(*cluster, leader, z, 50), 1),
                  Fmt(MeasureDPaxos(*cluster, leader, z, 100), 1),
                  Fmt(MeasureLeaderless(z, 50), 1),
                  Fmt(MeasureLeaderless(z, 100), 1)});
  }
  table.Print(std::cout);
  return 0;
}
