// Ablation: leader-only read leases vs quorum leases (Section 4.5 +
// Moraru et al.).
//
// A read-heavy workload hits the partition from its home zone. With the
// leader-based lease, every read funnels to the single leader; with
// quorum leases, every replication-quorum member serves reads too —
// multiplying read capacity by the quorum size while writes keep the
// same path. We model per-node read service capacity explicitly and
// report aggregate read throughput.
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

// Each node can serve one local read per 0.5 ms (2000 reads/s).
constexpr Duration kReadServiceTime = 500 * kMicrosecond;

struct Point {
  uint64_t reads_served = 0;
  double reads_per_sec = 0;
  int serving_nodes = 0;
};

Point Measure(bool quorum_reads, Duration duration) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.enable_leases = true;
  options.replica.enable_quorum_reads = quorum_reads;
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone, options);
  Replica* leader = cluster->ReplicaInZone(0);
  bench::MustElect(*cluster, leader->id());
  // Acquire the lease and let decide notifications settle.
  if (!cluster->Commit(leader->id(), Value::Synthetic(1, 128)).ok()) {
    std::abort();
  }
  cluster->sim().RunFor(kSecond);

  // One saturating closed-loop reader per serving node.
  Point point;
  Simulator& sim = cluster->sim();
  const Timestamp deadline = sim.Now() + duration;
  for (NodeId n : cluster->topology().AllNodes()) {
    Replica* r = cluster->replica(n);
    if (!(r->CanServeLocalRead() || r->CanServeQuorumRead())) continue;
    ++point.serving_nodes;
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&sim, &point, r, deadline, loop] {
      if (sim.Now() >= deadline) return;
      if (!(r->CanServeLocalRead() || r->CanServeQuorumRead())) return;
      ++point.reads_served;
      sim.Schedule(kReadServiceTime, *loop);
    };
    (*loop)();
  }
  sim.RunUntil(deadline);
  point.reads_per_sec = static_cast<double>(point.reads_served) /
                        (static_cast<double>(duration) / kSecond);
  return point;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: leader-based vs quorum read leases (read-saturated "
      "partition)",
      "each lease holder serves one local read per 0.5 ms; fd=1 quorum = "
      "2 nodes");

  TablePrinter table({"lease variant", "serving nodes", "reads/s"});
  const Point leader_only = Measure(false, 5 * kSecond);
  const Point quorum = Measure(true, 5 * kSecond);
  table.AddRow({"leader-based (paper default)",
                std::to_string(leader_only.serving_nodes),
                Fmt(leader_only.reads_per_sec, 0)});
  table.AddRow({"quorum leases", std::to_string(quorum.serving_nodes),
                Fmt(quorum.reads_per_sec, 0)});
  table.Print(std::cout);
  std::cout << "\nQuorum leases multiply read capacity by the replication-"
               "quorum size; the cost is\nthat members must refuse reads "
               "whenever a write is in flight past their watermark.\n";
  return 0;
}
