// Ablation (Section 4.3.4): what intents garbage collection buys.
//
// Leadership churns across zones, accumulating intents at acceptors; we
// then measure a fresh Leader Election from California
//   (a) with the stale intents still in place (no GC),
//   (b) after the polling garbage collector (Algorithm 3) has swept,
//   (c) with the aggressive variant where every newly elected leader
//       broadcasts its ballot as the GC threshold.
// The paper's motivation: accumulated intents force wider expansions and
// inflate promise messages.
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

enum class GcVariant { kNone, kPolling, kLeaderBroadcast };

struct Point {
  double le_latency_ms = 0;
  uint64_t stored_intents = 0;  // across all acceptors, after churn
  uint64_t expansion_rounds = 0;
};

Point Measure(GcVariant variant, int churn_rounds) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.leader_broadcasts_gc_threshold =
      variant == GcVariant::kLeaderBroadcast;
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone, options);

  // An early leader in Mumbai (the farthest zone from California) leaves
  // a stale intent behind; leadership then churns among the nearby
  // Oregon/Virginia zones. Without garbage collection the obsolete
  // Mumbai intent keeps forcing LE-quorum expansions across the planet.
  const Topology& topo = cluster->topology();
  bench::MustElect(*cluster, cluster->NodeInZone(6));  // Mumbai
  if (!cluster->Commit(cluster->NodeInZone(6), Value::Synthetic(999, 1024))
           .ok()) {
    std::abort();
  }
  for (int i = 0; i < churn_rounds; ++i) {
    const ZoneId zone = 1 + static_cast<ZoneId>(i) % 2;  // Oregon/Virginia
    const NodeId node = cluster->NodeInZone(zone, i % 2);
    bench::MustElect(*cluster, node);
    Result<Duration> commit = cluster->Commit(
        node, Value::Synthetic(1000 + static_cast<uint64_t>(i), 1024));
    if (!commit.ok()) std::abort();
  }

  if (variant == GcVariant::kPolling) {
    GarbageCollector* gc = cluster->AddGarbageCollector(0);
    gc->SweepOnce();
    cluster->sim().RunFor(3 * kSecond);
  }

  Point point;
  for (NodeId n : topo.AllNodes()) {
    point.stored_intents += cluster->replica(n)->acceptor().intents().size();
  }

  Replica* aspirant = cluster->ReplicaInZone(0, 2);
  aspirant->PrimeBallot(Ballot{1000, 0});
  Result<Duration> latency = cluster->ElectLeader(aspirant->id());
  if (!latency.ok()) {
    std::cerr << "FATAL: " << latency.status().ToString() << "\n";
    std::abort();
  }
  point.le_latency_ms = ToMillis(latency.value());
  point.expansion_rounds = aspirant->expansion_rounds();
  return point;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: intents garbage collection (Section 4.3.4)",
      "leadership churns across zones, then a California node runs one "
      "Leader Election");

  TablePrinter table({"churn", "GC variant", "stored intents", "LE (ms)",
                      "expansions"});
  for (int churn : {6, 12, 24}) {
    const Point none = Measure(GcVariant::kNone, churn);
    const Point poll = Measure(GcVariant::kPolling, churn);
    const Point aggr = Measure(GcVariant::kLeaderBroadcast, churn);
    table.AddRow({std::to_string(churn), "none",
                  std::to_string(none.stored_intents),
                  Fmt(none.le_latency_ms, 1),
                  std::to_string(none.expansion_rounds)});
    table.AddRow({std::to_string(churn), "polling (Alg. 3)",
                  std::to_string(poll.stored_intents),
                  Fmt(poll.le_latency_ms, 1),
                  std::to_string(poll.expansion_rounds)});
    table.AddRow({std::to_string(churn), "leader-broadcast",
                  std::to_string(aggr.stored_intents),
                  Fmt(aggr.le_latency_ms, 1),
                  std::to_string(aggr.expansion_rounds)});
  }
  table.Print(std::cout);
  return 0;
}
