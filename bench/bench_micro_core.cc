// Micro-benchmarks (google-benchmark) of the core data structures on the
// hot paths: quorum tallying, intent bookkeeping, the event queue, the
// transaction codec and topology queries.
#include <benchmark/benchmark.h>

#include <set>

#include "net/topology.h"
#include "paxos/acceptor.h"
#include "quorum/quorum_system.h"
#include "sim/simulator.h"
#include "txn/transaction.h"
#include "workload/oltp.h"

namespace dpaxos {
namespace {

void BM_QuorumRuleIsSatisfied(benchmark::State& state) {
  const Topology topo = Topology::AwsSevenZones();
  DelegateQuorumSystem qs(&topo, FaultTolerance{1, 0});
  const QuorumRule rule = qs.LeaderElectionRule(0, LeaderZoneView{});
  std::set<NodeId> acks;
  for (NodeId n = 0; n < 11; ++n) acks.insert(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.IsSatisfied(acks));
  }
}
BENCHMARK(BM_QuorumRuleIsSatisfied);

void BM_QuorumRuleMergeExpand(benchmark::State& state) {
  const Topology topo = Topology::AwsSevenZones();
  DelegateQuorumSystem qs(&topo, FaultTolerance{1, 0});
  const QuorumRule base = qs.LeaderElectionRule(0, LeaderZoneView{});
  for (auto _ : state) {
    QuorumRule expanded = base.MergedWith(QuorumRule::Simple({9, 10}, 1));
    benchmark::DoNotOptimize(expanded);
  }
}
BENCHMARK(BM_QuorumRuleMergeExpand);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(7);
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(static_cast<Duration>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(sim.RunUntilIdle());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_AcceptorPrepare(benchmark::State& state) {
  uint64_t round = 1;
  Acceptor acceptor;
  const Intent intent{Ballot{1, 1}, 1, {1, 2}};
  for (auto _ : state) {
    PrepareMsg msg(0, Ballot{round++, 1}, 0, {intent}, false,
                   LeaderZoneView{});
    benchmark::DoNotOptimize(acceptor.OnPrepare(msg, round));
  }
}
BENCHMARK(BM_AcceptorPrepare);

void BM_TxnEncodeDecode(benchmark::State& state) {
  OltpGenerator gen(OltpConfig{}, 42);
  const std::vector<Transaction> batch =
      gen.NextBatch(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    const std::string payload = EncodeBatch(batch);
    auto decoded = DecodeBatch(payload);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(EncodeBatch(batch).size()));
}
BENCHMARK(BM_TxnEncodeDecode)->Arg(1024)->Arg(50 * 1024);

void BM_TopologyProximity(benchmark::State& state) {
  const Topology topo = Topology::AwsSevenZones();
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.ZonesByProximity(6));
  }
}
BENCHMARK(BM_TopologyProximity);

}  // namespace
}  // namespace dpaxos

BENCHMARK_MAIN();
