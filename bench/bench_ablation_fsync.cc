// Ablation: durability cost. Paxos acceptors must persist promises and
// acceptances before answering; this sweep charges a per-reply storage
// sync and shows how commit latency absorbs it — and that DPaxos's
// intra-zone round hides slow storage far better than Multi-Paxos's
// majority round amortizes it (the sync adds to the CRITICAL path once,
// not per replica, but slow devices erode DPaxos's small-quorum
// advantage in relative terms).
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

double Measure(ProtocolMode mode, Duration sync_delay) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.storage_sync_delay = sync_delay;
  auto cluster = bench::MakePaperCluster(mode, options);
  Replica* leader = cluster->ReplicaInZone(0);
  bench::MustElect(*cluster, leader->id());

  LoadOptions load;
  load.batch_bytes = 1024;
  load.duration = 5 * kSecond;
  return RunClosedLoop(*cluster, leader, load).commit_latency.MeanMillis();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: storage sync cost per acceptor reply (California leader, "
      "1 KB batches)",
      "0 = async-safe, 0.1ms ~ NVMe, 1ms ~ SSD, 10ms ~ disk");

  TablePrinter table({"sync delay", "DPaxos (ms)", "MultiPaxos (ms)",
                      "DPaxos overhead", "MultiPaxos overhead"});
  const double dpaxos_base = Measure(ProtocolMode::kLeaderZone, 0);
  const double mp_base = Measure(ProtocolMode::kMultiPaxos, 0);
  for (Duration d : {Duration{0}, 100 * kMicrosecond, 1 * kMillisecond,
                     10 * kMillisecond}) {
    const double dp = Measure(ProtocolMode::kLeaderZone, d);
    const double mp = Measure(ProtocolMode::kMultiPaxos, d);
    table.AddRow({DurationToString(d), Fmt(dp, 2), Fmt(mp, 2),
                  "+" + Fmt(100 * (dp / dpaxos_base - 1), 0) + "%",
                  "+" + Fmt(100 * (mp / mp_base - 1), 0) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\nThe sync sits on the critical path exactly once per "
               "round, so the absolute penalty is\nthe same for both — "
               "which hurts the 11 ms DPaxos round far more in relative "
               "terms.\n";
  return 0;
}
