// Ablation: automatic placement (the paper's Section 4.6 future-work
// direction, built in src/placement).
//
// A user tours the planet issuing requests from each zone. Three
// policies:
//   static    — the leader stays in California forever; remote requests
//               forward across the WAN,
//   follow    — the infrastructure blindly migrates on the FIRST remote
//               access (no hysteresis),
//   advisor   — PlacementAdvisor watches decayed access stats and
//               triggers Leader Handoff + Leader Zone migration only when
//               the expected-latency gain clears its threshold.
// Reported: mean/served client latency and migrations performed.
#include <iostream>
#include <optional>

#include "bench_common.h"
#include "placement/placement.h"
#include "workload/mobility.h"

using namespace dpaxos;

namespace {

enum class Policy { kStatic, kFollowImmediately, kAdvisor };

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kStatic:
      return "static (California)";
    case Policy::kFollowImmediately:
      return "follow immediately";
    case Policy::kAdvisor:
      return "placement advisor";
  }
  return "?";
}

struct RunResult {
  double mean_latency_ms = 0;
  int migrations = 0;
};

Status AwaitStatus(Cluster& cluster,
                   const std::function<void(Replica::StatusCallback)>& go) {
  std::optional<Status> st;
  go([&](const Status& s) { st = s; });
  while (!st.has_value() && cluster.sim().Step()) {
  }
  return st.value_or(Status::TimedOut("stuck"));
}

RunResult Run(Policy policy) {
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone);
  const Topology& topo = cluster->topology();

  // The user visits C -> T -> S -> M, 12 requests per stop; plus a short
  // noisy detour (2 requests from Ireland) that good hysteresis ignores.
  struct Stop {
    ZoneId zone;
    int requests;
  };
  const std::vector<Stop> tour = {{0, 12}, {3, 12}, {4, 2}, {5, 12}, {6, 12}};

  NodeId leader = cluster->NodeInZone(0);
  if (!cluster->ElectLeader(leader).ok()) std::abort();

  PlacementAdvisor advisor(&topo, /*min_improvement=*/0.3,
                           /*min_weight=*/4.0);
  AccessStats stats(topo.num_zones(), /*half_life=*/20 * kSecond);

  Histogram latency;
  RunResult result;
  uint64_t id = 0;
  for (const Stop& stop : tour) {
    for (int i = 0; i < stop.requests; ++i) {
      cluster->sim().RunFor(2 * kSecond);  // request spacing
      stats.Record(stop.zone, cluster->sim().Now());

      // Decide whether to migrate before serving.
      const ZoneId leader_zone = topo.ZoneOf(leader);
      bool migrate = false;
      ZoneId target = leader_zone;
      if (policy == Policy::kFollowImmediately &&
          stop.zone != leader_zone) {
        migrate = true;
        target = stop.zone;
      } else if (policy == Policy::kAdvisor) {
        const PlacementAdvice advice =
            advisor.Advise(stats, leader_zone, cluster->sim().Now());
        migrate = advice.should_move;
        target = advice.best_zone;
      }
      if (migrate) {
        const NodeId next = cluster->NodeInZone(target);
        Status st = AwaitStatus(*cluster, [&](Replica::StatusCallback cb) {
          cluster->replica(next)->RequestHandoffFrom(leader, std::move(cb));
        });
        if (st.ok()) {
          leader = next;
          st = AwaitStatus(*cluster, [&](Replica::StatusCallback cb) {
            cluster->replica(leader)->MigrateLeaderZone(target,
                                                        std::move(cb));
          });
          st = AwaitStatus(*cluster, [&](Replica::StatusCallback cb) {
            cluster->replica(leader)->RefreshLeadership(std::move(cb));
          });
          ++result.migrations;
        }
      }

      // Serve the request from the user's current zone.
      Replica* origin = cluster->replica(cluster->NodeInZone(stop.zone, 1));
      origin->set_leader_hint(leader);
      bool done = false;
      Duration sample = 0;
      origin->SubmitOrForward(Value::Synthetic(++id, 1024),
                              [&](const Status& st, SlotId, Duration lat) {
                                if (st.ok()) sample = lat;
                                done = true;
                              });
      while (!done && cluster->sim().Step()) {
      }
      if (sample > 0) latency.Add(sample);
    }
  }
  result.mean_latency_ms = latency.MeanMillis();
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: automatic leader/Leader-Zone placement (Section 4.6)",
      "mobile user tours California -> Tokyo -> (Ireland detour) -> "
      "Singapore -> Mumbai");

  TablePrinter table({"policy", "mean client latency (ms)", "migrations"});
  for (Policy p : {Policy::kStatic, Policy::kFollowImmediately,
                   Policy::kAdvisor}) {
    const RunResult r = Run(p);
    table.AddRow({PolicyName(p), Fmt(r.mean_latency_ms, 1),
                  std::to_string(r.migrations)});
  }
  table.Print(std::cout);
  std::cout << "\nThe advisor should approach 'follow immediately' latency "
               "with fewer migrations\n(it skips the two-request Ireland "
               "detour that blind following chases).\n";
  return 0;
}
