// Figure 13 (Section A.3): the effect of the multi-programming level —
// the number of slots the proposer decides concurrently — on throughput
// and latency at the Virginia proposer with 50 KB batches.
//
// Paper shapes to reproduce: raising the level from 1 to 8 improves
// throughput by ~86% for DPaxos, ~77% for Flexible Paxos and ~71% for
// Multi-Paxos, with Multi-Paxos thrashing at level 4 (its per-batch
// fan-out saturates the proposer's egress first).
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

constexpr uint32_t kLevels[] = {1, 2, 4, 8};
constexpr uint64_t kBatchBytes = 50 * 1024;
constexpr ZoneId kVirginia = 2;

struct Point {
  double kbps = 0;
  double latency_ms = 0;
};

Point Measure(ProtocolMode mode, uint32_t level) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.max_inflight = level;
  auto cluster = bench::MakePaperCluster(mode, options);
  Replica* leader = cluster->ReplicaInZone(kVirginia);
  bench::MustElect(*cluster, leader->id());

  LoadOptions load;
  load.batch_bytes = kBatchBytes;
  load.duration = 10 * kSecond;
  load.window = level;
  LoadResult result = RunClosedLoop(*cluster, leader, load);
  return Point{result.ThroughputKBps(), result.commit_latency.MeanMillis()};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 13: multi-programming level (Virginia proposer, 50 KB "
      "batches)",
      "level = concurrently decided slots (closed-loop window)");

  TablePrinter table({"level", "DPaxos KB/s", "FPaxos KB/s", "MPaxos KB/s",
                      "DPaxos ms", "FPaxos ms", "MPaxos ms"});
  double base[3] = {0, 0, 0};
  double last[3] = {0, 0, 0};
  for (uint32_t level : kLevels) {
    const Point d = Measure(ProtocolMode::kLeaderZone, level);
    const Point f = Measure(ProtocolMode::kFlexiblePaxos, level);
    const Point m = Measure(ProtocolMode::kMultiPaxos, level);
    if (level == 1) {
      base[0] = d.kbps;
      base[1] = f.kbps;
      base[2] = m.kbps;
    }
    last[0] = d.kbps;
    last[1] = f.kbps;
    last[2] = m.kbps;
    table.AddRow({std::to_string(level), Fmt(d.kbps, 0), Fmt(f.kbps, 0),
                  Fmt(m.kbps, 0), Fmt(d.latency_ms, 1), Fmt(f.latency_ms, 1),
                  Fmt(m.latency_ms, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nthroughput improvement level 1 -> 8: DPaxos "
            << Fmt(100 * (last[0] / base[0] - 1), 0) << "% (paper 86%), "
            << "FPaxos " << Fmt(100 * (last[1] / base[1] - 1), 0)
            << "% (paper 77%), MultiPaxos "
            << Fmt(100 * (last[2] / base[2] - 1), 0) << "% (paper 71%)\n";
  return 0;
}
