// Figure 14 (Section A.4): Leader Election latency when stale intents
// have not been garbage collected. Intents covering 1..7 zones (ordered
// nearest to farthest from California) are planted; the aspiring leader
// in California must expand its Leader Election quorum to intersect all
// of them — either with a second round (two-phase) or by proactively
// sending redundant first-round vote requests (combined).
//
// Paper shapes to reproduce: two-phase 22 ms -> 270 ms, combined 11 ms ->
// 259 ms as the intent list covers more (and farther) zones; combining
// dilutes the first phase's latency inside the second's.
#include <iostream>
#include <memory>

#include "bench_common.h"

using namespace dpaxos;

namespace {

// Plant one intent per zone for the first `zones_covered` zones by
// proximity from California, by injecting prepare messages that the
// Leader Zone (California) acceptors vote for and store.
void PlantIntents(Cluster& cluster, uint32_t zones_covered) {
  const Topology& topo = cluster.topology();
  const std::vector<ZoneId> order = topo.ZonesByProximity(0);
  uint64_t round = 1;
  for (uint32_t i = 0; i < zones_covered; ++i) {
    const ZoneId zone = order[i];
    const std::vector<NodeId> nodes = topo.NodesInZone(zone);
    // Ballots must increase so every planted prepare is promised (an
    // acceptor only stores intents of prepares it votes for).
    const Ballot ballot{round++, nodes[1]};
    const Intent intent{ballot, nodes[1], {nodes[1], nodes[2]}};
    auto prepare = std::make_shared<PrepareMsg>(
        /*partition=*/0, ballot, /*first_slot=*/0,
        std::vector<Intent>{intent}, /*expansion=*/false, LeaderZoneView{});
    for (NodeId n : topo.NodesInZone(0)) {  // the Leader Zone
      cluster.transport().Send(nodes[1], n, prepare);
    }
    cluster.sim().RunFor(2 * kSecond);
  }
}

double Measure(uint32_t zones_covered, bool combined) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.consolidate_le_rounds = combined;
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone, options);

  PlantIntents(*cluster, zones_covered);
  Replica* aspirant = cluster->ReplicaInZone(0, 0);
  aspirant->PrimeBallot(Ballot{100, 0});

  Result<Duration> latency = cluster->ElectLeader(aspirant->id());
  if (!latency.ok()) {
    std::cerr << "FATAL: election failed: " << latency.status().ToString()
              << "\n";
    std::abort();
  }
  return ToMillis(latency.value());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 14: Leader Election latency vs zones covered by stale "
      "intents",
      "aspirant and Leader Zone in California; garbage collection "
      "disabled; intents ordered nearest-to-farthest");

  TablePrinter table({"zones in intents", "two-phase (ms)", "combined (ms)",
                      "expansion rounds (two-phase)"});
  for (uint32_t k = 1; k <= 7; ++k) {
    // Count expansion rounds on a separate identically configured run.
    ClusterOptions options = bench::PaperOptions();
    auto probe = bench::MakePaperCluster(ProtocolMode::kLeaderZone, options);
    PlantIntents(*probe, k);
    Replica* aspirant = probe->ReplicaInZone(0, 0);
    aspirant->PrimeBallot(Ballot{100, 0});
    (void)probe->ElectLeader(aspirant->id());
    const uint64_t expansions = aspirant->expansion_rounds();

    table.AddRow({std::to_string(k), Fmt(Measure(k, false), 1),
                  Fmt(Measure(k, true), 1), std::to_string(expansions)});
  }
  table.Print(std::cout);
  std::cout << "\nNote: with the covered-intent optimization (paper "
               "Section 4.3.1) a same-zone intent needs no second round,\n"
               "so the 1-zone two-phase point is ~11 ms rather than the "
               "paper's 22 ms.\n";
  return 0;
}
