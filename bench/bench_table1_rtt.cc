// Table 1: the average round-trip times (milliseconds) between the seven
// AWS datacenters used as zones throughout the evaluation. This binary
// prints the configured matrix and verifies its symmetry — the other
// benchmarks inherit the same topology.
#include <iostream>

#include "bench_common.h"
#include "net/topology.h"

using namespace dpaxos;

int main() {
  bench::PrintHeader(
      "Table 1: RTT (ms) between the 7 datacenters (zones)",
      "C=California O=Oregon V=Virginia T=Tokyo I=Ireland S=Singapore "
      "M=Mumbai; intra-zone edge-node RTT = 10ms");

  const Topology topo = Topology::AwsSevenZones();
  const char* short_names = "COVTISM";

  TablePrinter table({" ", "C", "O", "V", "T", "I", "S", "M"});
  for (ZoneId a = 0; a < topo.num_zones(); ++a) {
    std::vector<std::string> row{std::string(1, short_names[a])};
    for (ZoneId b = 0; b < topo.num_zones(); ++b) {
      const double ms = a == b ? 0.0 : ToMillis(topo.ZoneRtt(a, b));
      row.push_back(Fmt(ms, 0));
      if (topo.ZoneRtt(a, b) != topo.ZoneRtt(b, a)) {
        std::cerr << "FATAL: RTT matrix is not symmetric\n";
        return 1;
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nZones: " << topo.num_zones()
            << ", nodes/zone: " << topo.nodes_in_zone(0)
            << ", total nodes: " << topo.num_nodes() << "\n";
  return 0;
}
