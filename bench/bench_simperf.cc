// bench_simperf: wall-clock throughput of the simulation kernel.
//
// Runs the fixed simperf workload (src/harness/simperf.*) — the paper's
// seven-zone deployment closed-loop at window=32 under leaderzone,
// delegate and multipaxos, plus one chaos cell — and reports how many
// simulator events and transport messages the host retires per second of
// *wall* time. Writes BENCH_simperf.json with both the recorded pre-PR
// baseline and the current build, so every future hot-path change is
// gated against this number (see docs/perf.md).
//
// Flags:
//   --smoke         short phases for per-build smoke runs (ctest -L perf)
//   --out=PATH      JSON output path (default BENCH_simperf.json)
//   --seed=N        workload seed (default 42)
//   --baseline=X    override the recorded baseline events/sec
//   --repeat=N      run the workload N times, report the fastest run
//                   (stretches short runs for sampling profilers)
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>

#include "bench_common.h"
#include "harness/simperf.h"

using namespace dpaxos;

int main(int argc, char** argv) {
  SimperfOptions options;
  std::string out_path = "BENCH_simperf.json";
  uint64_t repeat = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      options.baseline_events_per_sec = std::stod(arg.substr(11));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::max<uint64_t>(1, std::stoull(arg.substr(9)));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  bench::PrintHeader(
      "simperf: wall-clock kernel throughput",
      std::string("7-zone AWS topology, window=32, 3 modes + chaos cell") +
          (options.smoke ? " (smoke)" : ""));

  SimperfReport report = RunSimperf(options);
  for (uint64_t run = 1; run < repeat; ++run) {
    SimperfReport next = RunSimperf(options);
    if (next.EventsPerSec() > report.EventsPerSec()) report = std::move(next);
  }

  TablePrinter table({"phase", "wall (ms)", "events", "messages",
                      "events/sec"});
  for (const SimperfPhase& p : report.phases) {
    table.AddRow({p.name, Fmt(p.wall_ms, 1), std::to_string(p.events),
                  std::to_string(p.messages),
                  Fmt(p.wall_ms > 0 ? p.events / (p.wall_ms / 1000.0) : 0,
                      0)});
  }
  table.AddRow({"TOTAL", Fmt(report.wall_ms, 1),
                std::to_string(report.events),
                std::to_string(report.messages),
                Fmt(report.EventsPerSec(), 0)});
  table.Print(std::cout);

  std::cout << "\npeak rss: " << report.peak_rss_kb << " KB\n"
            << report.counters.ToString() << "\n"
            << "\nbaseline " << Fmt(options.baseline_events_per_sec, 0)
            << " events/sec -> current " << Fmt(report.EventsPerSec(), 0)
            << " events/sec ("
            << Fmt(report.EventsPerSec() /
                       (options.baseline_events_per_sec > 0
                            ? options.baseline_events_per_sec
                            : 1),
                   2)
            << "x)\n";

  const std::string json =
      report.ToJson(options.baseline_events_per_sec);
  if (!WriteSimperfJson(out_path, json)) return 1;
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
