// bench_simperf: wall-clock throughput of the simulation kernel.
//
// Runs the fixed simperf workload (src/harness/simperf.*) — the paper's
// seven-zone deployment closed-loop at window=32 under leaderzone,
// delegate and multipaxos, plus one chaos cell — and reports how many
// simulator events and transport messages the host retires per second of
// *wall* time. Then runs the shard-parallel workload (32 partitions
// split over --shards independent clusters) at a sweep of thread counts,
// recording the aggregate throughput scaling and verifying that every
// simulated number is byte-identical regardless of the thread count.
// Writes BENCH_simperf.json with the recorded pre-PR baseline, the
// current build, and the scaling section, so every future hot-path
// change is gated against these numbers (see docs/perf.md).
//
// Flags:
//   --smoke         short phases for per-build smoke runs (ctest -L perf);
//                   runs the sharded workload only when --shards is given
//   --out=PATH      JSON output path (default BENCH_simperf.json)
//   --seed=N        workload seed (default 42)
//   --baseline=X    override the recorded baseline events/sec
//   --repeat=N      run the workload N times, report the fastest run
//                   (stretches short runs for sampling profilers)
//   --shards=K      shard count for the parallel workload (default 8)
//   --threads=T     max worker threads for the scaling sweep
//                   (default: hardware concurrency)
//   --partitions=P  total partitions across shards (default 32)
//   --window=W      closed-loop clients per partition (default 8)
//   --no-sharded    skip the shard-parallel workload entirely
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "harness/simperf.h"
#include "sim/shard_runner.h"

using namespace dpaxos;

namespace {

// Thread counts for the scaling sweep: 1, 2, 4, ... up to `max_threads`,
// always ending on max_threads itself.
std::vector<uint32_t> SweepThreadCounts(uint32_t max_threads) {
  std::vector<uint32_t> counts;
  for (uint32_t t = 1; t < max_threads; t *= 2) counts.push_back(t);
  counts.push_back(max_threads);
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  SimperfOptions options;
  std::string out_path = "BENCH_simperf.json";
  uint64_t repeat = 1;
  bool run_sharded = true;
  bool shards_given = false;
  uint32_t max_threads = ShardSet::HardwareThreads();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      options.baseline_events_per_sec = std::stod(arg.substr(11));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::max<uint64_t>(1, std::stoull(arg.substr(9)));
    } else if (arg.rfind("--shards=", 0) == 0) {
      options.shards = static_cast<uint32_t>(std::stoul(arg.substr(9)));
      shards_given = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      max_threads = std::max(
          1u, static_cast<uint32_t>(std::stoul(arg.substr(10))));
    } else if (arg.rfind("--partitions=", 0) == 0) {
      options.partitions =
          static_cast<uint32_t>(std::stoul(arg.substr(13)));
    } else if (arg.rfind("--window=", 0) == 0) {
      options.window = static_cast<uint32_t>(std::stoul(arg.substr(9)));
    } else if (arg == "--no-sharded") {
      run_sharded = false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  // Smoke runs stay minimal unless the sharded workload was asked for
  // explicitly (the perf-smoke ctest passes --shards=4 --threads=2).
  if (options.smoke && !shards_given) run_sharded = false;
  options.partitions = std::max(options.partitions, options.shards);

  bench::PrintHeader(
      "simperf: wall-clock kernel throughput",
      std::string("7-zone AWS topology, window=32, 3 modes + chaos cell") +
          (options.smoke ? " (smoke)" : ""));

  SimperfReport report = RunSimperf(options);
  double best_events_per_sec = report.EventsPerSec();
  for (uint64_t run = 1; run < repeat; ++run) {
    SimperfReport next = RunSimperf(options);
    best_events_per_sec =
        std::max(best_events_per_sec, next.EventsPerSec());
    if (next.EventsPerSec() > report.EventsPerSec()) report = std::move(next);
  }

  TablePrinter table({"phase", "wall (ms)", "events", "messages",
                      "events/sec"});
  for (const SimperfPhase& p : report.phases) {
    table.AddRow({p.name, Fmt(p.wall_ms, 1), std::to_string(p.events),
                  std::to_string(p.messages),
                  Fmt(p.wall_ms > 0 ? p.events / (p.wall_ms / 1000.0) : 0,
                      0)});
  }
  table.AddRow({"TOTAL", Fmt(report.wall_ms, 1),
                std::to_string(report.events),
                std::to_string(report.messages),
                Fmt(report.EventsPerSec(), 0)});
  table.Print(std::cout);

  std::cout << "\npeak rss: " << report.peak_rss_kb << " KB\n"
            << report.counters.ToString() << "\n"
            << "\nbaseline " << Fmt(options.baseline_events_per_sec, 0)
            << " events/sec -> current " << Fmt(report.EventsPerSec(), 0)
            << " events/sec ("
            << Fmt(report.EventsPerSec() /
                       (options.baseline_events_per_sec > 0
                            ? options.baseline_events_per_sec
                            : 1),
                   2)
            << "x), best of " << repeat << ": "
            << Fmt(best_events_per_sec, 0) << " events/sec ("
            << Fmt(best_events_per_sec /
                       (options.baseline_events_per_sec > 0
                            ? options.baseline_events_per_sec
                            : 1),
                   2)
            << "x)\n";

  SimperfJsonExtras extras;
  extras.repeat = repeat;
  extras.best_events_per_sec = best_events_per_sec;

  ShardedSimperfReport sharded;
  SimperfScaling scaling;
  if (run_sharded) {
    const std::vector<uint32_t> sweep = SweepThreadCounts(max_threads);
    std::cout << "\n== shard-parallel workload: " << options.shards
              << " shards x " << options.partitions << " partitions, "
              << "window=" << options.window << "/partition, sweeping "
              << sweep.size() << " thread counts (hardware: "
              << ShardSet::HardwareThreads() << ")\n\n";
    scaling = RunSimperfScaling(options, sweep);

    TablePrinter sweep_table(
        {"threads", "wall (ms)", "events/sec", "speedup vs t=1"});
    for (const SimperfScalingPoint& p : scaling.points) {
      sweep_table.AddRow({std::to_string(p.threads), Fmt(p.wall_ms, 1),
                          Fmt(p.events_per_sec, 0),
                          Fmt(p.speedup_vs_one_thread, 2) + "x"});
    }
    sweep_table.Print(std::cout);
    std::cout << "byte-identical across thread counts: "
              << (scaling.deterministic_across_threads ? "yes" : "NO")
              << " (fingerprint " << scaling.fingerprint << ")\n\n";

    // The per-shard report written to JSON comes from the widest point.
    SimperfOptions full = options;
    full.threads = max_threads;
    sharded = RunSimperfSharded(full);
    TablePrinter shard_table({"shard", "partitions", "wall (ms)", "events",
                              "committed", "steals", "migrations"});
    for (const SimperfShard& s : sharded.per_shard) {
      shard_table.AddRow({std::to_string(s.shard_id),
                          std::to_string(s.partitions), Fmt(s.wall_ms, 1),
                          std::to_string(s.events),
                          std::to_string(s.committed),
                          std::to_string(s.steals),
                          std::to_string(s.migrations)});
    }
    shard_table.Print(std::cout);
    std::cout << "aggregate: " << Fmt(sharded.EventsPerSec(), 0)
              << " events/sec over " << Fmt(sharded.wall_ms, 1)
              << " ms, slab_growths=" << sharded.counters.slab_growths
              << "\n";
    extras.sharded = &sharded;
    extras.scaling = &scaling;
  }

  // Mobility tour (docs/PROTOCOL.md §ownership): the same single-client
  // three-zone tour as `dpaxos_cli --experiment=simperf`, static vs
  // adaptive ownership, so the JSON carries the steal counters and the
  // post-migration latency collapse alongside the throughput sections.
  const SimperfMobilityReport mobility = RunSimperfMobility(options);
  std::cout << "\nmobility tour (static vs adaptive ownership):\n";
  TablePrinter mobility_table(
      {"cell", "zone", "ops", "p50 (ms)", "tail p50 (ms)", "steals"});
  for (const SimperfMobilityCell& cell : mobility.cells) {
    for (const SimperfMobilitySegment& seg : cell.segments) {
      const bool last = &seg == &cell.segments.back();
      mobility_table.AddRow(
          {cell.label, std::to_string(seg.zone), std::to_string(seg.ops),
           Fmt(seg.p50_ms, 2), Fmt(seg.tail_p50_ms, 2),
           last ? std::to_string(cell.steals) : ""});
    }
  }
  mobility_table.Print(std::cout);
  std::cout << "adaptive_tracks_client: "
            << (mobility.adaptive_tracks_client ? "yes" : "NO") << "\n";
  extras.mobility = &mobility;

  const std::string json =
      SimperfJson(report, options.baseline_events_per_sec, extras);
  if (!WriteSimperfJson(out_path, json)) return 1;
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
