// Communication overhead: messages and bytes on the wire per committed
// batch, for every protocol.
//
// The paper argues throughout (Sections 1, 4.1) that small quorums also
// mean low communication overhead — "reducing the size of quorums also
// results in low communication overhead". This bench quantifies it: a
// prolonged California leader commits 1 KB batches; we count every
// message and byte the whole cluster sent, divided by commits, and the
// cost of one Leader Election round per protocol.
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

struct OverheadPoint {
  double msgs_per_commit = 0;
  double kb_per_commit = 0;
  uint64_t election_msgs = 0;
};

OverheadPoint Measure(ProtocolMode mode) {
  auto cluster = bench::MakePaperCluster(mode);
  Replica* leader = cluster->ReplicaInZone(0);
  if (mode != ProtocolMode::kLeaderless) {
    bench::MustElect(*cluster, leader->id());
  }

  auto total_msgs = [&] {
    uint64_t sum = 0;
    for (NodeId n : cluster->topology().AllNodes()) {
      sum += cluster->transport().StatsFor(n).messages_sent;
    }
    return sum;
  };

  const uint64_t msgs_after_election = total_msgs();
  const uint64_t bytes_after_election = cluster->transport().TotalBytesSent();

  LoadOptions load;
  load.batch_bytes = 1024;
  load.duration = 10 * kSecond;
  const LoadResult result = RunClosedLoop(*cluster, leader, load);

  OverheadPoint point;
  point.election_msgs = msgs_after_election;
  if (result.committed > 0) {
    point.msgs_per_commit =
        static_cast<double>(total_msgs() - msgs_after_election) /
        static_cast<double>(result.committed);
    point.kb_per_commit =
        static_cast<double>(cluster->transport().TotalBytesSent() -
                            bytes_after_election) /
        1024.0 / static_cast<double>(result.committed);
  }
  return point;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Communication overhead per committed 1 KB batch (leader in "
      "California)",
      "replication messages+bytes divided by commits; election column = "
      "messages of the initial Leader Election");

  TablePrinter table({"protocol", "msgs/commit", "KB/commit",
                      "election msgs"});
  for (ProtocolMode mode :
       {ProtocolMode::kLeaderZone, ProtocolMode::kDelegate,
        ProtocolMode::kFlexiblePaxos, ProtocolMode::kMultiPaxos,
        ProtocolMode::kLeaderless}) {
    const OverheadPoint p = Measure(mode);
    table.AddRow({ProtocolModeName(mode), Fmt(p.msgs_per_commit, 1),
                  Fmt(p.kb_per_commit, 2), std::to_string(p.election_msgs)});
  }
  table.Print(std::cout);
  std::cout << "\nDPaxos replicates on 2 nodes (1 remote copy + decide); "
               "Multi-Paxos touches all 21 nodes per batch.\n";
  return 0;
}
