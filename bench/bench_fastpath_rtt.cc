// Fast-path commits on the Table 1 RTT matrix (leader in California).
//
// For each remote origin zone, one write is driven through three paths:
//   classic   SubmitOrForward at the origin, forwarded to the leader,
//             which runs the Accept round and replies after commitment —
//             pays RTT(origin, leader) + the leader's replication round.
//   fast      the same entry point with enable_fast_path: the origin
//             drives the leader's fast quorum directly and commits on
//             unanimity — the forward/accept round trip collapses into
//             one origin->quorum exchange (docs/PROTOCOL.md §fast-path).
//   ideal     leaderless Paxos committing at the origin with a majority
//             round: the no-coordination lower bound the fast path is
//             measured against.
//
// Shapes to expect: fast tracks classic minus the leader's replication
// round (~10 ms intra-zone for LeaderZone, a cross-zone majority for
// MultiPaxos), and sits between classic and the leaderless ideal
// everywhere.
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

constexpr int kRequestsPerPoint = 20;
constexpr uint64_t kBatchBytes = 1024;

// Mean end-to-end latency of writes entered at `remote_zone`'s edge
// replica via SubmitOrForward (classic forward or fast path, depending
// on the cluster's config).
double MeasureOrigin(Cluster& cluster, NodeId leader, ZoneId remote_zone) {
  Replica* origin = cluster.replica(cluster.NodeInZone(remote_zone, 2));
  origin->set_leader_hint(leader);

  Histogram latency;
  static uint64_t id = 5'000'000;  // distinct value ids across calls
  for (int i = 0; i < kRequestsPerPoint; ++i) {
    bool done = false;
    Duration sample = 0;
    origin->SubmitOrForward(Value::Synthetic(++id, kBatchBytes),
                            [&](const Status& st, SlotId, Duration lat) {
                              if (!st.ok()) {
                                std::cerr << "FATAL: " << st.ToString()
                                          << "\n";
                                std::abort();
                              }
                              sample = lat;
                              done = true;
                            });
    while (!done && cluster.sim().Step()) {
    }
    latency.Add(sample);
  }
  return latency.MeanMillis();
}

std::unique_ptr<Cluster> MakeCluster(ProtocolMode mode, bool fast_path,
                                     NodeId* leader) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.enable_fast_path = fast_path;
  auto cluster = bench::MakePaperCluster(mode, options);
  *leader = cluster->NodeInZone(0);
  bench::MustElect(*cluster, *leader);
  // Let the FastGrant broadcast reach every origin before measuring —
  // a grantless origin silently falls back to the classic forward.
  cluster->RunUntil([] { return false; }, 2 * kSecond);
  return cluster;
}

// Leaderless idealization: the origin zone's replica commits with a
// majority round from where the request lands, no leader involved.
double MeasureLeaderless(Cluster& cluster, ZoneId remote_zone) {
  Histogram latency;
  static uint64_t id = 0;
  for (int i = 0; i < kRequestsPerPoint; ++i) {
    Result<Duration> commit =
        cluster.Commit(cluster.NodeInZone(remote_zone, 2),
                       Value::Synthetic(++id, kBatchBytes));
    if (!commit.ok()) {
      std::cerr << "FATAL: " << commit.status().ToString() << "\n";
      std::abort();
    }
    latency.Add(commit.value());
  }
  return latency.MeanMillis();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fast-path commits: per-origin write latency (leader in California)",
      "classic = forward to leader + accept round; fast = origin drives "
      "the fast quorum directly; ideal = leaderless majority from the "
      "origin");

  const Topology topo = Topology::AwsSevenZones();

  NodeId lz_leader = 0, lzf_leader = 0, mp_leader = 0, mpf_leader = 0;
  auto lz_classic = MakeCluster(ProtocolMode::kLeaderZone, false, &lz_leader);
  auto lz_fast = MakeCluster(ProtocolMode::kLeaderZone, true, &lzf_leader);
  auto mp_classic = MakeCluster(ProtocolMode::kMultiPaxos, false, &mp_leader);
  auto mp_fast = MakeCluster(ProtocolMode::kMultiPaxos, true, &mpf_leader);
  auto leaderless = bench::MakePaperCluster(ProtocolMode::kLeaderless);

  TablePrinter table({"origin", "LZ classic (ms)", "LZ fast (ms)",
                      "MP classic (ms)", "MP fast (ms)",
                      "leaderless ideal (ms)"});
  for (ZoneId z = 1; z < topo.num_zones(); ++z) {
    table.AddRow({topo.ZoneName(z),
                  Fmt(MeasureOrigin(*lz_classic, lz_leader, z), 1),
                  Fmt(MeasureOrigin(*lz_fast, lzf_leader, z), 1),
                  Fmt(MeasureOrigin(*mp_classic, mp_leader, z), 1),
                  Fmt(MeasureOrigin(*mp_fast, mpf_leader, z), 1),
                  Fmt(MeasureLeaderless(*leaderless, z), 1)});
  }
  table.Print(std::cout);

  const ProtocolCounters& fast_counters =
      lz_fast->replica(lz_fast->NodeInZone(1, 2))->counters();
  std::cout << "\nLZ fast origin (Oregon edge): fast_commits="
            << fast_counters.fast_commits
            << " fast_fallbacks=" << fast_counters.fast_fallbacks << "\n";
  return 0;
}
