// Ablation (Section B.1(c)): moving a partition by *reconfiguration*
// versus DPaxos's Leader Handoff / Leader Election.
//
// The reconfiguration design deploys each Paxos instance on exactly the
// minimal member set near its users; moving requires (1) a decree in a
// fixed auxiliary Paxos instance, (2) instantiating the new group,
// (3) shipping the accumulated state across the WAN, (4) electing the
// new leader. DPaxos moves the logical leader with one lightweight round
// (Handoff) or one Leader Election — no state shipping, because the old
// replication quorum's entries are adopted lazily through quorum
// intersection. The gap widens with state size and with the distance to
// the auxiliary instance.
#include <iostream>
#include <optional>

#include "bench_common.h"
#include "reconfig/reconfigurable_group.h"

using namespace dpaxos;

namespace {

constexpr ZoneId kFrom = 0;  // California
constexpr ZoneId kTo = 3;    // Tokyo

double MeasureReconfig(uint64_t state_bytes) {
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone);
  ReconfigurableGroup group(cluster.get(), {});
  auto await = [&](auto start) {
    std::optional<Status> st;
    start([&](const Status& s) { st = s; });
    while (!st.has_value() && cluster->sim().Step()) {
    }
    if (!st.has_value() || !st->ok()) std::abort();
  };
  await([&](ReconfigurableGroup::StatusCallback cb) {
    group.Start(cluster->topology().NodesInZone(kFrom), std::move(cb));
  });
  if (state_bytes > 0) {
    std::optional<Status> st;
    group.Submit(Value::Synthetic(1, state_bytes),
                 [&](const Status& s, SlotId, Duration) { st = s; });
    while (!st.has_value() && cluster->sim().Step()) {
    }
    if (!st->ok()) std::abort();
  }

  const Timestamp start = cluster->sim().Now();
  await([&](ReconfigurableGroup::StatusCallback cb) {
    group.Move(cluster->topology().NodesInZone(kTo), std::move(cb));
  });
  return ToMillis(cluster->sim().Now() - start);
}

double MeasureHandoff() {
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone);
  const NodeId old_leader = cluster->NodeInZone(kFrom);
  bench::MustElect(*cluster, old_leader);
  Replica* requester = cluster->ReplicaInZone(kTo);
  std::optional<Status> st;
  const Timestamp start = cluster->sim().Now();
  requester->RequestHandoffFrom(old_leader, [&](const Status& s) { st = s; });
  while (!st.has_value() && cluster->sim().Step()) {
  }
  if (!st->ok()) std::abort();
  return ToMillis(cluster->sim().Now() - start);
}

double MeasureElection() {
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone);
  const NodeId old_leader = cluster->NodeInZone(kFrom);
  bench::MustElect(*cluster, old_leader);
  Replica* aspirant = cluster->ReplicaInZone(kTo);
  aspirant->PrimeBallot(cluster->replica(old_leader)->ballot());
  Result<Duration> r = cluster->ElectLeader(aspirant->id());
  if (!r.ok()) std::abort();
  return ToMillis(r.value());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: reconfiguration-based movement vs DPaxos (Section B.1c)",
      "move California -> Tokyo; auxiliary Paxos instance fixed in "
      "California; DPaxos needs no state shipping");

  const double handoff = MeasureHandoff();
  const double election = MeasureElection();
  std::cout << "DPaxos Leader Handoff:    " << Fmt(handoff, 1) << " ms\n";
  std::cout << "DPaxos Leader Election:   " << Fmt(election, 1) << " ms\n\n";

  TablePrinter table({"state size", "reconfiguration (ms)",
                      "vs handoff", "vs election"});
  for (uint64_t kb : {0ull, 64ull, 256ull, 1024ull, 4096ull}) {
    const double ms = MeasureReconfig(kb * 1024);
    table.AddRow({std::to_string(kb) + "KB", Fmt(ms, 1),
                  Fmt(ms / handoff, 1) + "x", Fmt(ms / election, 1) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nDPaxos adopts the old quorum's state through quorum "
               "intersection instead of shipping it:\nits movement cost is "
               "independent of the partition's size.\n";
  return 0;
}
