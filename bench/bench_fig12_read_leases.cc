// Figure 12 (Section A.2): scalability with local read-only requests
// served through the leader's master lease, varying the batch size from
// 1 KB to 1 MB for workloads with 100% writes, 50% reads, 95% reads.
//
// Paper shapes to reproduce: read-only transactions answer in <1 ms;
// small batches show no throughput difference between the workloads; at
// 100 KB the 50%/95%-read workloads gain ~24%/~67%, and at 1 MB
// ~75%/~313%, because only the read-write share of a batch enters the
// Replication phase; the all-write workload's latency inflates at 1 MB
// while the 95%-read workload stays ~15 ms.
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

constexpr uint64_t kKB = 1024;
constexpr uint64_t kBatchSizes[] = {1 * kKB,   10 * kKB,  100 * kKB,
                                    512 * kKB, 1024 * kKB};
constexpr double kReadFractions[] = {0.0, 0.5, 0.95};

struct Point {
  double kbps = 0;
  double write_latency_ms = 0;
  double read_latency_ms = 0;
};

Point Measure(uint64_t batch_bytes, double read_fraction) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.enable_leases = true;
  options.replica.lease_duration = 10 * kSecond;
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone, options);
  Replica* leader = cluster->ReplicaInZone(0);
  bench::MustElect(*cluster, leader->id());
  // Acquire the lease with one warm-up commit before measuring.
  Result<Duration> warmup = cluster->Commit(leader->id(),
                                            Value::Synthetic(1, 1024));
  if (!warmup.ok()) std::abort();

  LoadOptions load;
  load.batch_bytes = batch_bytes;
  load.duration = 10 * kSecond;
  load.read_only_fraction = read_fraction;
  LoadResult result = RunClosedLoop(*cluster, leader, load);
  return Point{result.ThroughputKBps(), result.commit_latency.MeanMillis(),
               result.read_latency.MeanMillis()};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 12: read-only scaling with master leases (leader in "
      "California)",
      "read-only transactions served locally under the lease; only the "
      "read-write share of each batch is replicated");

  TablePrinter table({"batch", "100%wr KB/s", "50%rd KB/s", "95%rd KB/s",
                      "50%rd gain", "95%rd gain", "100%wr ms", "95%rd ms",
                      "read ms"});
  for (uint64_t size : kBatchSizes) {
    Point p[3];
    for (int i = 0; i < 3; ++i) p[i] = Measure(size, kReadFractions[i]);
    auto gain = [&](int i) {
      return Fmt(100.0 * (p[i].kbps / p[0].kbps - 1.0), 0) + "%";
    };
    table.AddRow({std::to_string(size / kKB) + "KB", Fmt(p[0].kbps, 0),
                  Fmt(p[1].kbps, 0), Fmt(p[2].kbps, 0), gain(1), gain(2),
                  Fmt(p[0].write_latency_ms, 1), Fmt(p[2].write_latency_ms, 1),
                  Fmt(p[2].read_latency_ms, 2)});
  }
  table.Print(std::cout);
  return 0;
}
