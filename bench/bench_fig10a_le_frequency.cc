// Figure 10(a): commit latency at a California proposer while varying how
// often a request triggers a Leader Election (0% / 50% / 100%), compared
// with an optimal leaderless Paxos that never elects. The x-axis is the
// location of the previous leader.
//
// Paper shapes to reproduce: 0% = pure Replication latency (12 ms);
// 50% ranges 17-147 ms; 100% ranges 24-286 ms; optimal leaderless is
// flat (152 ms in the paper). Even at 50% Leader Elections DPaxos beats
// leaderless everywhere; at 100% leaderless wins only when the previous
// leader is in Singapore or Mumbai.
#include <iostream>
#include <optional>

#include "bench_common.h"

using namespace dpaxos;

namespace {

constexpr int kRequestsPerPoint = 20;
constexpr uint64_t kBatchBytes = 1024;

// Re-install leadership at `node` without measuring it (scenario reset).
void ResetLeadershipTo(Cluster& cluster, NodeId node) {
  Replica* r = cluster.replica(node);
  // Prime so the reset election succeeds in one attempt.
  r->PrimeBallot(Ballot{r->ballot().round + 1000, 0});
  bench::MustElect(cluster, node);
}

// Mean commit latency at a California proposer when `le_percent` of the
// requests must first take over leadership from a leader in `prev_zone`.
double MeasureDPaxos(ZoneId prev_zone, int le_percent) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.initial_leader_zone = prev_zone;
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone, options);

  NodeId prev = cluster->NodeInZone(prev_zone, 0);
  NodeId proposer = cluster->NodeInZone(0, 0);
  if (prev == proposer) proposer = cluster->NodeInZone(0, 1);
  ResetLeadershipTo(*cluster, prev);
  // Requests that do NOT invoke a Leader Election run against an already
  // prolonged California leader (the paper's 0% case): elect it once,
  // unmeasured, before the loop.
  cluster->replica(proposer)->PrimeBallot(cluster->replica(prev)->ballot());
  bench::MustElect(*cluster, proposer);

  Histogram latency;
  uint64_t id = 0;
  int accumulated = 0;  // deterministic le_percent pattern
  for (int i = 0; i < kRequestsPerPoint; ++i) {
    accumulated += le_percent;
    const bool invoke_le = accumulated >= 100;
    if (invoke_le) {
      // Scenario reset: leadership moves back to the previous leader, so
      // this request pays a full Leader Election round (auto-elect).
      accumulated -= 100;
      ResetLeadershipTo(*cluster, prev);
      cluster->replica(proposer)->PrimeBallot(
          cluster->replica(prev)->ballot());
    }
    // A request: elect if needed (auto-elect on submit), then commit.
    Result<Duration> commit =
        cluster->Commit(proposer, Value::Synthetic(++id, kBatchBytes));
    if (!commit.ok()) {
      std::cerr << "FATAL: " << commit.status().ToString() << "\n";
      std::abort();
    }
    latency.Add(commit.value());
  }
  return latency.MeanMillis();
}

// Optimal leaderless baseline: a majority Replication round from
// California, no Leader Election ever.
double MeasureLeaderless() {
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderless);
  Replica* proposer = cluster->ReplicaInZone(0);
  LoadOptions load;
  load.batch_bytes = kBatchBytes;
  load.duration = 5 * kSecond;
  return RunClosedLoop(*cluster, proposer, load).commit_latency.MeanMillis();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 10(a): decision latency at California vs Leader Election "
      "frequency",
      "DPaxos Leader Zone quorums; x-axis = previous leader location; "
      "leaderless = optimal majority-replication baseline");

  const double leaderless = MeasureLeaderless();
  TablePrinter table({"prev leader", "DPaxos 0% LE (ms)", "DPaxos 50% LE (ms)",
                      "DPaxos 100% LE (ms)", "leaderless (ms)"});
  const Topology topo = Topology::AwsSevenZones();
  for (ZoneId z = 0; z < topo.num_zones(); ++z) {
    table.AddRow({topo.ZoneName(z), Fmt(MeasureDPaxos(z, 0), 1),
                  Fmt(MeasureDPaxos(z, 50), 1), Fmt(MeasureDPaxos(z, 100), 1),
                  Fmt(leaderless, 1)});
  }
  table.Print(std::cout);
  return 0;
}
