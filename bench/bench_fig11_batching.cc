// Figure 11 (Section A.1): the effect of the batch size (1 KB - 100 KB)
// on throughput and latency for DPaxos, Flexible Paxos and Multi-Paxos.
//
// Paper shapes to reproduce: growing batches raise throughput by ~68x for
// DPaxos, ~64x for Flexible Paxos, but only ~25x for Multi-Paxos, which
// flattens/thrashes beyond 50 KB because each round ships the batch to
// every node; DPaxos/FPaxos latency grows mildly (11-12 ms -> ~18 ms),
// Multi-Paxos latency inflates severely at large batches.
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

constexpr uint64_t kKB = 1024;
constexpr uint64_t kBatchSizes[] = {1 * kKB,  10 * kKB, 25 * kKB,
                                    50 * kKB, 75 * kKB, 100 * kKB};

struct Point {
  double kbps = 0;
  double latency_ms = 0;
};

Point Measure(ProtocolMode mode, uint64_t batch_bytes) {
  auto cluster = bench::MakePaperCluster(mode);
  Replica* leader = cluster->ReplicaInZone(0);  // California
  bench::MustElect(*cluster, leader->id());

  LoadOptions load;
  load.batch_bytes = batch_bytes;
  load.duration = 10 * kSecond;
  LoadResult result = RunClosedLoop(*cluster, leader, load);
  return Point{result.ThroughputKBps(), result.commit_latency.MeanMillis()};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 11: batching (throughput and latency vs batch size, leader "
      "in California)",
      "closed loop, one outstanding batch; Multi-Paxos ships each batch "
      "to all 21 nodes, DPaxos/FPaxos to the leader's zone");

  TablePrinter table({"batch", "DPaxos KB/s", "FPaxos KB/s", "MPaxos KB/s",
                      "DPaxos ms", "FPaxos ms", "MPaxos ms"});
  double base[3] = {0, 0, 0};
  double last[3] = {0, 0, 0};
  for (uint64_t size : kBatchSizes) {
    const Point d = Measure(ProtocolMode::kLeaderZone, size);
    const Point f = Measure(ProtocolMode::kFlexiblePaxos, size);
    const Point m = Measure(ProtocolMode::kMultiPaxos, size);
    if (size == kBatchSizes[0]) {
      base[0] = d.kbps;
      base[1] = f.kbps;
      base[2] = m.kbps;
    }
    last[0] = d.kbps;
    last[1] = f.kbps;
    last[2] = m.kbps;
    table.AddRow({std::to_string(size / kKB) + "KB", Fmt(d.kbps, 1),
                  Fmt(f.kbps, 1), Fmt(m.kbps, 1), Fmt(d.latency_ms, 1),
                  Fmt(f.latency_ms, 1), Fmt(m.latency_ms, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nthroughput improvement 1KB -> 100KB: DPaxos "
            << Fmt(last[0] / base[0], 1) << "x (paper 68x), FPaxos "
            << Fmt(last[1] / base[1], 1) << "x (paper 64x), MultiPaxos "
            << Fmt(last[2] / base[2], 1) << "x (paper 25x)\n";
  return 0;
}
