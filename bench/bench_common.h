// Shared setup helpers for the experiment benchmarks.
//
// Every bench_figNN binary rebuilds one table/figure of the paper's
// evaluation on the simulated seven-datacenter deployment (Table 1 RTTs,
// three edge nodes per zone, 10 ms intra-zone RTT, fd=1, fz=0).
#ifndef DPAXOS_BENCH_BENCH_COMMON_H_
#define DPAXOS_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <memory>
#include <string>

#include "harness/cluster.h"
#include "harness/load_driver.h"
#include "harness/table.h"

namespace dpaxos {
namespace bench {

/// The paper's evaluation parameters (Section 5).
inline ClusterOptions PaperOptions() {
  ClusterOptions options;
  options.ft = FaultTolerance{1, 0};  // tolerate one datacenter failure
  options.replica.decide_policy = DecidePolicy::kQuorum;
  return options;
}

/// Build the paper's deployment for one protocol.
inline std::unique_ptr<Cluster> MakePaperCluster(
    ProtocolMode mode, ClusterOptions options = PaperOptions()) {
  return std::make_unique<Cluster>(Topology::AwsSevenZones(), mode, options);
}

/// Elect `node` the prolonged leader and abort the benchmark on failure.
inline void MustElect(Cluster& cluster, NodeId node) {
  Result<Duration> r = cluster.ElectLeader(node);
  if (!r.ok()) {
    std::cerr << "FATAL: leader election failed: " << r.status().ToString()
              << "\n";
    std::abort();
  }
}

/// Banner for one experiment binary.
inline void PrintHeader(const std::string& title, const std::string& setup) {
  std::cout << "==================================================\n"
            << title << "\n"
            << setup << "\n"
            << "==================================================\n";
}

}  // namespace bench
}  // namespace dpaxos

#endif  // DPAXOS_BENCH_BENCH_COMMON_H_
