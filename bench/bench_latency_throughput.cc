// Latency-vs-offered-load curves (open loop): where does each protocol's
// saturation knee sit?
//
// Open-loop Poisson arrivals of 10 KB batches at a California leader
// (multi-programming window 8). DPaxos's service capacity is bounded by
// its intra-zone round and NIC; Multi-Paxos saturates orders of
// magnitude earlier because every batch ships to all 21 nodes across
// WAN links. Mean and p99 commit latency are reported per offered rate.
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

struct Point {
  double achieved_kbps = 0;
  double mean_ms = 0;
  double p99_ms = 0;
};

Point Measure(ProtocolMode mode, double arrivals_per_sec) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.max_inflight = 8;
  auto cluster = bench::MakePaperCluster(mode, options);
  Replica* leader = cluster->ReplicaInZone(0);
  bench::MustElect(*cluster, leader->id());

  OpenLoadOptions load;
  load.batch_bytes = 10 * 1024;
  load.duration = 10 * kSecond;
  load.arrivals_per_sec = arrivals_per_sec;
  const LoadResult result = RunOpenLoop(*cluster, leader, load);
  return Point{result.ThroughputKBps(), result.commit_latency.MeanMillis(),
               result.commit_latency.P99Millis()};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Latency vs offered load (open loop, 10 KB batches, window 8, "
      "leader in California)",
      "arrival rates in batches/s; saturation shows as runaway latency");

  TablePrinter table({"offered (batch/s)", "protocol", "achieved KB/s",
                      "mean (ms)", "p99 (ms)"});
  for (double rate : {10.0, 40.0, 80.0, 160.0, 320.0}) {
    for (ProtocolMode mode :
         {ProtocolMode::kLeaderZone, ProtocolMode::kMultiPaxos}) {
      const Point p = Measure(mode, rate);
      table.AddRow({Fmt(rate, 0), ProtocolModeName(mode),
                    Fmt(p.achieved_kbps, 0), Fmt(p.mean_ms, 1),
                    Fmt(p.p99_ms, 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nDPaxos keeps ~11-13 ms latency far past the rate at "
               "which Multi-Paxos's queue explodes:\nits saturation knee "
               "is set by the intra-zone round, not the WAN.\n";
  return 0;
}
