// Figure 8: Replication-phase performance at each of the seven
// datacenters — commit latency (a) and throughput (b) of prolonged
// leaders deciding 1 KB transaction batches, for DPaxos, Flexible Paxos
// and Multi-Paxos.
//
// Faithful to the paper's setup: ONE deployment hosts seven partitions,
// each located and accessed at one of the seven datacenters, all driven
// concurrently (they share the NICs and WAN links).
//
// Paper shapes to reproduce: DPaxos and Flexible Paxos are flat at
// 11-13 ms everywhere (replication confined to the leader's zone);
// Multi-Paxos varies with the proposer's location (91-282 ms in the
// paper) because it pulls a majority of all 21 nodes; throughput is the
// inverse picture (paper: 75.8-85.2 KB/s vs 3.5-10.9 KB/s, ~23x average).
#include <iostream>
#include <vector>

#include "bench_common.h"

using namespace dpaxos;

namespace {

constexpr ProtocolMode kModes[] = {ProtocolMode::kLeaderZone,
                                   ProtocolMode::kFlexiblePaxos,
                                   ProtocolMode::kMultiPaxos};

// One run per protocol: seven concurrent per-zone partitions.
std::vector<LoadResult> MeasureAllZones(ProtocolMode mode) {
  ClusterOptions options = bench::PaperOptions();
  options.partitions.clear();
  for (PartitionId p = 0; p < 7; ++p) options.partitions.push_back(p);
  // Partition p's Leader Zone is zone p.
  auto cluster =
      std::make_unique<Cluster>(Topology::AwsSevenZones(), mode, options);

  std::vector<Replica*> leaders;
  for (ZoneId z = 0; z < 7; ++z) {
    // kLeaderZone mode: re-home the partition's Leader Zone first so
    // elections and intents are local to the partition's datacenter.
    Replica* leader = cluster->replica(cluster->NodeInZone(z), z);
    if (mode == ProtocolMode::kLeaderZone && z != 0) {
      bool migrated = false;
      leader->MigrateLeaderZone(z, [&](const Status& st) {
        if (!st.ok()) std::abort();
        migrated = true;
      });
      if (!cluster->RunUntil([&] { return migrated; }, 120 * kSecond)) {
        std::abort();
      }
    }
    Result<Duration> elect = cluster->ElectLeader(leader->id(), z);
    if (!elect.ok()) {
      std::cerr << "FATAL: election failed: " << elect.status().ToString()
                << "\n";
      std::abort();
    }
    leaders.push_back(leader);
  }

  LoadOptions load;
  load.batch_bytes = 1024;  // paper: 1 KB batches
  load.duration = 10 * kSecond;
  return RunClosedLoops(*cluster, leaders,
                        std::vector<LoadOptions>(7, load));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 8: Replication phase per datacenter (1 KB batches, fd=1 "
      "fz=0)",
      "one deployment, seven partitions driven concurrently, one "
      "prolonged leader per zone");

  std::vector<LoadResult> results[3];
  for (int m = 0; m < 3; ++m) results[m] = MeasureAllZones(kModes[m]);

  TablePrinter latency({"datacenter", "DPaxos (ms)", "FPaxos (ms)",
                        "MultiPaxos (ms)"});
  TablePrinter throughput({"datacenter", "DPaxos (KB/s)", "FPaxos (KB/s)",
                           "MultiPaxos (KB/s)"});
  const Topology topo = Topology::AwsSevenZones();
  double sums[3] = {0, 0, 0};
  for (ZoneId z = 0; z < topo.num_zones(); ++z) {
    std::vector<std::string> lat_row{topo.ZoneName(z)};
    std::vector<std::string> thr_row{topo.ZoneName(z)};
    for (int m = 0; m < 3; ++m) {
      lat_row.push_back(Fmt(results[m][z].commit_latency.MeanMillis(), 1));
      thr_row.push_back(Fmt(results[m][z].ThroughputKBps(), 1));
      sums[m] += results[m][z].ThroughputKBps();
    }
    latency.AddRow(std::move(lat_row));
    throughput.AddRow(std::move(thr_row));
  }

  std::cout << "\n(a) commit latency\n";
  latency.Print(std::cout);
  std::cout << "\n(b) throughput\n";
  throughput.Print(std::cout);
  std::cout << "\naverage throughput ratio DPaxos/MultiPaxos: "
            << Fmt(sums[0] / sums[2], 1) << "x (paper: ~23x)\n";
  return 0;
}
