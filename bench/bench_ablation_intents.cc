// Ablation (Section 4.6): declaring multiple replication-quorum intents.
//
// With a single declared intent, losing a replication-quorum member
// leaves the leader stuck until a new Leader Election changes the quorum;
// with a second (alternate) intent the leader fails over with no election
// at all — at the cost of a wider intersection requirement for future
// aspiring leaders.
#include <iostream>
#include <optional>

#include "bench_common.h"

using namespace dpaxos;

namespace {

struct Point {
  bool commit_succeeded = false;
  double recovery_ms = 0;       // submit-to-commit time across the failure
  uint64_t future_le_targets = 0;  // intersection burden on the next LE
};

Point Measure(uint32_t num_intents) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.num_intents = num_intents;
  options.replica.propose_timeout = 200 * kMillisecond;
  options.replica.max_propose_retries = 2;
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone, options);

  Replica* leader = cluster->ReplicaInZone(0, 0);
  bench::MustElect(*cluster, leader->id());
  if (!cluster->Commit(leader->id(), Value::Synthetic(1, 1024)).ok()) {
    std::abort();
  }

  // Crash the leader's replication-quorum companion.
  const std::vector<Intent>& intents = leader->declared_intents();
  NodeId companion = kInvalidNode;
  for (NodeId n : intents.front().quorum) {
    if (n != leader->id()) companion = n;
  }
  cluster->transport().Crash(companion);

  Point point;
  Result<Duration> commit =
      cluster->Commit(leader->id(), Value::Synthetic(2, 1024));
  point.commit_succeeded = commit.ok();
  point.recovery_ms = commit.ok() ? ToMillis(commit.value()) : -1;

  // Intersection burden: nodes a future aspirant must be able to reach
  // beyond its base quorum = union of declared intents.
  std::set<NodeId> burden;
  for (const Intent& in : intents) {
    burden.insert(in.quorum.begin(), in.quorum.end());
  }
  point.future_le_targets = burden.size();
  return point;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: single vs multiple declared intents (Section 4.6)",
      "the leader's replication-quorum companion crashes mid-run; commit "
      "recovery requires an alternate intent (or a new election)");

  TablePrinter table({"declared intents", "commit after crash",
                      "recovery (ms)", "future intersection nodes"});
  for (uint32_t k : {1u, 2u, 3u}) {
    const Point p = Measure(k);
    table.AddRow({std::to_string(k), p.commit_succeeded ? "yes" : "NO",
                  p.commit_succeeded ? Fmt(p.recovery_ms, 1) : "-",
                  std::to_string(p.future_le_targets)});
  }
  table.Print(std::cout);
  std::cout << "\nWith one intent the leader steps down (only a Leader "
               "Election can change quorums);\nalternate intents trade "
               "failover speed for a larger future intersection burden.\n";
  return 0;
}
