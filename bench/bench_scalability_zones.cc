// Edge-scale sweep: how the protocols behave as the number of zones
// grows (paper Section 1: "In a system with a large number of nodes,
// such as the edge, majority-based approaches are prohibitive, since
// they entail communication with a majority of a possibly massive
// number of nodes for each step").
//
// Zones are placed on a synthetic planet (great-circle RTTs); for each
// size we measure, at a fixed proposer:
//   - Replication latency and messages per commit,
//   - Leader Election latency and messages.
// DPaxos stays flat (its quorums are zone-local); Multi-Paxos and
// Flexible Paxos grow with the deployment.
#include <iostream>

#include "bench_common.h"

using namespace dpaxos;

namespace {

struct Point {
  double repl_ms = 0;
  double repl_msgs = 0;
  double le_ms = 0;
  uint64_t le_msgs = 0;
};

Point Measure(ProtocolMode mode, uint32_t zones) {
  ClusterOptions options = bench::PaperOptions();
  options.replica.le_timeout = 10 * kSecond;  // far quorums on big planets
  auto cluster = std::make_unique<Cluster>(
      Topology::Planet(zones, 3, /*seed=*/zones * 7 + 1), mode, options);

  auto total_msgs = [&] {
    uint64_t sum = 0;
    for (NodeId n : cluster->topology().AllNodes()) {
      sum += cluster->transport().StatsFor(n).messages_sent;
    }
    return sum;
  };

  Point point;
  Replica* leader = cluster->ReplicaInZone(0);
  const Timestamp t0 = cluster->sim().Now();
  bench::MustElect(*cluster, leader->id());
  point.le_ms = ToMillis(cluster->sim().Now() - t0);
  point.le_msgs = total_msgs();

  const uint64_t msgs_before = total_msgs();
  LoadOptions load;
  load.batch_bytes = 1024;
  load.duration = 5 * kSecond;
  const LoadResult result = RunClosedLoop(*cluster, leader, load);
  point.repl_ms = result.commit_latency.MeanMillis();
  if (result.committed > 0) {
    point.repl_msgs = static_cast<double>(total_msgs() - msgs_before) /
                      static_cast<double>(result.committed);
  }
  return point;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Edge-scale sweep: protocol cost vs number of zones",
      "synthetic planet topologies, 3 nodes/zone, fd=1 fz=0; proposer in "
      "zone 0");

  TablePrinter table({"zones", "nodes", "protocol", "repl (ms)",
                      "msgs/commit", "LE (ms)", "LE msgs"});
  for (uint32_t zones : {8u, 16u, 32u, 64u}) {
    for (ProtocolMode mode :
         {ProtocolMode::kLeaderZone, ProtocolMode::kDelegate,
          ProtocolMode::kFlexiblePaxos, ProtocolMode::kMultiPaxos}) {
      const Point p = Measure(mode, zones);
      table.AddRow({std::to_string(zones), std::to_string(zones * 3),
                    ProtocolModeName(mode), Fmt(p.repl_ms, 1),
                    Fmt(p.repl_msgs, 1), Fmt(p.le_ms, 1),
                    std::to_string(p.le_msgs)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nDPaxos replication stays at the intra-zone round and "
               "~5 msgs/commit at every scale;\nmajority-based replication "
               "and Flexible-Paxos elections grow with the deployment.\n";
  return 0;
}
