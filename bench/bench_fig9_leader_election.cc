// Figure 9: Leader Election latency observed by an aspiring leader in
// California, as a function of the previous leader's location.
//
// Paper shapes to reproduce:
//   - DPaxos Leader Zone: one round to the previous leader's zone (the
//     Leader Zone has moved there), 11 ms same-zone up to 267 ms Mumbai.
//   - Leader Handoff: same shape (one lightweight round to the previous
//     leader), but requires its cooperation.
//   - DPaxos Delegate and Multi-Paxos: flat — a round to the closest
//     majority of zones / majority of nodes (~150 ms in the paper).
//   - Flexible Paxos: flat and most expensive — votes from all zones
//     (262 ms in the paper, the RTT to Mumbai).
// Crossover: Leader Zone loses to Delegate/Multi-Paxos only when the
// previous leader is in Singapore or Mumbai.
//
// Per the paper's setup, prior Leader Election attempts have been garbage
// collected: only the previous leader's intent exists, and (for Leader
// Zone) the Leader Zone has already moved to the previous leader's zone.
#include <iostream>
#include <optional>

#include "bench_common.h"

using namespace dpaxos;

namespace {

// Previous leader in `prev_zone` (already holding leadership and having
// declared its intent), aspirant = another node in California.
double MeasureElection(ProtocolMode mode, ZoneId prev_zone,
                       bool with_prev_leader) {
  ClusterOptions options = bench::PaperOptions();
  if (mode == ProtocolMode::kLeaderZone) {
    // The Leader Zone has moved to the previous leader's zone.
    options.replica.initial_leader_zone = prev_zone;
  }
  auto cluster = bench::MakePaperCluster(mode, options);

  NodeId aspirant = cluster->NodeInZone(0, 0);  // California
  if (with_prev_leader) {
    NodeId prev = cluster->NodeInZone(prev_zone, 0);
    if (prev == aspirant) aspirant = cluster->NodeInZone(0, 1);
    bench::MustElect(*cluster, prev);
    // The aspirant knows the incumbent's ballot (cluster metadata), as in
    // the paper's measurement of a single clean election round.
    cluster->replica(aspirant)->PrimeBallot(cluster->replica(prev)->ballot());
  }

  Result<Duration> latency = cluster->ElectLeader(aspirant);
  if (!latency.ok()) {
    std::cerr << "FATAL: election failed: " << latency.status().ToString()
              << "\n";
    std::abort();
  }
  return ToMillis(latency.value());
}

// Delegate with the previous leader's intent still live (not garbage
// collected): the aspirant's first round detects it and a second round
// expands to the previous leader's zone — the cost the paper's flat
// Delegate curve omits (its setup collects prior intents first).
double MeasureDelegateWithIntent(ZoneId prev_zone) {
  auto cluster = bench::MakePaperCluster(ProtocolMode::kDelegate);
  NodeId aspirant = cluster->NodeInZone(0, 0);
  NodeId prev = cluster->NodeInZone(prev_zone, 0);
  if (prev == aspirant) aspirant = cluster->NodeInZone(0, 1);
  bench::MustElect(*cluster, prev);
  if (!cluster->Commit(prev, Value::Synthetic(1, 1024)).ok()) std::abort();
  cluster->replica(aspirant)->PrimeBallot(cluster->replica(prev)->ballot());
  Result<Duration> latency = cluster->ElectLeader(aspirant);
  if (!latency.ok()) std::abort();
  return ToMillis(latency.value());
}

double MeasureHandoff(ZoneId prev_zone) {
  auto cluster = bench::MakePaperCluster(ProtocolMode::kLeaderZone);
  NodeId aspirant = cluster->NodeInZone(0, 0);
  NodeId prev = cluster->NodeInZone(prev_zone, 0);
  if (prev == aspirant) aspirant = cluster->NodeInZone(0, 1);
  bench::MustElect(*cluster, prev);

  std::optional<Status> done;
  const Timestamp start = cluster->sim().Now();
  cluster->replica(aspirant)->RequestHandoffFrom(prev, [&](const Status& st) {
    done = st;
  });
  while (!done.has_value() && cluster->sim().Step()) {
  }
  if (!done.has_value() || !done->ok()) {
    std::cerr << "FATAL: handoff failed\n";
    std::abort();
  }
  return ToMillis(cluster->sim().Now() - start);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 9: Leader Election latency at California vs previous leader "
      "location",
      "prior intents garbage collected; Leader Zone moved to the previous "
      "leader's zone");

  TablePrinter table({"prev leader", "LeaderZone (ms)", "Handoff (ms)",
                      "Delegate (ms)", "Delegate+intent (ms)",
                      "MultiPaxos (ms)", "FPaxos (ms)"});
  const Topology topo = Topology::AwsSevenZones();
  for (ZoneId z = 0; z < topo.num_zones(); ++z) {
    table.AddRow({
        topo.ZoneName(z),
        Fmt(MeasureElection(ProtocolMode::kLeaderZone, z, true), 1),
        Fmt(MeasureHandoff(z), 1),
        // Delegate / Multi-Paxos / FPaxos elections do not depend on the
        // previous leader's location (Delegate: no live intents besides
        // the aspirant's own after garbage collection).
        Fmt(MeasureElection(ProtocolMode::kDelegate, z, false), 1),
        Fmt(MeasureDelegateWithIntent(z), 1),
        Fmt(MeasureElection(ProtocolMode::kMultiPaxos, z, true), 1),
        Fmt(MeasureElection(ProtocolMode::kFlexiblePaxos, z, true), 1),
    });
  }
  table.Print(std::cout);
  std::cout << "\nDelegate+intent shows the expansion round the paper's "
               "flat Delegate curve omits\n(its setup garbage-collects "
               "prior intents; compare Figure 14).\n";
  return 0;
}
